// Tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/channel.hpp"
#include "runtime/event.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/rng.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace_log.hpp"

namespace rt = trader::runtime;

// ------------------------------------------------------------------- SimTime

TEST(SimTime, UnitHelpers) {
  EXPECT_EQ(rt::usec(5), 5);
  EXPECT_EQ(rt::msec(5), 5000);
  EXPECT_EQ(rt::sec(2), 2'000'000);
  EXPECT_DOUBLE_EQ(rt::to_ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(rt::to_sec(2'500'000), 2.5);
}

// ----------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  rt::Rng a(42);
  rt::Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  rt::Rng a(1);
  rt::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  rt::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  rt::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  rt::Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  rt::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  rt::Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMeanAndSpread) {
  rt::Rng rng(13);
  rt::StatAccumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  rt::Rng rng(17);
  rt::StatAccumulator acc;
  for (int i = 0; i < 30000; ++i) acc.add(rng.exponential(5.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.25);
}

TEST(Rng, ForkIsIndependentOfLaterParentUse) {
  rt::Rng parent1(5);
  rt::Rng parent2(5);
  rt::Rng child1 = parent1.fork();
  rt::Rng child2 = parent2.fork();
  // Children from identically seeded parents agree.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // And differ from the parent stream.
  EXPECT_NE(parent1.next_u64(), child1.next_u64());
}

// -------------------------------------------------------------------- Values

TEST(Value, ToStringRendersAllAlternatives) {
  EXPECT_EQ(rt::to_string(rt::Value{std::int64_t{42}}), "42");
  EXPECT_EQ(rt::to_string(rt::Value{std::string("hi")}), "hi");
  EXPECT_EQ(rt::to_string(rt::Value{true}), "true");
  EXPECT_EQ(rt::to_string(rt::Value{false}), "false");
}

TEST(Value, NumericDeviation) {
  EXPECT_DOUBLE_EQ(rt::deviation(rt::Value{std::int64_t{10}}, rt::Value{std::int64_t{4}}), 6.0);
  EXPECT_DOUBLE_EQ(rt::deviation(rt::Value{2.5}, rt::Value{std::int64_t{2}}), 0.5);
  EXPECT_DOUBLE_EQ(rt::deviation(rt::Value{true}, rt::Value{false}), 1.0);
  EXPECT_DOUBLE_EQ(rt::deviation(rt::Value{true}, rt::Value{std::int64_t{1}}), 0.0);
}

TEST(Value, StringDeviationIsCategorical) {
  EXPECT_DOUBLE_EQ(rt::deviation(rt::Value{std::string("a")}, rt::Value{std::string("a")}), 0.0);
  EXPECT_DOUBLE_EQ(rt::deviation(rt::Value{std::string("a")}, rt::Value{std::string("b")}), 1.0);
}

TEST(Value, MismatchedCategoriesAreMaximallyDeviant) {
  EXPECT_DOUBLE_EQ(rt::deviation(rt::Value{std::string("a")}, rt::Value{std::int64_t{1}}), 1.0);
}

TEST(Value, BothNumeric) {
  EXPECT_TRUE(rt::both_numeric(rt::Value{std::int64_t{1}}, rt::Value{2.0}));
  EXPECT_TRUE(rt::both_numeric(rt::Value{true}, rt::Value{1.5}));
  EXPECT_FALSE(rt::both_numeric(rt::Value{std::string("x")}, rt::Value{1.5}));
}

TEST(Event, FieldAccessors) {
  rt::Event ev;
  ev.topic = "t";
  ev.name = "n";
  ev.fields["i"] = std::int64_t{7};
  ev.fields["d"] = 2.5;
  ev.fields["s"] = std::string("str");
  ev.fields["b"] = true;
  EXPECT_EQ(ev.int_field("i"), 7);
  EXPECT_EQ(ev.int_field("d"), 2);
  EXPECT_EQ(ev.int_field("b"), 1);
  EXPECT_EQ(ev.int_field("missing", -1), -1);
  EXPECT_DOUBLE_EQ(ev.num_field("d"), 2.5);
  EXPECT_DOUBLE_EQ(ev.num_field("i"), 7.0);
  EXPECT_EQ(ev.str_field("s"), "str");
  EXPECT_EQ(ev.str_field("i", "dflt"), "dflt");
  EXPECT_FALSE(ev.field("nope").has_value());
  EXPECT_TRUE(ev.field("i").has_value());
}

TEST(Event, DescribeMentionsTopicNameAndFields) {
  rt::Event ev;
  ev.topic = "tv.output";
  ev.name = "volume";
  ev.fields["value"] = std::int64_t{30};
  ev.timestamp = 123;
  const std::string d = ev.describe();
  EXPECT_NE(d.find("tv.output"), std::string::npos);
  EXPECT_NE(d.find("volume"), std::string::npos);
  EXPECT_NE(d.find("30"), std::string::npos);
}

// ------------------------------------------------------------------ Scheduler

TEST(Scheduler, RunsCallbacksInTimeOrder) {
  rt::Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(300, [&] { order.push_back(3); });
  sched.schedule_at(100, [&] { order.push_back(1); });
  sched.schedule_at(200, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 300);
}

TEST(Scheduler, FifoForSameTimestamp) {
  rt::Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  rt::Scheduler sched;
  rt::SimTime seen = -1;
  sched.schedule_at(100, [&] {
    sched.schedule_after(50, [&] { seen = sched.now(); });
  });
  sched.run_all();
  EXPECT_EQ(seen, 150);
}

TEST(Scheduler, PastTimesClampToNow) {
  rt::Scheduler sched;
  sched.run_until(1000);
  rt::SimTime seen = -1;
  sched.schedule_at(10, [&] { seen = sched.now(); });
  sched.run_all();
  EXPECT_EQ(seen, 1000);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  rt::Scheduler sched;
  int count = 0;
  sched.schedule_at(100, [&] { ++count; });
  sched.schedule_at(200, [&] { ++count; });
  sched.schedule_at(201, [&] { ++count; });
  sched.run_until(200);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sched.now(), 200);
  sched.run_until(300);
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, CancelPreventsExecution) {
  rt::Scheduler sched;
  int count = 0;
  auto h = sched.schedule_at(100, [&] { ++count; });
  sched.cancel(h);
  sched.run_all();
  EXPECT_EQ(count, 0);
}

TEST(Scheduler, CancelTwiceIsSafe) {
  rt::Scheduler sched;
  auto h = sched.schedule_at(100, [] {});
  sched.cancel(h);
  sched.cancel(h);
  sched.run_all();
  SUCCEED();
}

TEST(Scheduler, PeriodicFiresRepeatedly) {
  rt::Scheduler sched;
  std::vector<rt::SimTime> fires;
  sched.schedule_every(100, [&] { fires.push_back(sched.now()); });
  sched.run_until(450);
  EXPECT_EQ(fires, (std::vector<rt::SimTime>{100, 200, 300, 400}));
}

TEST(Scheduler, PeriodicCancelStopsFutureFires) {
  rt::Scheduler sched;
  int count = 0;
  rt::TaskHandle h = sched.schedule_every(100, [&] { ++count; });
  sched.run_until(250);
  EXPECT_EQ(count, 2);
  sched.cancel(h);
  sched.run_until(1000);
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, PeriodicCanCancelItself) {
  rt::Scheduler sched;
  int count = 0;
  rt::TaskHandle h;
  h = sched.schedule_every(100, [&] {
    ++count;
    if (count == 3) sched.cancel(h);
  });
  sched.run_until(2000);
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  rt::Scheduler sched;
  EXPECT_FALSE(sched.step());
  sched.schedule_at(10, [] {});
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
}

TEST(Scheduler, ExecutedCounterCounts) {
  rt::Scheduler sched;
  for (int i = 0; i < 7; ++i) sched.schedule_at(i, [] {});
  sched.run_all();
  EXPECT_EQ(sched.executed(), 7u);
}

TEST(Scheduler, NestedSchedulingWithinCallback) {
  rt::Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(10, [&] {
    order.push_back(1);
    sched.schedule_at(10, [&] { order.push_back(2); });  // same instant
  });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ------------------------------------------------------------------- EventBus

TEST(EventBus, DeliversToMatchingTopic) {
  rt::EventBus bus;
  int count = 0;
  bus.subscribe("a", [&](const rt::Event&) { ++count; });
  rt::Event ev;
  ev.topic = "a";
  bus.publish(ev);
  ev.topic = "b";
  bus.publish(ev);
  EXPECT_EQ(count, 1);
}

TEST(EventBus, WildcardSubscriberSeesEverything) {
  rt::EventBus bus;
  int count = 0;
  bus.subscribe("", [&](const rt::Event&) { ++count; });
  rt::Event ev;
  ev.topic = "x";
  bus.publish(ev);
  ev.topic = "y";
  bus.publish(ev);
  EXPECT_EQ(count, 2);
}

TEST(EventBus, TopicSubscribersBeforeWildcard) {
  rt::EventBus bus;
  std::vector<std::string> order;
  bus.subscribe("", [&](const rt::Event&) { order.push_back("wild"); });
  bus.subscribe("t", [&](const rt::Event&) { order.push_back("topic"); });
  rt::Event ev;
  ev.topic = "t";
  bus.publish(ev);
  EXPECT_EQ(order, (std::vector<std::string>{"topic", "wild"}));
}

TEST(EventBus, UnsubscribeStopsDelivery) {
  rt::EventBus bus;
  int count = 0;
  auto sub = bus.subscribe("a", [&](const rt::Event&) { ++count; });
  rt::Event ev;
  ev.topic = "a";
  bus.publish(ev);
  bus.unsubscribe(sub);
  bus.publish(ev);
  EXPECT_EQ(count, 1);
}

TEST(EventBus, HandlerMaySubscribeDuringDelivery) {
  rt::EventBus bus;
  int late = 0;
  bus.subscribe("a", [&](const rt::Event&) {
    bus.subscribe("a", [&](const rt::Event&) { ++late; });
  });
  rt::Event ev;
  ev.topic = "a";
  bus.publish(ev);  // must not deliver to the handler added mid-publish
  EXPECT_EQ(late, 0);
  bus.publish(ev);
  EXPECT_EQ(late, 1);
}

TEST(EventBus, CountsPublishesAndSubscribers) {
  rt::EventBus bus;
  auto s1 = bus.subscribe("a", [](const rt::Event&) {});
  bus.subscribe("b", [](const rt::Event&) {});
  EXPECT_EQ(bus.subscriber_count(), 2u);
  bus.unsubscribe(s1);
  EXPECT_EQ(bus.subscriber_count(), 1u);
  rt::Event ev;
  ev.topic = "a";
  bus.publish(ev);
  bus.publish(ev);
  EXPECT_EQ(bus.published(), 2u);
}

// ------------------------------------------------------------- LatencyChannel

TEST(LatencyChannel, DelaysByBaseLatency) {
  rt::Scheduler sched;
  std::vector<rt::SimTime> deliveries;
  rt::ChannelConfig cfg;
  cfg.base_latency = 500;
  rt::LatencyChannel ch(sched, rt::Rng(1), cfg,
                        [&](const rt::Event& ev) { deliveries.push_back(ev.timestamp); });
  rt::Event ev;
  ch.send(ev);
  sched.run_all();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], 500);
}

TEST(LatencyChannel, JitterStaysWithinBounds) {
  rt::Scheduler sched;
  std::vector<rt::SimTime> deliveries;
  rt::ChannelConfig cfg;
  cfg.base_latency = 100;
  cfg.jitter = 400;
  cfg.preserve_order = false;
  rt::LatencyChannel ch(sched, rt::Rng(2), cfg,
                        [&](const rt::Event& ev) { deliveries.push_back(ev.timestamp); });
  rt::Event ev;
  for (int i = 0; i < 200; ++i) ch.send(ev);
  sched.run_all();
  ASSERT_EQ(deliveries.size(), 200u);
  for (auto t : deliveries) {
    EXPECT_GE(t, 100);
    EXPECT_LE(t, 500);
  }
}

TEST(LatencyChannel, PreservesFifoUnderJitter) {
  rt::Scheduler sched;
  std::vector<int> order;
  rt::ChannelConfig cfg;
  cfg.base_latency = 100;
  cfg.jitter = 1000;
  cfg.preserve_order = true;
  rt::LatencyChannel ch(sched, rt::Rng(3), cfg, [&](const rt::Event& ev) {
    order.push_back(static_cast<int>(ev.int_field("seq")));
  });
  for (int i = 0; i < 50; ++i) {
    rt::Event ev;
    ev.fields["seq"] = std::int64_t{i};
    ch.send(ev);
    sched.run_for(10);
  }
  sched.run_all();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(LatencyChannel, DropsPerProbability) {
  rt::Scheduler sched;
  int delivered = 0;
  rt::ChannelConfig cfg;
  cfg.drop_probability = 1.0;
  rt::LatencyChannel ch(sched, rt::Rng(4), cfg, [&](const rt::Event&) { ++delivered; });
  rt::Event ev;
  for (int i = 0; i < 10; ++i) ch.send(ev);
  sched.run_all();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.dropped(), 10u);
  EXPECT_EQ(ch.sent(), 10u);
}

TEST(LatencyChannel, CountersTrackDelivery) {
  rt::Scheduler sched;
  rt::ChannelConfig cfg;
  rt::LatencyChannel ch(sched, rt::Rng(5), cfg, [](const rt::Event&) {});
  rt::Event ev;
  ch.send(ev);
  ch.send(ev);
  sched.run_all();
  EXPECT_EQ(ch.sent(), 2u);
  EXPECT_EQ(ch.delivered(), 2u);
  EXPECT_EQ(ch.dropped(), 0u);
}

TEST(LatencyChannel, ReconfigurableMidRun) {
  rt::Scheduler sched;
  std::vector<rt::SimTime> deliveries;
  rt::ChannelConfig cfg;
  cfg.base_latency = 100;
  rt::LatencyChannel ch(sched, rt::Rng(6), cfg,
                        [&](const rt::Event& ev) { deliveries.push_back(ev.timestamp); });
  rt::Event ev;
  ch.send(ev);
  sched.run_all();
  cfg.base_latency = 900;
  ch.set_config(cfg);
  ch.send(ev);
  sched.run_all();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 100);
  EXPECT_EQ(deliveries[1], 100 + 900);
}

// ------------------------------------------------------------------- TraceLog

TEST(TraceLog, StoresAndQueries) {
  rt::TraceLog log;
  log.log(10, rt::TraceLevel::kInfo, "a", "hello");
  log.log(20, rt::TraceLevel::kError, "b", "bad");
  log.log(30, rt::TraceLevel::kWarning, "a", "warn");
  EXPECT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.count_component("a"), 2u);
  EXPECT_EQ(log.count_at_least(rt::TraceLevel::kWarning), 2u);
  const auto errors =
      log.query([](const rt::TraceRecord& r) { return r.level == rt::TraceLevel::kError; });
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].message, "bad");
}

TEST(TraceLog, EvictsBeyondCapacityButCountsTotal) {
  rt::TraceLog log(4);
  for (int i = 0; i < 10; ++i) log.log(i, rt::TraceLevel::kDebug, "c", "m");
  EXPECT_EQ(log.records().size(), 4u);
  EXPECT_EQ(log.total_logged(), 10u);
  EXPECT_EQ(log.records().front().time, 6);
}

TEST(TraceLog, LevelNames) {
  EXPECT_STREQ(rt::to_string(rt::TraceLevel::kDebug), "DEBUG");
  EXPECT_STREQ(rt::to_string(rt::TraceLevel::kError), "ERROR");
}

// ---------------------------------------------------------------------- Stats

TEST(Stats, AccumulatorBasics) {
  rt::StatAccumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_NEAR(acc.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  rt::StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Stats, PercentilesInterpolate) {
  rt::PercentileAccumulator acc;
  for (int i = 1; i <= 100; ++i) acc.add(static_cast<double>(i));
  EXPECT_NEAR(acc.median(), 50.5, 1e-9);
  EXPECT_NEAR(acc.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(acc.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(acc.percentile(95), 95.05, 0.2);
}

TEST(Stats, PercentileOfEmptyIsZero) {
  rt::PercentileAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.percentile(50), 0.0);
}

TEST(Stats, PercentileAfterLateAdd) {
  rt::PercentileAccumulator acc;
  acc.add(10.0);
  EXPECT_DOUBLE_EQ(acc.median(), 10.0);
  acc.add(20.0);
  EXPECT_DOUBLE_EQ(acc.median(), 15.0);
}
