// Tests for src/fleetdiag: the SpectrumReporter (chunked kSpectrum
// flushes, oversize-step policy), the FleetAggregator (online/offline
// equivalence after every streamed prefix, cached-top-k staleness and
// churn accounting, slot lifecycle), the hub integration over real
// AF_UNIX sockets at 1/2/4 shards (byte-identical rankings, spectra
// persisting across reconnects, retirement on permanent slot failure),
// the publisher-side streaming gated on the negotiated version, the
// 4-thread concurrent ingest-vs-query harness (FleetDiagConcurrency.*,
// run under TSan by scripts/check.sh), and the diagnosis-accuracy
// campaign replaying the shipped fuzz findings corpus.
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "diagnosis/incremental.hpp"
#include "diagnosis/spectrum.hpp"
#include "diagnosis/synthetic_program.hpp"
#include "fleetdiag/aggregator.hpp"
#include "fleetdiag/reporter.hpp"
#include "gtest/gtest.h"
#include "hub/agent.hpp"
#include "hub/hub.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "observation/coverage.hpp"
#include "runtime/rng.hpp"
#include "testkit/diag_campaign.hpp"
#include "testkit/fuzz.hpp"

namespace rt = trader::runtime;
namespace diag = trader::diagnosis;
namespace fd = trader::fleetdiag;
namespace hub = trader::hub;
namespace ipc = trader::ipc;
namespace obs = trader::observation;
namespace tk = trader::testkit;

namespace {

template <typename Pred>
bool pump_until(hub::AwarenessHub& awareness_hub, Pred done) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    if (awareness_hub.poll(10) < 0) return false;
  }
  return true;
}

/// Connect + kHello handshake against a hub pumped from this thread.
ipc::FrameType handshake(hub::AwarenessHub& awareness_hub, ipc::FramedSocket& sock,
                         const std::string& slot) {
  const int fd = ipc::connect_unix_retry(awareness_hub.path(), 2000);
  if (fd < 0) return ipc::FrameType::kShutdown;
  sock = ipc::FramedSocket(fd);
  ipc::Frame hello;
  hello.type = ipc::FrameType::kHello;
  hello.detail = slot;
  if (!sock.send(hello)) return ipc::FrameType::kShutdown;
  ipc::Frame ack;
  while (true) {
    const auto st = sock.recv(ack, 0);
    if (st == ipc::FramedSocket::RecvStatus::kFrame) return ack.type;
    if (st != ipc::FramedSocket::RecvStatus::kTimeout) return ipc::FrameType::kShutdown;
    if (awareness_hub.poll(10) < 0) return ipc::FrameType::kShutdown;
  }
}

void expect_reports_equal(const diag::DiagnosisReport& a, const diag::DiagnosisReport& b,
                          const std::string& what) {
  ASSERT_EQ(a.blocks_considered, b.blocks_considered) << what;
  ASSERT_EQ(a.ranking.size(), b.ranking.size()) << what;
  for (std::size_t i = 0; i < a.ranking.size(); ++i) {
    ASSERT_EQ(a.ranking[i].block, b.ranking[i].block) << what << " rank " << i;
    ASSERT_EQ(a.ranking[i].score, b.ranking[i].score) << what << " rank " << i;  // bit-identical
  }
}

/// The shipped findings corpus at the repo root, resolved relative to
/// this source file so tests work from any build directory.
std::string corpus_path() {
  std::string dir(__FILE__);
  const auto slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  for (const std::string& candidate :
       {dir + "/../FUZZ_corpus.json", std::string("FUZZ_corpus.json"),
        std::string("../FUZZ_corpus.json"), std::string("../../FUZZ_corpus.json")}) {
    struct stat st{};
    if (::stat(candidate.c_str(), &st) == 0 && st.st_size > 0) return candidate;
  }
  return "";
}

}  // namespace

// ============================================================== reporter

TEST(FleetDiagReporter, FlushChunksStepsIntoBudgetedFrames) {
  fd::ReporterConfig config;
  config.block_count = 100;
  config.frame_budget = 128;  // fits two 10-block steps, not three
  config.flush_steps = 0;
  fd::SpectrumReporter reporter(config);

  std::vector<ipc::SpectrumStep> sent;
  for (std::uint32_t s = 0; s < 5; ++s) {
    std::vector<std::uint32_t> blocks;
    for (std::uint32_t b = 0; b < 10; ++b) blocks.push_back(s * 10 + b);
    sent.push_back({s % 2 == 1, blocks});
    reporter.add_step(std::move(blocks), s % 2 == 1);
  }
  EXPECT_EQ(reporter.pending_steps(), 5u);

  std::uint32_t seq = 7;
  const auto frames = reporter.flush(seq, rt::msec(10));
  EXPECT_EQ(frames.size(), 3u) << "2 + 2 + 1 steps under a 128-byte budget";
  EXPECT_EQ(reporter.pending_steps(), 0u);
  EXPECT_EQ(reporter.frames_emitted(), 3u);
  EXPECT_EQ(reporter.steps_reported(), 5u);

  // Streams reassemble in order, frames respect the budget, every frame
  // survives a real encode + decode round trip.
  std::vector<ipc::SpectrumStep> reassembled;
  std::uint32_t last_seq = 7;
  for (const ipc::Frame& f : frames) {
    EXPECT_EQ(f.type, ipc::FrameType::kSpectrum);
    EXPECT_EQ(f.block_count, 100u);
    EXPECT_EQ(f.seq, last_seq + 1);
    last_seq = f.seq;
    const auto bytes = ipc::encode_frame(f);
    ASSERT_FALSE(bytes.empty());
    EXPECT_LE(bytes.size() - ipc::kHeaderSize, config.frame_budget);
    ipc::FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    ipc::Frame decoded;
    ASSERT_EQ(decoder.next(decoded), ipc::DecodeStatus::kOk);
    for (const auto& step : decoded.spectra) reassembled.push_back(step);
  }
  ASSERT_EQ(reassembled.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(reassembled[i], sent[i]);
}

TEST(FleetDiagReporter, OversizeStepDroppedNotTorn) {
  fd::ReporterConfig config;
  config.block_count = 100;
  config.frame_budget = 32;  // too small for a 10-id step (45 + 8 bytes)
  fd::SpectrumReporter reporter(config);

  std::vector<std::uint32_t> wide;
  for (std::uint32_t b = 0; b < 10; ++b) wide.push_back(b);
  reporter.add_step(std::move(wide), true);
  EXPECT_EQ(reporter.oversize_steps(), 1u);
  EXPECT_EQ(reporter.pending_steps(), 0u) << "dropped whole, never queued";

  reporter.add_step({1, 2}, false);  // a narrow step still ships
  std::uint32_t seq = 0;
  EXPECT_EQ(reporter.flush(seq).size(), 1u);
}

TEST(FleetDiagReporter, EndStepFromRecorderSortsTouchedBlocks) {
  fd::ReporterConfig config;
  config.block_count = 50;
  fd::SpectrumReporter reporter(config);
  obs::BlockCoverageRecorder coverage(50);
  coverage.hit(31);
  coverage.hit(4);
  coverage.hit(17);
  coverage.hit(4);  // dedup
  reporter.end_step_from(coverage, true);

  std::uint32_t seq = 0;
  const auto frames = reporter.flush(seq);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].spectra.size(), 1u);
  EXPECT_EQ(frames[0].spectra[0].blocks, (std::vector<std::uint32_t>{4, 17, 31}));
  EXPECT_TRUE(frames[0].spectra[0].error);
}

// ============================================================ aggregator

TEST(FleetDiagAggregator, OnlineMatchesOfflineAfterEveryPrefix) {
  // Stream a synthetic program's spectra into the aggregator step by
  // step; after every prefix the aggregator's fresh report must be
  // bit-identical to SflRanker::rank over the recorded matrix.
  diag::SyntheticProgramConfig prog_cfg;
  prog_cfg.total_blocks = 400;
  prog_cfg.feature_count = 4;
  prog_cfg.seed = 11;
  diag::SyntheticProgram program(prog_cfg);
  program.set_fault_in_feature(2);

  fd::FleetAggregator agg(fd::AggregatorConfig{5, diag::Coefficient::kOchiai, 1});
  obs::BlockCoverageRecorder coverage(program.block_count());
  std::vector<bool> errors;

  for (std::size_t step = 0; step < 30; ++step) {
    const bool err = program.run_step(step % 4, coverage);
    std::vector<std::uint32_t> blocks;
    for (const std::size_t b : coverage.current_touched()) {
      blocks.push_back(static_cast<std::uint32_t>(b));
    }
    std::sort(blocks.begin(), blocks.end());
    agg.ingest("tv0", {ipc::SpectrumStep{err, blocks}});
    coverage.end_step();
    errors.push_back(err);

    const auto offline = diag::SflRanker().rank(coverage, errors, diag::Coefficient::kOchiai);
    expect_reports_equal(agg.report("tv0"), offline,
                         "prefix " + std::to_string(step + 1));
  }
  EXPECT_EQ(agg.steps_ingested(), 30u);
  EXPECT_EQ(agg.reports_ingested(), 30u);

  // The fault block must be localized once errors manifested.
  const auto report = agg.report("tv0");
  if (agg.health("tv0").error_steps > 0) {
    EXPECT_LE(report.rank_of(program.fault_block()), 5u);
  }
}

TEST(FleetDiagAggregator, CachedTopKStalenessBoundedByRefreshEvery) {
  fd::FleetAggregator agg(fd::AggregatorConfig{3, diag::Coefficient::kOchiai, 4});

  for (int i = 0; i < 3; ++i) {
    agg.ingest("suo", {ipc::SpectrumStep{true, {1, 2}}, ipc::SpectrumStep{false, {2, 3}}});
    EXPECT_TRUE(agg.top_suspects("suo").empty())
        << "cache refreshes only every 4 reports; report " << i + 1 << " must not";
  }
  EXPECT_FALSE(agg.report("suo").ranking.empty()) << "report() is always fresh";

  agg.ingest("suo", {ipc::SpectrumStep{true, {1, 2}}});  // 4th report: refresh
  const auto top = agg.top_suspects("suo");
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].block, 1u) << "block 1 only ever runs in error steps";
  EXPECT_GT(agg.ranking_churn(), 0u) << "empty -> non-empty top-k is churn";

  // A forced refresh with no new evidence must not churn further.
  const auto churn_before = agg.ranking_churn();
  agg.refresh();
  EXPECT_EQ(agg.ranking_churn(), churn_before);
}

TEST(FleetDiagAggregator, RetireSlotFreesStateAndRebuildsFleetView) {
  fd::FleetAggregator agg(fd::AggregatorConfig{5, diag::Coefficient::kOchiai, 1});
  agg.ingest("a", {ipc::SpectrumStep{true, {1}}, ipc::SpectrumStep{false, {2}}});
  agg.ingest("b", {ipc::SpectrumStep{true, {10}}, ipc::SpectrumStep{false, {11}}});
  EXPECT_EQ(agg.slot_count(), 2u);
  EXPECT_EQ(agg.fleet_report().blocks_considered, 4u);

  EXPECT_TRUE(agg.retire_slot("a"));
  EXPECT_FALSE(agg.retire_slot("a")) << "second retire is a no-op";
  EXPECT_EQ(agg.slot_count(), 1u);
  EXPECT_FALSE(agg.has_slot("a"));
  EXPECT_TRUE(agg.top_suspects("a").empty());

  // The fleet view forgets the retired slot's spectra entirely.
  const auto fleet = agg.fleet_report();
  EXPECT_EQ(fleet.blocks_considered, 2u);
  for (const auto& s : fleet.ranking) {
    EXPECT_GE(s.block, 10u) << "slot a's blocks must be gone from the fleet ranking";
  }
}

TEST(FleetDiagAggregator, ExportsHubDiagMetrics) {
  rt::MetricsRegistry metrics;
  fd::FleetAggregator agg(fd::AggregatorConfig{3, diag::Coefficient::kOchiai, 1}, &metrics);
  agg.ingest("tv0", {ipc::SpectrumStep{true, {1, 2, 3}}, ipc::SpectrumStep{false, {2}}});

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counter("hub.diag.reports"), 1u);
  EXPECT_EQ(snap.counter("hub.diag.steps"), 2u);
  EXPECT_EQ(snap.counter("hub.diag.error_steps"), 1u);
  EXPECT_EQ(snap.counter("hub.diag.block_updates"), 4u);
  EXPECT_GE(snap.counter("hub.diag.refreshes"), 1u);
  ASSERT_TRUE(snap.gauges.count("hub.diag.slots"));
  EXPECT_EQ(snap.gauges.at("hub.diag.slots"), 1.0);
  ASSERT_TRUE(snap.gauges.count("hub.diag.health/tv0"));
  EXPECT_DOUBLE_EQ(snap.gauges.at("hub.diag.health/tv0"), 0.5);  // 1 of 2 steps erred
  ASSERT_TRUE(snap.gauges.count("hub.diag.top_block/tv0"));

  agg.retire_slot("tv0");
  EXPECT_EQ(metrics.snapshot().counter("hub.diag.retired_slots"), 1u);
}

// ========================================================== hub sockets

class FleetDiagHub : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FleetDiagHub, StreamedRankingsMatchOfflineAtEveryPrefix) {
  // The acceptance differential: spectra streamed through real AF_UNIX
  // sockets into a live hub must yield per-slot rankings byte-identical
  // to an offline diagnosis over the same spectra — after ANY prefix of
  // the report stream, at every pinned shard count.
  hub::HubConfig config;
  config.probe_liveness = false;
  config.shards = GetParam();
  hub::AwarenessHub awareness_hub(config);
  awareness_hub.add_slot("tv0");
  ASSERT_TRUE(awareness_hub.start());

  ipc::FramedSocket sock;
  ASSERT_EQ(handshake(awareness_hub, sock, "tv0"), ipc::FrameType::kHelloAck);

  diag::SyntheticProgramConfig prog_cfg;
  prog_cfg.total_blocks = 600;
  prog_cfg.feature_count = 3;
  prog_cfg.seed = 23;
  diag::SyntheticProgram program(prog_cfg);
  program.set_fault_in_feature(1);

  fd::ReporterConfig rep_cfg;
  rep_cfg.block_count = static_cast<std::uint32_t>(program.block_count());
  rep_cfg.flush_steps = 0;
  fd::SpectrumReporter reporter(rep_cfg);
  obs::BlockCoverageRecorder coverage(program.block_count());
  std::vector<bool> errors;
  std::uint32_t seq = 0;
  std::uint64_t reports_sent = 0;

  for (std::size_t step = 0; step < 24; ++step) {
    const bool err = program.run_step(step % 3, coverage);
    reporter.end_step_from(coverage, err);
    coverage.end_step();
    errors.push_back(err);
    if ((step + 1) % 3 != 0) continue;

    // Ship a 3-step report, wait for ingest, compare the prefix.
    for (const ipc::Frame& f : reporter.flush(seq, rt::msec(10 * (step + 1)))) {
      ASSERT_TRUE(sock.send(f));
      ++reports_sent;
    }
    ASSERT_TRUE(pump_until(awareness_hub, [&] {
      return awareness_hub.diagnosis().reports_ingested() == reports_sent;
    }));
    const auto offline = diag::SflRanker().rank(coverage, errors, diag::Coefficient::kOchiai);
    expect_reports_equal(awareness_hub.diagnosis().report("tv0"), offline,
                         "shards " + std::to_string(GetParam()) + " prefix " +
                             std::to_string(errors.size()));
  }

  EXPECT_EQ(awareness_hub.diagnosis().steps_ingested(), 24u);
  EXPECT_GT(awareness_hub.metrics().counter("hub.spectra_frames"), 0u);
  awareness_hub.stop();
}

INSTANTIATE_TEST_SUITE_P(Shards, FleetDiagHub, ::testing::Values(1, 2, 4));

TEST(FleetDiagHubLifecycle, SpectraPersistAcrossReconnect) {
  // Diagnosis state must survive a supervisor outage: the slot's
  // accumulated spectra meet the reconnected SUO's new spectra in one
  // ranking (an outage must not amnesia the diagnosis).
  hub::HubConfig config;
  config.probe_liveness = false;
  hub::AwarenessHub awareness_hub(config);
  awareness_hub.add_slot("tv0");
  ASSERT_TRUE(awareness_hub.start());

  ipc::Frame report;
  report.type = ipc::FrameType::kSpectrum;
  report.block_count = 8;
  report.spectra.push_back({true, {1, 2}});
  report.spectra.push_back({false, {2, 3}});

  {
    ipc::FramedSocket sock;
    ASSERT_EQ(handshake(awareness_hub, sock, "tv0"), ipc::FrameType::kHelloAck);
    ASSERT_TRUE(sock.send(report));
    ASSERT_TRUE(pump_until(awareness_hub, [&] {
      return awareness_hub.diagnosis().steps_ingested() == 2;
    }));
  }  // abrupt close: an outage, not an orderly goodbye
  ASSERT_TRUE(pump_until(awareness_hub, [&] { return awareness_hub.connection_count() == 0; }));
  EXPECT_TRUE(awareness_hub.diagnosis().has_slot("tv0")) << "outage must not retire diagnosis";

  // First reconnect attempt is free (0ms backoff).
  ipc::FramedSocket again;
  ASSERT_EQ(handshake(awareness_hub, again, "tv0"), ipc::FrameType::kHelloAck);
  ASSERT_TRUE(again.send(report));
  ASSERT_TRUE(pump_until(awareness_hub, [&] {
    return awareness_hub.diagnosis().steps_ingested() == 4;
  }));

  const auto health = awareness_hub.diagnosis().health("tv0");
  EXPECT_EQ(health.steps, 4u) << "both sessions' spectra accumulate";
  EXPECT_EQ(health.error_steps, 2u);
  const auto ranking = awareness_hub.diagnosis().report("tv0");
  EXPECT_EQ(ranking.rank_of(1), 1u) << "block 1 runs only in error steps";
  awareness_hub.stop();
}

TEST(FleetDiagHubLifecycle, PermanentSlotFailureRetiresDiagState) {
  hub::HubConfig config;
  config.probe_liveness = false;
  config.heartbeat_interval_ms = 1000;  // wide stability window
  config.supervisor.max_attempts = 1;   // second unstable crash => failed
  hub::AwarenessHub awareness_hub(config);
  awareness_hub.add_slot("tv0");
  ASSERT_TRUE(awareness_hub.start());

  ipc::Frame report;
  report.type = ipc::FrameType::kSpectrum;
  report.block_count = 4;
  report.spectra.push_back({true, {0, 1}});

  for (int session = 0; session < 2; ++session) {
    ipc::FramedSocket sock;
    ASSERT_EQ(handshake(awareness_hub, sock, "tv0"), ipc::FrameType::kHelloAck);
    ASSERT_TRUE(sock.send(report));
    ASSERT_TRUE(pump_until(awareness_hub, [&] {
      return awareness_hub.diagnosis().steps_ingested() ==
             static_cast<std::uint64_t>(session + 1);
    }));
    sock = ipc::FramedSocket();  // crash
    ASSERT_TRUE(
        pump_until(awareness_hub, [&] { return awareness_hub.connection_count() == 0; }));
  }

  ASSERT_NE(awareness_hub.slot_supervisor("tv0"), nullptr);
  EXPECT_TRUE(awareness_hub.slot_supervisor("tv0")->exhausted());
  EXPECT_FALSE(awareness_hub.diagnosis().has_slot("tv0"))
      << "a permanently failed slot frees its aggregator state";
  EXPECT_EQ(awareness_hub.diagnosis().slot_count(), 0u);
  awareness_hub.stop();
}

// ============================================================= publisher

TEST(FleetDiagPublisher, StreamsSpectraWhenNegotiatedVersionAllows) {
  hub::HubConfig config;
  config.probe_liveness = false;
  hub::AwarenessHub awareness_hub(config);
  awareness_hub.add_slot("tv0");
  ASSERT_TRUE(awareness_hub.start());

  hub::PublisherConfig pub;
  pub.hub_path = awareness_hub.path();
  pub.name = "tv0";
  pub.horizon = rt::msec(600);
  pub.key_period = rt::msec(50);
  pub.diag.enabled = true;
  pub.diag.program.total_blocks = 800;
  pub.diag.program.feature_count = 6;
  pub.diag.fault_feature = 2;
  pub.diag.flush_steps = 4;
  hub::PublisherStats stats;
  int rc = -1;
  std::thread suo([&] { rc = hub::run_hub_publisher(pub, &stats); });

  // Pump through connect, handshake, the streamed horizon and the
  // orderly goodbye (steps_ingested only moves once spectra arrive, so
  // the predicate cannot fire before the publisher ever connected).
  ASSERT_TRUE(pump_until(awareness_hub, [&] {
    return awareness_hub.diagnosis().steps_ingested() > 0 &&
           awareness_hub.connection_count() == 0;
  }));
  suo.join();

  EXPECT_EQ(rc, 0);
  EXPECT_EQ(stats.negotiated_version, ipc::kProtocolVersion);
  EXPECT_GT(stats.spectrum_steps, 0u);
  EXPECT_GT(stats.spectrum_frames, 0u);
  EXPECT_EQ(awareness_hub.diagnosis().steps_ingested(), stats.spectrum_steps);
  const auto health = awareness_hub.diagnosis().health("tv0");
  EXPECT_EQ(health.steps, stats.spectrum_steps);
  awareness_hub.stop();
}

TEST(FleetDiagPublisher, NoSpectraOnAVersion1Link) {
  // A hub capped at protocol v1 negotiates 1; the publisher must not
  // run the instrumented program at all, let alone send kSpectrum.
  hub::HubConfig config;
  config.probe_liveness = false;
  config.max_version = 1;
  hub::AwarenessHub awareness_hub(config);
  awareness_hub.add_slot("tv0");
  ASSERT_TRUE(awareness_hub.start());

  hub::PublisherConfig pub;
  pub.hub_path = awareness_hub.path();
  pub.name = "tv0";
  pub.horizon = rt::msec(300);
  pub.key_period = rt::msec(50);
  pub.diag.enabled = true;
  hub::PublisherStats stats;
  int rc = -1;
  std::thread suo([&] { rc = hub::run_hub_publisher(pub, &stats); });

  ASSERT_TRUE(pump_until(awareness_hub, [&] {
    return awareness_hub.events_ingested() > 0 && awareness_hub.connection_count() == 0;
  }));
  suo.join();

  EXPECT_EQ(rc, 0);
  EXPECT_EQ(stats.negotiated_version, 1);
  EXPECT_EQ(stats.spectrum_steps, 0u);
  EXPECT_EQ(stats.spectrum_frames, 0u);
  EXPECT_EQ(awareness_hub.diagnosis().slot_count(), 0u);
  awareness_hub.stop();
}

// =========================================================== concurrency

// Run under TSan by the scripts/check.sh fleetdiag stage: 2 ingest
// threads and 2 query threads hammer one aggregator concurrently.
TEST(FleetDiagConcurrency, ParallelIngestAndRankingQueries) {
  fd::FleetAggregator agg(fd::AggregatorConfig{5, diag::Coefficient::kOchiai, 3});
  constexpr int kReportsPerSlot = 400;
  std::atomic<bool> stop{false};

  const auto ingest = [&](const std::string& slot, std::uint64_t seed) {
    rt::Rng rng(seed);
    for (int i = 0; i < kReportsPerSlot; ++i) {
      std::vector<std::uint32_t> blocks;
      for (std::uint32_t b = 0; b < 64; ++b) {
        if (rng.uniform(0.0, 1.0) < 0.3) blocks.push_back(b);
      }
      const bool err = rng.uniform(0.0, 1.0) < 0.25;
      agg.ingest(slot, {ipc::SpectrumStep{err, blocks}});
    }
  };
  const auto query = [&](int which) {
    std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (which == 0) {
        sink += agg.top_suspects("a").size() + agg.fleet_top_suspects().size();
        sink += agg.report("b").ranking.size();
      } else {
        for (const auto& h : agg.fleet_health()) sink += h.steps;
        sink += agg.fleet_report().blocks_considered;
        agg.refresh();
      }
    }
    EXPECT_GE(sink, 0u);
  };

  std::thread t1(ingest, "a", 101);
  std::thread t2(ingest, "b", 202);
  std::thread q1(query, 0);
  std::thread q2(query, 1);
  t1.join();
  t2.join();
  stop.store(true, std::memory_order_relaxed);
  q1.join();
  q2.join();

  EXPECT_EQ(agg.reports_ingested(), 2u * kReportsPerSlot);
  EXPECT_EQ(agg.steps_ingested(), 2u * kReportsPerSlot);
  EXPECT_EQ(agg.health("a").steps + agg.health("b").steps, 2u * kReportsPerSlot);
  EXPECT_EQ(agg.fleet_report().blocks_considered, 64u);
}

// ============================================================== campaign

TEST(FleetDiagCampaign, UniformDrawLocalizesManifestedFaults) {
  tk::DiagCampaignConfig config;
  config.seed = 41;
  config.scenarios = 10;
  config.draw.aspects = 4;
  config.draw.horizon = rt::msec(400);
  config.program.total_blocks = 1200;
  config.top_k = 10;
  const auto report = tk::DiagnosisCampaign(config).run();

  EXPECT_EQ(report.scenarios, 10u);
  EXPECT_EQ(report.scored + report.silent + report.clean, report.scenarios);
  EXPECT_GT(report.scored, 0u) << "a 10-scenario campaign must manifest something";
  EXPECT_GT(report.spectrum_frames, 0u);
  // The intermittent-fault model (error only inside the activation
  // window) leaves pass-steps that executed the fault block, so exact
  // top-10 hits are not guaranteed — but localization must still beat
  // chance by a wide margin (1200 blocks; random wasted effort ~0.5).
  for (const auto& score : report.scores) {
    if (!score.scored) continue;
    EXPECT_LE(score.block_rank, 150u)
        << score.scenario << ": seeded fault block must rank in the top ~12%";
    EXPECT_LT(score.wasted_effort, 0.15) << score.scenario;
    EXPECT_LE(score.component_rank, 2u)
        << score.scenario << ": the faulty feature must lead the component ranking";
  }
  EXPECT_GT(report.top_k_hits, 0u) << "some scenario must localize within the top-10";
  // The JSON table bench_diag_hub ships must be well-formed enough to
  // contain every kind bucket.
  const auto json = report.to_json();
  EXPECT_NE(json.find("\"by_kind\""), std::string::npos);
  EXPECT_NE(json.find("\"top_k_rate\""), std::string::npos);
}

TEST(FleetDiagCampaign, ShippedFuzzFindingsLocalizeTrueTargetInTopK) {
  // Close the loop with the fuzzer: every minimized missed-detection
  // finding in the shipped corpus becomes a labeled diagnosis scenario;
  // whenever its fault manifests spectrally, the true target must land
  // in the top-k suspects.
  const std::string path = corpus_path();
  ASSERT_FALSE(path.empty()) << "FUZZ_corpus.json must ship at the repo root";
  const auto findings = tk::load_findings(path);
  ASSERT_FALSE(findings.empty()) << "corpus must contain replayable findings";
  for (const auto& f : findings) {
    EXPECT_FALSE(f.script.fault_plan().empty()) << f.script.name();
    EXPECT_FALSE(f.original.empty());
  }

  tk::DiagCampaignConfig config;
  config.program.total_blocks = 1500;
  config.top_k = 10;
  const auto report = tk::DiagnosisCampaign(config).run(findings);
  EXPECT_EQ(report.scenarios, findings.size());
  EXPECT_GT(report.scored, 0u) << "at least one finding must manifest spectrally";
  for (const auto& score : report.scores) {
    if (!score.scored) continue;
    EXPECT_TRUE(score.in_top_k)
        << score.scenario << " kind=" << score.kind << " rank=" << score.block_rank;
  }
}

TEST(FleetDiagCampaign, FindingsParserRoundTripsScripts) {
  const std::string path = corpus_path();
  ASSERT_FALSE(path.empty());
  const auto findings = tk::load_findings(path);
  ASSERT_FALSE(findings.empty());
  // Re-serializing a parsed script must reproduce the canonical JSON it
  // was parsed from (modulo being embedded in the findings wrapper).
  std::ifstream in(path);
  std::string corpus((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  for (const auto& f : findings) {
    std::string json = tk::script_to_json(f.script);
    // The corpus pretty-prints; strip whitespace from both before
    // comparing containment.
    const auto strip = [](std::string s) {
      std::string out;
      bool in_string = false;
      for (const char c : s) {
        if (c == '"') in_string = !in_string;
        if (in_string || (c != ' ' && c != '\n' && c != '\t' && c != '\r')) out += c;
      }
      return out;
    };
    EXPECT_NE(strip(corpus).find(strip(json)), std::string::npos)
        << f.script.name() << " did not round-trip";
  }
}
