// Property-based suites: determinism of the whole simulation stack,
// comparator tolerance laws, state machine structural invariants, and
// the memory-corruption / SoC-trace wiring.
#include <gtest/gtest.h>

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "detection/detectors.hpp"
#include "faults/injector.hpp"
#include "observation/soc_trace.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/explorer.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace sm = trader::statemachine;
namespace core = trader::core;
namespace det = trader::detection;
namespace obs = trader::observation;
namespace flt = trader::faults;

// ------------------------------------------------------------- Determinism

namespace {

// A fingerprint of a randomized TV session: every output event folded
// into a hash, plus final stats.
std::uint64_t session_fingerprint(std::uint64_t seed) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(seed)};
  tv::TvConfig config;
  config.seed = seed;
  tv::TvSystem set(sched, bus, injector, config);

  std::uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](const std::string& s) {
    for (unsigned char c : s) {
      hash ^= c;
      hash *= 1099511628211ULL;
    }
  };
  bus.subscribe("tv.output", [&](const rt::Event& ev) {
    mix(ev.describe());
  });

  set.start();
  rt::Rng rng(seed ^ 0x5A5A);
  set.press(tv::Key::kPower);
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", rt::sec(2),
                                   rt::msec(500), 0.5, {}});
  for (int i = 0; i < 40; ++i) {
    const auto key = static_cast<tv::Key>(rng.uniform_int(0, 25));
    set.press(key);
    sched.run_for(rng.uniform_int(10, 400) * 1000);
  }
  mix(std::to_string(set.stats().frames_total));
  mix(std::to_string(set.stats().frames_dropped));
  mix(std::to_string(set.stats().quality_sum));
  return hash;
}

}  // namespace

class Determinism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Determinism, IdenticalSeedsProduceIdenticalSessions) {
  // Bit-exact reproducibility is what makes every experiment in
  // EXPERIMENTS.md regenerable; guard it explicitly.
  EXPECT_EQ(session_fingerprint(GetParam()), session_fingerprint(GetParam()));
}

TEST_P(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(session_fingerprint(GetParam()), session_fingerprint(GetParam() + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism, ::testing::Values(1, 7, 42, 1234));

// ------------------------------------------------------ Comparator properties

namespace {

// Drive a bare comparator through a scripted deviation pattern and count
// reports. Uses the monitor plumbing with a trivial echo SUO.
struct ComparatorLab {
  explicit ComparatorLab(int max_consecutive, double threshold) {
    sm::StateMachineDef def("lab");
    const auto s = def.add_state("S");
    def.add_internal(s, "set", nullptr, [](sm::ActionEnv& env) {
      env.vars.set("want", env.event.params.at("v"));
      env.emit("x", {{"value", env.event.params.at("v")}});
    });
    core::ObservableConfig oc;
    oc.name = "x";
    oc.threshold = threshold;
    oc.max_consecutive = max_consecutive;
    oc.time_based = false;  // fully event-driven for exact counting
    monitor = core::MonitorBuilder(sched, bus)
                  .model(std::move(def))
                  .input_topic("lab.in")
                  .output_topic("lab.out")
                  .observe(oc)
                  .startup_grace(0)
                  .comparison_period(rt::sec(100))  // effectively off
                  .build();
    monitor->start();
  }

  // Model expects `want`; system reports `got`.
  void step(std::int64_t want, std::int64_t got) {
    rt::Event in;
    in.topic = "lab.in";
    in.name = "set";
    in.fields["v"] = want;
    bus.publish(in);
    sched.run_for(rt::msec(5));
    rt::Event out;
    out.topic = "lab.out";
    out.name = "x";
    out.fields["value"] = got;
    bus.publish(out);
    sched.run_for(rt::msec(5));
  }

  rt::Scheduler sched;
  rt::EventBus bus;
  std::unique_ptr<core::AwarenessMonitor> monitor;
};

}  // namespace

class ComparatorLaw : public ::testing::TestWithParam<int> {};

TEST_P(ComparatorLaw, ErrorExactlyWhenStreakReachesLimit) {
  const int limit = GetParam();
  {
    ComparatorLab lab(limit, 0.0);
    // Streak of limit-1 deviations, then agreement: no error.
    for (int i = 0; i < limit - 1; ++i) lab.step(10, 99);
    lab.step(10, 10);
    EXPECT_TRUE(lab.monitor->errors().empty()) << "limit " << limit;
  }
  {
    ComparatorLab lab(limit, 0.0);
    // Streak of exactly limit deviations: exactly one error.
    for (int i = 0; i < limit; ++i) lab.step(10, 99);
    EXPECT_EQ(lab.monitor->errors().size(), 1u) << "limit " << limit;
    EXPECT_EQ(lab.monitor->errors()[0].consecutive, limit);
  }
}

TEST_P(ComparatorLaw, EpisodesResetAfterAgreement) {
  const int limit = GetParam();
  ComparatorLab lab(limit, 0.0);
  for (int episode = 0; episode < 3; ++episode) {
    for (int i = 0; i < limit; ++i) lab.step(10, 99);
    lab.step(10, 10);  // close the episode
  }
  EXPECT_EQ(lab.monitor->errors().size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Limits, ComparatorLaw, ::testing::Values(1, 2, 3, 5, 8));

class ThresholdLaw : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdLaw, DeviationsWithinThresholdNeverReport) {
  const double threshold = GetParam();
  ComparatorLab lab(1, threshold);
  for (int i = 0; i < 10; ++i) {
    lab.step(100, 100 + static_cast<std::int64_t>(threshold));  // at the edge
  }
  EXPECT_TRUE(lab.monitor->errors().empty());
  lab.step(100, 100 + static_cast<std::int64_t>(threshold) + 1);  // past it
  EXPECT_EQ(lab.monitor->errors().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdLaw, ::testing::Values(0.0, 1.0, 5.0, 20.0));

// ----------------------------------------------- state machine invariants

class MachineInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MachineInvariants, ActivePathIsAlwaysARootChain) {
  // On random walks over the TV spec model, the active configuration
  // must always be a parent chain ending in a leaf, and vars stay sane.
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  m.start(0);
  rt::Rng rng(GetParam());
  const auto alphabet = sm::event_alphabet(def);
  rt::SimTime now = 0;
  for (int i = 0; i < 400; ++i) {
    if (rng.bernoulli(0.25)) {
      now += rng.uniform_int(1, 2'000'000);
      m.advance_time(now);
    } else {
      const auto& ev = alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size() - 1)))];
      m.dispatch(sm::SmEvent::named(ev), now);
    }
    const auto path = m.active_path();
    ASSERT_FALSE(path.empty());
    // Each element's dotted path must be a prefix of the next.
    for (std::size_t k = 1; k < path.size(); ++k) {
      ASSERT_EQ(path[k].rfind(path[k - 1] + ".", 0), 0u)
          << path[k - 1] << " vs " << path[k];
    }
    const auto vol = m.vars().get_int("volume", 30);
    ASSERT_GE(vol, 0);
    ASSERT_LE(vol, 100);
    ASSERT_FALSE(m.livelock_detected());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineInvariants, ::testing::Values(3, 14, 159, 265));

// -------------------------------------------- memory corruption + soc trace

TEST(MemoryCorruption, CaughtByRangeProbeAndComparator) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(5));
  tv::TvSystem set(sched, bus, injector);
  auto monitor = core::MonitorBuilder(sched, bus)
                     .model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
                     .comparison_period(rt::msec(20))
                     .startup_grace(rt::msec(100))
                     .threshold("sound_level", 0.0, /*max_consecutive=*/3)
                     .build();
  set.start();
  monitor->start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(300));

  injector.schedule(flt::FaultSpec{flt::FaultKind::kMemoryCorruption, "control.volume",
                                   sched.now(), 0, 1.0, {}});
  sched.run_for(rt::msec(100));
  // The corrupted belief propagates on the next volume key press.
  set.press(tv::Key::kVolumeUp);
  sched.run_for(rt::msec(500));

  det::DetectionLog log;
  det::RangeChecker ranges(set.probes());
  ranges.poll(log);
  EXPECT_GE(log.count("range"), 1u);            // out-of-range write seen
  EXPECT_FALSE(monitor->errors().empty());      // user-visible divergence too
  EXPECT_GE(injector.first_activation("control.volume"), 0);
}

TEST(SocTrace, SamplesCountersIntoProbesMonitorAndLog) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(5));
  tv::TvSystem set(sched, bus, injector);
  obs::ResourceMonitor monitor(rt::msec(200));
  rt::TraceLog trace;
  obs::SocTraceUnit unit(sched, set.probes(), monitor, trace, rt::msec(20), 5);
  unit.watch_ranged("trace.cpu0", [&set] { return set.cpu(0).load(); }, 0.0, 1.2);
  unit.watch("trace.buffer", [&set] { return set.probes().num("video_buffer.level"); });
  unit.start();
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::sec(2));
  EXPECT_GT(unit.samples(), 50u);
  EXPECT_GT(set.probes().num("trace.cpu0"), 0.0);
  EXPECT_GT(monitor.utilization("trace.cpu0", sched.now()), 0.0);
  EXPECT_GT(trace.count_component("soc-trace"), 0u);
  unit.stop();
  const auto samples_at_stop = unit.samples();
  sched.run_for(rt::sec(1));
  EXPECT_EQ(unit.samples(), samples_at_stop);
}

TEST(SocTrace, RangedWatchFiresViolationsUnderOverload) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(5));
  tv::TvSystem set(sched, bus, injector);
  obs::ResourceMonitor monitor;
  rt::TraceLog trace;
  obs::SocTraceUnit unit(sched, set.probes(), monitor, trace, rt::msec(20));
  unit.watch_ranged("trace.cpu0", [&set] { return set.cpu(0).load(); }, 0.0, 1.1);
  unit.start();
  set.start();
  set.press(tv::Key::kPower);
  injector.schedule(flt::FaultSpec{flt::FaultKind::kTaskOverrun, "decoder", rt::sec(1), 0, 1.0,
                                   {}});
  injector.schedule(flt::FaultSpec{flt::FaultKind::kBadSignal, "tuner", rt::sec(1), 0, 0.5,
                                   {}});
  sched.run_for(rt::sec(4));
  det::DetectionLog log;
  det::RangeChecker ranges(set.probes());
  ranges.poll(log);
  EXPECT_GE(log.count("range"), 1u);
}
