// Tests for parallel machine composition (MachineSet / ParallelModel)
// and random-walk exploration.
#include <gtest/gtest.h>

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/explorer.hpp"
#include "statemachine/machine_set.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace sm = trader::statemachine;
namespace rt = trader::runtime;
namespace core = trader::core;
namespace tv = trader::tv;
namespace flt = trader::faults;

namespace {

// Region 1: a power toggle emitting "powered".
sm::StateMachineDef power_region() {
  sm::StateMachineDef def("power");
  const auto off = def.add_state("Off");
  const auto on = def.add_state("On");
  def.on_entry(off, [](sm::ActionEnv& env) { env.emit("powered", {{"value", false}}); });
  def.on_entry(on, [](sm::ActionEnv& env) { env.emit("powered", {{"value", true}}); });
  def.add_transition(off, on, "power");
  def.add_transition(on, off, "power");
  return def;
}

// Region 2: a volume counter emitting "sound_level".
sm::StateMachineDef volume_region() {
  sm::StateMachineDef def("volume");
  const auto idle = def.add_state("Idle");
  def.on_entry(idle, [](sm::ActionEnv& env) {
    env.vars.set_int("volume", 30);
    env.emit("sound_level", {{"value", std::int64_t{30}}});
  });
  def.add_internal(idle, "volume_up", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("volume", env.vars.get_int("volume") + 5);
    env.emit("sound_level", {{"value", env.vars.get_int("volume")}});
  });
  // A maintenance window where comparison must be off.
  def.add_internal(idle, "calibrate", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_bool("nocompare:sound_level", true);
  });
  return def;
}

sm::MachineSet make_set() {
  sm::MachineSet set;
  set.add_region("power", power_region());
  set.add_region("volume", volume_region());
  return set;
}

}  // namespace

TEST(MachineSet, EventsFanOutToAllRegions) {
  auto set = make_set();
  set.start(0);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.in("Off"));
  EXPECT_TRUE(set.in("Idle"));
  EXPECT_EQ(set.dispatch(sm::SmEvent::named("power"), 1), 1);  // only power reacts
  EXPECT_TRUE(set.in("On"));
  EXPECT_EQ(set.dispatch(sm::SmEvent::named("volume_up"), 2), 1);
  EXPECT_EQ(set.region("volume").vars().get_int("volume"), 35);
}

TEST(MachineSet, OutputsMergeInRegionOrder) {
  auto set = make_set();
  set.start(0);
  const auto outs = set.drain_outputs();
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0].name, "powered");      // region added first
  EXPECT_EQ(outs[1].name, "sound_level");
}

TEST(MachineSet, ConfigurationAndNames) {
  auto set = make_set();
  set.start(0);
  const auto cfg = set.configuration();
  ASSERT_EQ(cfg.size(), 2u);
  EXPECT_EQ(cfg[0], "power=Off");
  EXPECT_EQ(set.region_names()[1], "volume");
  EXPECT_THROW(set.region("nope"), std::out_of_range);
}

TEST(MachineSet, DeadlinesAggregateAcrossRegions) {
  sm::MachineSet set;
  sm::StateMachineDef timed("t");
  const auto a = timed.add_state("A");
  const auto b = timed.add_state("B");
  timed.add_timed(a, b, 500);
  set.add_region("power", power_region());
  set.add_region("timed", std::move(timed));
  set.start(100);
  EXPECT_EQ(set.next_deadline(), 600);
  EXPECT_EQ(set.advance_time(600), 1);
  EXPECT_TRUE(set.in("B"));
}

TEST(ParallelModel, ServesAsAwarenessModel) {
  rt::Scheduler sched;
  rt::EventBus bus;

  core::ParallelModel model(make_set());
  model.start(0);
  EXPECT_TRUE(model.dispatch(sm::SmEvent::named("volume_up"), 1));
  bool saw_sound = false;
  for (const auto& o : model.drain_outputs()) saw_sound |= o.name == "sound_level";
  EXPECT_TRUE(saw_sound);
  EXPECT_NE(model.state_name().find("power=Off"), std::string::npos);
}

TEST(ParallelModel, NocompareInAnyRegionDisables) {
  core::ParallelModel model(make_set());
  model.start(0);
  EXPECT_TRUE(model.comparison_enabled("sound_level"));
  model.dispatch(sm::SmEvent::named("calibrate"), 1);
  EXPECT_FALSE(model.comparison_enabled("sound_level"));
  EXPECT_TRUE(model.comparison_enabled("powered"));  // other observable fine
}

TEST(ParallelModel, MonitorsRealTvWithPerAspectRegions) {
  // The §3 deployment: tiny per-aspect regions instead of one monolith.
  // The full TV spec model handles power/volume coupling; here the
  // parallel composition of the full model with itself is pointless, so
  // instead run the real spec model region alongside the independent
  // volume region and monitor only observables each region owns.
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(1));
  tv::TvSystem set(sched, bus, injector);

  sm::MachineSet regions;
  regions.add_region("tv", tv::build_tv_spec_model());

  core::MonitorBuilder builder(sched, bus);
  builder.model(std::make_unique<core::ParallelModel>(std::move(regions)))
      .comparison_period(rt::msec(20))
      .startup_grace(rt::msec(100));
  for (const char* name : {"sound_level", "screen_state"}) {
    builder.threshold(name, 0.0, /*max_consecutive=*/3);
  }
  auto monitor = builder.build();
  set.start();
  monitor->start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(300));
  set.press(tv::Key::kVolumeUp);
  sched.run_for(rt::msec(300));
  EXPECT_TRUE(monitor->errors().empty());
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", sched.now(),
                                   rt::msec(50), 1.0, {}});
  set.press(tv::Key::kVolumeUp);
  sched.run_for(rt::msec(500));
  EXPECT_FALSE(monitor->errors().empty());
}

// ------------------------------------------------------------------ Explorer

TEST(Explorer, AlphabetExtraction) {
  const auto def = power_region();
  const auto alphabet = sm::event_alphabet(def);
  ASSERT_EQ(alphabet.size(), 1u);
  EXPECT_EQ(alphabet[0], "power");
}

TEST(Explorer, FullCoverageOnSimpleMachine) {
  sm::RandomWalkExplorer explorer;
  const auto report = explorer.explore(power_region());
  EXPECT_EQ(report.states_total, 2u);
  EXPECT_EQ(report.states_visited, 2u);
  EXPECT_TRUE(report.never_visited.empty());
  EXPECT_DOUBLE_EQ(report.state_coverage(), 1.0);
  EXPECT_GT(report.transitions_fired, 0u);
  EXPECT_FALSE(report.livelock_seen);
}

TEST(Explorer, FindsGuardLockedState) {
  sm::StateMachineDef def("g");
  const auto a = def.add_state("A");
  const auto b = def.add_state("Locked");
  // Guard can never be satisfied: the static checker (optimistic about
  // guards) believes Locked is reachable; exploration shows otherwise.
  def.add_transition(a, b, "go",
                     [](const sm::Context&, const sm::SmEvent&) { return false; });
  def.add_transition(b, a, "back");
  sm::RandomWalkExplorer explorer;
  const auto report = explorer.explore(def);
  ASSERT_EQ(report.never_visited.size(), 1u);
  EXPECT_EQ(report.never_visited[0], "Locked");
  EXPECT_LT(report.state_coverage(), 1.0);
}

TEST(Explorer, TvSpecModelIsFullyExplorable) {
  sm::ExplorationConfig cfg;
  cfg.runs = 6;
  cfg.steps_per_run = 800;
  cfg.seed = 9;
  sm::RandomWalkExplorer explorer(cfg);
  const auto report = explorer.explore(tv::build_tv_spec_model());
  EXPECT_DOUBLE_EQ(report.state_coverage(), 1.0)
      << "unvisited: " << (report.never_visited.empty() ? "" : report.never_visited[0]);
  EXPECT_FALSE(report.livelock_seen);
}

TEST(Explorer, DetectsLivelock) {
  sm::StateMachineDef def("live");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_completion(a, b);
  def.add_completion(b, a);
  sm::RandomWalkExplorer explorer;
  const auto report = explorer.explore(def);
  EXPECT_TRUE(report.livelock_seen);
}

TEST(Explorer, VisitCountsArePopulated) {
  sm::RandomWalkExplorer explorer;
  const auto report = explorer.explore(power_region());
  EXPECT_GT(report.visit_counts.at("Off"), 0u);
  EXPECT_GT(report.visit_counts.at("On"), 0u);
}
