// Tests for the media-player SUO (§5, MPlayer case study): transport
// correctness, A/V-sync performance issues, and awareness integration.
#include <gtest/gtest.h>

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "detection/detectors.hpp"
#include "faults/injector.hpp"
#include "mediaplayer/player.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/checker.hpp"
#include "statemachine/test_script.hpp"

namespace mp = trader::mediaplayer;
namespace rt = trader::runtime;
namespace sm = trader::statemachine;
namespace core = trader::core;
namespace det = trader::detection;
namespace flt = trader::faults;

namespace {

struct PlayerFixture {
  PlayerFixture() : injector(rt::Rng(9)), player(sched, bus, injector) { player.start(); }

  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector;
  mp::MediaPlayer player;
};

}  // namespace

TEST(Player, StartsStopped) {
  PlayerFixture f;
  EXPECT_EQ(f.player.state(), mp::PlayerState::kStopped);
  f.sched.run_for(rt::sec(1));
  EXPECT_DOUBLE_EQ(f.player.position_seconds(), 0.0);
}

TEST(Player, PlayAdvancesClocksInSync) {
  PlayerFixture f;
  f.player.play();
  f.sched.run_for(rt::sec(5));
  EXPECT_EQ(f.player.state(), mp::PlayerState::kPlaying);
  EXPECT_NEAR(f.player.position_seconds(), 5.0, 0.3);
  EXPECT_NEAR(f.player.av_offset_ms(), 0.0, 45.0);
  EXPECT_GT(f.player.frames_rendered(), 100u);
}

TEST(Player, PauseFreezesPosition) {
  PlayerFixture f;
  f.player.play();
  f.sched.run_for(rt::sec(2));
  f.player.pause();
  const double pos = f.player.position_seconds();
  f.sched.run_for(rt::sec(3));
  EXPECT_EQ(f.player.state(), mp::PlayerState::kPaused);
  EXPECT_DOUBLE_EQ(f.player.position_seconds(), pos);
  f.player.play();
  f.sched.run_for(rt::sec(1));
  EXPECT_GT(f.player.position_seconds(), pos);
}

TEST(Player, StopResetsClocks) {
  PlayerFixture f;
  f.player.play();
  f.sched.run_for(rt::sec(2));
  f.player.stop();
  EXPECT_EQ(f.player.state(), mp::PlayerState::kStopped);
  EXPECT_DOUBLE_EQ(f.player.position_seconds(), 0.0);
}

TEST(Player, SeekJumpsAndRebuffers) {
  PlayerFixture f;
  f.player.play();
  f.sched.run_for(rt::sec(2));
  f.player.seek(120.0);
  EXPECT_EQ(f.player.state(), mp::PlayerState::kBuffering);
  f.sched.run_for(rt::sec(1));
  EXPECT_EQ(f.player.state(), mp::PlayerState::kPlaying);
  EXPECT_NEAR(f.player.position_seconds(), 120.5, 1.0);
}

TEST(Player, SeekWhileStoppedIgnored) {
  PlayerFixture f;
  f.player.seek(60.0);
  EXPECT_EQ(f.player.state(), mp::PlayerState::kStopped);
  EXPECT_DOUBLE_EQ(f.player.position_seconds(), 0.0);
}

TEST(Player, DemuxerStallCausesBuffering) {
  PlayerFixture f;
  f.player.play();
  f.sched.run_for(rt::sec(2));
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "demuxer", f.sched.now(),
                                     rt::sec(2), 1.0, {}});
  f.sched.run_for(rt::sec(1));
  EXPECT_EQ(f.player.state(), mp::PlayerState::kBuffering);
  f.sched.run_for(rt::sec(2));  // fault window over, pipeline refills
  EXPECT_EQ(f.player.state(), mp::PlayerState::kPlaying);
}

TEST(Player, SlowVideoDecoderDriftsAvSync) {
  PlayerFixture f;
  f.player.play();
  f.sched.run_for(rt::sec(2));
  EXPECT_NEAR(f.player.av_offset_ms(), 0.0, 45.0);
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kTaskOverrun, "vdec", f.sched.now(), 0,
                                     1.0, {}});
  f.sched.run_for(rt::sec(3));
  // Audio runs ahead of the starving video: positive drift beyond the
  // lip-sync tolerance.
  EXPECT_GT(f.player.av_offset_ms(), 100.0);
}

TEST(Player, CrashedAudioDecoderDriftsNegative) {
  PlayerFixture f;
  f.player.play();
  f.sched.run_for(rt::sec(2));
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "adec", f.sched.now(), 0, 1.0, {}});
  f.sched.run_for(rt::sec(3));
  EXPECT_LT(f.player.av_offset_ms(), -100.0);
}

TEST(Player, AvOffsetProbeRangeViolationsFireUnderDrift) {
  PlayerFixture f;
  f.player.play();
  f.sched.run_for(rt::sec(2));
  det::DetectionLog log;
  det::RangeChecker checker(f.player.probes());
  checker.poll(log);  // drain boot-time noise (should be none)
  const auto baseline = log.all().size();
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kTaskOverrun, "vdec", f.sched.now(), 0,
                                     1.0, {}});
  f.sched.run_for(rt::sec(3));
  checker.poll(log);
  EXPECT_GT(log.all().size(), baseline);
}

// ----------------------------------------------------------------- Spec model

TEST(PlayerSpec, PassesStaticChecks) {
  auto def = mp::build_player_spec_model();
  sm::ModelChecker checker;
  const auto report = checker.check(def);
  for (const auto& issue : report.issues) {
    ADD_FAILURE() << sm::to_string(issue.kind) << " " << issue.subject << ": " << issue.message;
  }
}

TEST(PlayerSpec, TransportScript) {
  auto def = mp::build_player_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("transport");
  script.expect_state("Stopped")
      .inject("play")
      .expect_state("Playing")
      .inject("pause")
      .expect_state("Paused")
      .inject("play")
      .expect_state("Playing")
      .inject("stop")
      .expect_state("Stopped");
  EXPECT_TRUE(script.run(m).passed());
}

TEST(PlayerSpec, SeekSuppressesComparisonThenResumes) {
  auto def = mp::build_player_spec_model();
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("play"), 0);
  EXPECT_FALSE(m.vars().get_bool("nocompare:state"));
  m.dispatch(sm::SmEvent::named("seek"), 10);
  EXPECT_TRUE(m.in("Seeking"));
  EXPECT_TRUE(m.vars().get_bool("nocompare:state"));
  m.advance_time(10 + rt::msec(500));
  EXPECT_TRUE(m.in("Playing"));
  EXPECT_FALSE(m.vars().get_bool("nocompare:state"));
}

// --------------------------------------------------------- Awareness monitor

namespace {

core::MonitorBuilder player_monitor() {
  core::MonitorBuilder builder;
  builder.model(std::make_unique<core::InterpretedModel>(mp::build_player_spec_model()))
      .input_topic("mp.input")
      .output_topic("mp.output")
      .input_mapper([](const rt::Event& ev) -> std::optional<sm::SmEvent> {
        const std::string cmd = ev.str_field("cmd");
        if (cmd.empty()) return std::nullopt;
        return sm::SmEvent::named(cmd);
      })
      .threshold("state", 0.0, /*max_consecutive=*/4)
      .comparison_period(rt::msec(25))
      .startup_grace(rt::msec(50))
      .channel_latency(rt::usec(300));
  return builder;
}

}  // namespace

TEST(PlayerMonitor, CleanSessionHasNoErrors) {
  PlayerFixture f;
  auto monitor = player_monitor().build(f.sched, f.bus);
  monitor->start();
  f.player.play();
  f.sched.run_for(rt::sec(2));
  f.player.pause();
  f.sched.run_for(rt::sec(1));
  f.player.play();
  f.sched.run_for(rt::sec(1));
  f.player.seek(100.0);
  f.sched.run_for(rt::sec(2));
  f.player.stop();
  f.sched.run_for(rt::sec(1));
  EXPECT_TRUE(monitor->errors().empty())
      << (monitor->errors().empty() ? "" : monitor->errors()[0].describe());
}

TEST(PlayerMonitor, DetectsUnexpectedBufferingAsStateError) {
  PlayerFixture f;
  auto monitor = player_monitor().build(f.sched, f.bus);
  monitor->start();
  f.player.play();
  f.sched.run_for(rt::sec(2));
  // Demuxer wedges with no user action: the spec model still expects
  // "playing" while the player reports "buffering" — a correctness error.
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "demuxer", f.sched.now(),
                                     0, 1.0, {}});
  f.sched.run_for(rt::sec(2));
  ASSERT_FALSE(monitor->errors().empty());
  EXPECT_EQ(monitor->errors()[0].observable, "state");
}

TEST(Player, StopsAtEndOfClip) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(9));
  mp::PlayerConfig cfg;
  cfg.clip_seconds = 3.0;  // short clip
  mp::MediaPlayer player(sched, bus, injector, cfg);
  player.start();
  player.play();
  sched.run_for(rt::sec(5));
  EXPECT_EQ(player.state(), mp::PlayerState::kStopped);
  EXPECT_DOUBLE_EQ(player.position_seconds(), 0.0);  // rewound
}

TEST(Player, SeekToEndStops) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(9));
  mp::PlayerConfig cfg;
  cfg.clip_seconds = 100.0;
  mp::MediaPlayer player(sched, bus, injector, cfg);
  player.start();
  player.play();
  sched.run_for(rt::sec(1));
  player.seek(100.0);
  sched.run_for(rt::sec(1));
  EXPECT_EQ(player.state(), mp::PlayerState::kStopped);
}

TEST(PlayerMonitor, EndOfClipProducesNoErrors) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(9));
  mp::PlayerConfig cfg;
  cfg.clip_seconds = 3.0;
  mp::MediaPlayer player(sched, bus, injector, cfg);
  auto monitor = player_monitor().build(sched, bus);
  player.start();
  monitor->start();
  player.play();
  sched.run_for(rt::sec(6));  // plays out and stops
  EXPECT_EQ(player.state(), mp::PlayerState::kStopped);
  EXPECT_TRUE(monitor->errors().empty())
      << (monitor->errors().empty() ? "" : monitor->errors()[0].describe());
}
