// Tests for src/ipc: wire codec properties (round-trip, truncation,
// bit-flip corruption failing closed), version negotiation, transport
// metrics, supervision state machine, the socketpair-hosted SuoServer +
// RemoteSuoClient loop, IControl idempotency across the process
// boundary, kill-and-restart of a real suo_host child process, and
// verdict-for-verdict campaign equivalence across transports.
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "gtest/gtest.h"
#include "ipc/link_gate.hpp"
#include "ipc/remote_suo.hpp"
#include "ipc/suo_server.hpp"
#include "ipc/supervisor.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "runtime/rng.hpp"
#include "testkit/campaign.hpp"
#include "testkit/scenario.hpp"
#include "tv/spec_model.hpp"

namespace rt = trader::runtime;
namespace ipc = trader::ipc;
namespace core = trader::core;
namespace tk = trader::testkit;
namespace tv = trader::tv;
namespace flt = trader::faults;

namespace {

// ------------------------------------------------------------------ helpers

std::vector<ipc::Frame> sample_frames() {
  std::vector<ipc::Frame> frames;

  ipc::Frame hello;
  hello.type = ipc::FrameType::kHello;
  hello.seq = 1;
  hello.min_version = 1;
  hello.max_version = 3;
  hello.detail = "monitor";
  frames.push_back(hello);

  ipc::Frame hello_ack;
  hello_ack.type = ipc::FrameType::kHelloAck;
  hello_ack.seq = 2;
  hello_ack.detail = "suo_host";
  frames.push_back(hello_ack);

  ipc::Frame input;
  input.type = ipc::FrameType::kInputEvent;
  input.seq = 3;
  input.time = rt::msec(40);
  input.event.topic = "tv.input";
  input.event.name = "key_press";
  input.event.fields["key"] = std::string("power");
  input.event.timestamp = rt::msec(40);
  frames.push_back(input);

  ipc::Frame output;
  output.type = ipc::FrameType::kOutputEvent;
  output.seq = 4;
  output.time = rt::msec(60);
  output.event.topic = "tv.output";
  output.event.name = "sound_level";
  output.event.fields["value"] = std::int64_t{35};
  output.event.fields["quality"] = 0.875;
  output.event.fields["muted"] = false;
  frames.push_back(output);

  ipc::Frame control;
  control.type = ipc::FrameType::kControl;
  control.seq = 5;
  control.time = rt::msec(80);
  control.command = "inject";
  control.args["kind"] = std::int64_t{2};
  control.args["target"] = std::string("audio");
  control.args["intensity"] = 0.5;
  frames.push_back(control);

  ipc::Frame control_ack;
  control_ack.type = ipc::FrameType::kControlAck;
  control_ack.seq = 6;
  control_ack.command = "inject";
  control_ack.ok = false;
  control_ack.detail = "unknown target";
  frames.push_back(control_ack);

  ipc::Frame heartbeat;
  heartbeat.type = ipc::FrameType::kHeartbeat;
  heartbeat.seq = 7;
  heartbeat.nonce = 0x0123456789abcdefULL;
  frames.push_back(heartbeat);

  ipc::Frame heartbeat_ack;
  heartbeat_ack.type = ipc::FrameType::kHeartbeatAck;
  heartbeat_ack.seq = 8;
  heartbeat_ack.nonce = 0x0123456789abcdefULL;
  frames.push_back(heartbeat_ack);

  ipc::Frame shutdown;
  shutdown.type = ipc::FrameType::kShutdown;
  shutdown.seq = 9;
  shutdown.detail = "bye";
  frames.push_back(shutdown);

  ipc::Frame spectrum;
  spectrum.type = ipc::FrameType::kSpectrum;
  spectrum.seq = 10;
  spectrum.time = rt::msec(120);
  spectrum.block_count = 64;
  spectrum.spectra.push_back({false, {0, 3, 17}});
  spectrum.spectra.push_back({true, {0, 5, 17, 63}});
  spectrum.spectra.push_back({false, {}});  // a step may touch nothing
  frames.push_back(spectrum);

  ipc::Frame recover;
  recover.type = ipc::FrameType::kRecover;
  recover.seq = 11;
  recover.time = rt::msec(130);
  recover.action = 1;  // restart-unit
  recover.token = 0xfeedfacecafeULL;
  recover.block = 4711;
  recover.unit = "aspect2";
  frames.push_back(recover);

  ipc::Frame recover_ack;
  recover_ack.type = ipc::FrameType::kRecoverAck;
  recover_ack.seq = 12;
  recover_ack.time = rt::msec(131);
  recover_ack.action = 1;
  recover_ack.token = 0xfeedfacecafeULL;
  recover_ack.ok = true;
  recover_ack.unit = "aspect2";
  recover_ack.detail = "repaired aspect2";
  frames.push_back(recover_ack);

  return frames;
}

void expect_frames_equal(const ipc::Frame& a, const ipc::Frame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.event.topic, b.event.topic);
  EXPECT_EQ(a.event.name, b.event.name);
  EXPECT_EQ(a.event.fields, b.event.fields);
  EXPECT_EQ(a.command, b.command);
  EXPECT_EQ(a.args, b.args);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.min_version, b.min_version);
  EXPECT_EQ(a.max_version, b.max_version);
  EXPECT_EQ(a.nonce, b.nonce);
  EXPECT_EQ(a.block_count, b.block_count);
  EXPECT_EQ(a.spectra, b.spectra);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.token, b.token);
  EXPECT_EQ(a.block, b.block);
  EXPECT_EQ(a.unit, b.unit);
}

// Run a SuoServer over one end of a socketpair on a background thread,
// hand the other end's fd to a RemoteSuoClient connector.
struct ServerThread {
  ipc::SuoServer server;
  std::thread thread;
  ipc::SuoServer::ServeResult result = ipc::SuoServer::ServeResult::kDisconnect;

  explicit ServerThread(ipc::FramedSocket sock, ipc::SuoServerConfig config = {})
      : server(std::move(config)) {
    thread = std::thread([this, s = std::move(sock)]() mutable { result = server.serve(s); });
  }
  ~ServerThread() {
    if (thread.joinable()) thread.join();
  }
};

}  // namespace

// =================================================================== codec

TEST(IpcWire, RoundTripsEveryFrameType) {
  for (const auto& original : sample_frames()) {
    const auto bytes = ipc::encode_frame(original);
    ASSERT_FALSE(bytes.empty()) << ipc::to_string(original.type);

    ipc::FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    ipc::Frame decoded;
    ASSERT_EQ(decoder.next(decoded), ipc::DecodeStatus::kOk) << ipc::to_string(original.type);
    expect_frames_equal(original, decoded);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(IpcWire, PropertyRandomFramesSurviveChunkedFeeding) {
  // Seeded property test: a stream of random frames fed in random chunk
  // sizes decodes to exactly the input sequence, regardless of how the
  // kernel would fragment it.
  rt::Rng rng(0xc0dec);
  const auto samples = sample_frames();

  for (int round = 0; round < 50; ++round) {
    std::vector<ipc::Frame> sent;
    std::vector<std::uint8_t> stream;
    const int count = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < count; ++i) {
      ipc::Frame f = samples[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(samples.size()) - 1))];
      f.seq = static_cast<std::uint32_t>(rng.next_u64());
      f.time = rng.uniform_int(0, rt::sec(100));
      if (f.type == ipc::FrameType::kControl) {
        f.args["extra"] = rng.uniform_int(-1000, 1000);
      }
      if (f.type == ipc::FrameType::kOutputEvent) {
        f.event.fields["n"] = rng.uniform(0.0, 1.0);
      }
      const auto bytes = ipc::encode_frame(f);
      ASSERT_FALSE(bytes.empty());
      stream.insert(stream.end(), bytes.begin(), bytes.end());
      sent.push_back(std::move(f));
    }

    ipc::FrameDecoder decoder;
    std::vector<ipc::Frame> received;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk = static_cast<std::size_t>(
          rng.uniform_int(1, std::min<std::int64_t>(97, static_cast<std::int64_t>(stream.size() - pos))));
      decoder.feed(stream.data() + pos, chunk);
      pos += chunk;
      ipc::Frame f;
      while (decoder.next(f) == ipc::DecodeStatus::kOk) received.push_back(f);
      ASSERT_FALSE(decoder.poisoned());
    }

    ASSERT_EQ(received.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) expect_frames_equal(sent[i], received[i]);
  }
}

TEST(IpcWire, TruncationNeverYieldsAFrame) {
  for (const auto& original : sample_frames()) {
    const auto bytes = ipc::encode_frame(original);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      ipc::FrameDecoder decoder;
      decoder.feed(bytes.data(), cut);
      ipc::Frame out;
      EXPECT_EQ(decoder.next(out), ipc::DecodeStatus::kNeedMore)
          << ipc::to_string(original.type) << " truncated at " << cut;
    }
  }
}

TEST(IpcWire, BitFlipCorruptionFailsClosed) {
  // Flip every bit of every byte of every sample frame. The decode must
  // never deliver a frame that silently pretends to be the original:
  //   * payload flips (offset >= 28) are always caught by the checksum;
  //   * header flips are caught field-by-field, except the documented
  //     unprotected window — seq/time at offsets [8, 20) decode to a
  //     different-but-valid frame, a type-byte flip (offset 5) may
  //     land on another known type whose payload grammar coincidentally
  //     accepts the bytes, and a version-byte flip (offset 4) may land
  //     on another version inside the accepted [min, max] range (three
  //     live versions since kRecover arrived, so low-bit flips of 3
  //     stay in-range); in every case the frame visibly differs.
  for (const auto& original : sample_frames()) {
    const auto clean = ipc::encode_frame(original);
    for (std::size_t i = 0; i < clean.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        auto corrupt = clean;
        corrupt[i] = static_cast<std::uint8_t>(corrupt[i] ^ (1u << bit));

        ipc::FrameDecoder decoder;
        decoder.feed(corrupt.data(), corrupt.size());
        ipc::Frame out;
        const auto status = decoder.next(out);

        if (i >= ipc::kHeaderSize) {
          EXPECT_EQ(status, ipc::DecodeStatus::kBadChecksum)
              << ipc::to_string(original.type) << " payload byte " << i << " bit " << bit;
          EXPECT_TRUE(decoder.poisoned());
        } else if (status == ipc::DecodeStatus::kOk) {
          const bool unprotected_header = (i >= 8 && i < 20) || i == 5 || i == 4;
          EXPECT_TRUE(unprotected_header)
              << ipc::to_string(original.type) << " header byte " << i << " bit " << bit
              << " decoded despite corruption";
          if (i == 4) {
            EXPECT_NE(out.version, original.version);
          } else if (i == 5) {
            EXPECT_NE(out.type, original.type);
          } else {
            EXPECT_TRUE(out.seq != original.seq || out.time != original.time);
          }
        } else {
          EXPECT_TRUE(ipc::is_decode_error(status) || status == ipc::DecodeStatus::kNeedMore);
          if (ipc::is_decode_error(status)) {
            EXPECT_TRUE(decoder.poisoned());
            // Fail closed: a poisoned decoder refuses everything after.
            decoder.feed(clean.data(), clean.size());
            EXPECT_NE(decoder.next(out), ipc::DecodeStatus::kOk);
          }
        }
      }
    }
  }
}

TEST(IpcWire, OversizedPayloadRejectedOnBothSides) {
  ipc::Frame big;
  big.type = ipc::FrameType::kShutdown;
  big.detail.assign(ipc::kMaxFramePayload + 1, 'x');
  EXPECT_TRUE(ipc::encode_frame(big).empty());

  // A forged header announcing an oversized payload is rejected before
  // any payload bytes arrive (no allocation, no waiting).
  ipc::Frame small;
  small.type = ipc::FrameType::kShutdown;
  small.detail = "ok";
  auto bytes = ipc::encode_frame(small);
  const std::uint32_t huge = ipc::kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) bytes[20 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
  ipc::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  ipc::Frame out;
  EXPECT_EQ(decoder.next(out), ipc::DecodeStatus::kFrameTooLarge);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(IpcWire, MalformedSpectrumPayloadFailsClosed) {
  // The kSpectrum grammar is strict: error bytes are 0/1, ids strictly
  // ascend, ids stay below block_count, step counts match the payload.
  // Each violation must poison the decoder (checksum re-sealed so the
  // *structural* validation is what trips, not the integrity check).
  ipc::Frame f;
  f.type = ipc::FrameType::kSpectrum;
  f.block_count = 10;
  f.spectra.push_back({true, {2, 5}});
  const auto clean = ipc::encode_frame(f);
  ASSERT_FALSE(clean.empty());
  // Payload offsets: 0..3 block_count, 4..7 step_count, 8 error byte,
  // 9..12 executed count, 13..16 id[0], 17..20 id[1].
  const auto corrupt_at = [&](std::size_t payload_off, std::uint32_t value) {
    auto bytes = clean;
    for (int i = 0; i < 4 && ipc::kHeaderSize + payload_off + i < bytes.size(); ++i) {
      bytes[ipc::kHeaderSize + payload_off + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(value >> (8 * i));
    }
    // Re-seal the payload checksum (FNV-1a 32) at header offset 24.
    std::uint32_t h = 0x811c9dc5u;
    for (std::size_t i = ipc::kHeaderSize; i < bytes.size(); ++i) {
      h ^= bytes[i];
      h *= 0x01000193u;
    }
    for (int i = 0; i < 4; ++i) bytes[24 + i] = static_cast<std::uint8_t>(h >> (8 * i));
    return bytes;
  };
  const auto expect_malformed = [](const std::vector<std::uint8_t>& bytes, const char* what) {
    ipc::FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    ipc::Frame out;
    EXPECT_EQ(decoder.next(out), ipc::DecodeStatus::kMalformed) << what;
    EXPECT_TRUE(decoder.poisoned()) << what;
  };

  {
    auto bytes = clean;  // error byte 2 (single byte, not a u32 write)
    bytes[ipc::kHeaderSize + 8] = 2;
    std::uint32_t h = 0x811c9dc5u;
    for (std::size_t i = ipc::kHeaderSize; i < bytes.size(); ++i) {
      h ^= bytes[i];
      h *= 0x01000193u;
    }
    for (int i = 0; i < 4; ++i) bytes[24 + i] = static_cast<std::uint8_t>(h >> (8 * i));
    expect_malformed(bytes, "error byte > 1");
  }
  expect_malformed(corrupt_at(17, 2), "non-ascending block ids");
  expect_malformed(corrupt_at(17, 10), "block id >= block_count");
  expect_malformed(corrupt_at(4, 7), "step count beyond the payload");

  // The untouched encoding still decodes (the corruptions above were
  // the only problem, not the harness).
  ipc::FrameDecoder decoder;
  decoder.feed(clean.data(), clean.size());
  ipc::Frame out;
  ASSERT_EQ(decoder.next(out), ipc::DecodeStatus::kOk);
  EXPECT_EQ(out.block_count, 10u);
  ASSERT_EQ(out.spectra.size(), 1u);
  EXPECT_TRUE(out.spectra[0].error);
}

TEST(IpcWire, MalformedRecoverPayloadFailsClosed) {
  // The v3 recovery grammar is strict: wire actions are the four
  // actuatable ladder rungs (give-up is hub-local, never on wire), ack
  // ok bytes are 0/1, and both frames must consume the payload exactly.
  // A hostile or corrupted peer poisons its decoder, never actuates.
  const auto reseal = [](std::vector<std::uint8_t> bytes) {
    std::uint32_t h = 0x811c9dc5u;  // FNV-1a 32 over the payload
    for (std::size_t i = ipc::kHeaderSize; i < bytes.size(); ++i) {
      h ^= bytes[i];
      h *= 0x01000193u;
    }
    for (int i = 0; i < 4; ++i) bytes[24 + i] = static_cast<std::uint8_t>(h >> (8 * i));
    // Fix the payload length the header announces (trailing-byte cases).
    const auto len = static_cast<std::uint32_t>(bytes.size() - ipc::kHeaderSize);
    for (int i = 0; i < 4; ++i) bytes[20 + i] = static_cast<std::uint8_t>(len >> (8 * i));
    return bytes;
  };
  const auto expect_malformed = [](const std::vector<std::uint8_t>& bytes, const char* what) {
    ipc::FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    ipc::Frame out;
    EXPECT_EQ(decoder.next(out), ipc::DecodeStatus::kMalformed) << what;
    EXPECT_TRUE(decoder.poisoned()) << what;
  };

  ipc::Frame cmd;
  cmd.type = ipc::FrameType::kRecover;
  cmd.action = 3;
  cmd.token = 42;
  cmd.block = 7;
  cmd.unit = "u";
  const auto cmd_clean = ipc::encode_frame(cmd);
  ASSERT_FALSE(cmd_clean.empty());
  for (std::uint8_t action : {std::uint8_t{4}, std::uint8_t{0xff}}) {
    auto bytes = cmd_clean;  // payload offset 0 = action byte
    bytes[ipc::kHeaderSize] = action;
    expect_malformed(reseal(std::move(bytes)),
                     "kRecover action beyond the wire ladder");
  }
  {
    auto bytes = cmd_clean;  // exact-consumption check (r.done())
    bytes.push_back(0);
    expect_malformed(reseal(std::move(bytes)), "kRecover trailing byte");
  }

  ipc::Frame ack;
  ack.type = ipc::FrameType::kRecoverAck;
  ack.action = 1;
  ack.token = 42;
  ack.ok = true;
  ack.unit = "u";
  ack.detail = "d";
  const auto ack_clean = ipc::encode_frame(ack);
  ASSERT_FALSE(ack_clean.empty());
  {
    auto bytes = ack_clean;
    bytes[ipc::kHeaderSize] = 4;  // action byte
    expect_malformed(reseal(std::move(bytes)), "kRecoverAck action beyond the ladder");
  }
  {
    auto bytes = ack_clean;  // ok byte sits after action(1) + token(8)
    bytes[ipc::kHeaderSize + 9] = 2;
    expect_malformed(reseal(std::move(bytes)), "kRecoverAck ok byte not 0/1");
  }
  {
    auto bytes = ack_clean;
    bytes.push_back(7);
    expect_malformed(reseal(std::move(bytes)), "kRecoverAck trailing byte");
  }

  // The untouched encodings still decode — the corruptions were the
  // only problem, not the harness.
  for (const auto* clean : {&cmd_clean, &ack_clean}) {
    ipc::FrameDecoder decoder;
    decoder.feed(clean->data(), clean->size());
    ipc::Frame out;
    ASSERT_EQ(decoder.next(out), ipc::DecodeStatus::kOk);
    EXPECT_EQ(out.token, 42u);
  }
}

TEST(IpcWire, VersionNegotiation) {
  EXPECT_EQ(ipc::negotiate_version(1, 1, 1, 1), 1);
  EXPECT_EQ(ipc::negotiate_version(1, 3, 2, 5), 3);  // highest common
  EXPECT_EQ(ipc::negotiate_version(2, 4, 1, 2), 2);
  EXPECT_EQ(ipc::negotiate_version(1, 1, 2, 3), 0);  // disjoint -> reject
  EXPECT_EQ(ipc::negotiate_version(4, 6, 1, 3), 0);
}

// =============================================================== transport

TEST(IpcTransport, SocketpairCarriesFramesAndCountsMetrics) {
  auto [a, b] = ipc::socketpair_transport();
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());

  rt::MetricsRegistry metrics;
  a.set_metrics(&metrics);
  b.set_metrics(&metrics);

  for (const auto& f : sample_frames()) ASSERT_TRUE(a.send(f));
  for (const auto& f : sample_frames()) {
    ipc::Frame got;
    ASSERT_EQ(b.recv(got, 1000), ipc::FramedSocket::RecvStatus::kFrame);
    expect_frames_equal(f, got);
  }

  const auto snap = metrics.snapshot();
  const auto n = sample_frames().size();
  EXPECT_EQ(snap.counter("ipc.frames_sent"), n);
  EXPECT_EQ(snap.counter("ipc.frames_received"), n);
  EXPECT_GT(snap.counter("ipc.bytes_sent"), 0u);
  EXPECT_EQ(snap.counter("ipc.bytes_sent"), snap.counter("ipc.bytes_received"));

  // Satellite: the ipc.* family is addressable through the snapshot's
  // prefix filter (and thereby excludable from golden fingerprints).
  const auto lines = snap.counter_lines({"ipc."});
  ASSERT_FALSE(lines.empty());
  for (const auto& line : lines) EXPECT_EQ(line.rfind("ipc.", 0), 0u) << line;
  EXPECT_EQ(lines.size(), 6u);  // frames/bytes x2 + encode/decode errors
}

TEST(IpcTransport, GarbageBytesCloseTheLinkAndCountDecodeErrors) {
  auto [a, b] = ipc::socketpair_transport();
  rt::MetricsRegistry metrics;
  b.set_metrics(&metrics);

  const std::uint8_t junk[] = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02, 0x03,
                               0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                               0x0c, 0x0d, 0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13,
                               0x14, 0x15, 0x16, 0x17};
  ASSERT_EQ(::write(a.fd(), junk, sizeof(junk)), static_cast<ssize_t>(sizeof(junk)));

  ipc::Frame out;
  EXPECT_EQ(b.recv(out, 1000), ipc::FramedSocket::RecvStatus::kProtocolError);
  EXPECT_FALSE(b.valid());  // fail closed: socket dropped
  EXPECT_EQ(metrics.snapshot().counter("ipc.decode_errors"), 1u);
}

TEST(IpcTransport, UnixListenerAcceptsAndCarriesFrames) {
  const std::string path = "@trader-ipc-test-" + std::to_string(::getpid());
  const int listener = ipc::listen_unix(path);
  ASSERT_GE(listener, 0);

  const int client_fd = ipc::connect_unix_retry(path, 2000);
  ASSERT_GE(client_fd, 0);
  const int server_fd = ipc::accept_unix(listener, 2000);
  ASSERT_GE(server_fd, 0);

  ipc::FramedSocket client(client_fd);
  ipc::FramedSocket server(server_fd);
  ipc::Frame f;
  f.type = ipc::FrameType::kHeartbeat;
  f.nonce = 42;
  ASSERT_TRUE(client.send(f));
  ipc::Frame got;
  ASSERT_EQ(server.recv(got, 1000), ipc::FramedSocket::RecvStatus::kFrame);
  EXPECT_EQ(got.nonce, 42u);

  ::close(listener);
  ipc::unlink_unix(path);
}

// A nonblocking writer hitting a full kernel buffer mid-frame must get
// partial-write/kWouldBlock from write_some — never a short silent
// success — and the frame must still arrive whole once the reader
// drains. This is the exact contract the hub's coalesced flush relies
// on to resume from an offset.
TEST(IpcTransport, PartialWriteNonblockingResumesMidFrame) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const int tiny = 1;  // kernel clamps to its minimum, still < our frame
  ASSERT_EQ(::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny)), 0);
  ASSERT_TRUE(ipc::set_nonblocking(sv[0], true));

  ipc::Frame f;
  f.type = ipc::FrameType::kOutputEvent;
  f.event.topic = "tv.output";
  f.event.name = "sound_level";
  f.event.fields["pad"] = std::string(32 * 1024, 'q');  // dwarfs SO_SNDBUF
  const auto wire = ipc::encode_frame(f);
  ASSERT_FALSE(wire.empty());

  // Phase 1: write until the buffer is full. We must observe a partial
  // frame on the wire (some bytes in, kWouldBlock before the end).
  std::size_t off = 0;
  bool would_block = false;
  while (off < wire.size()) {
    std::size_t n = 0;
    const auto st = ipc::write_some(sv[0], wire.data() + off, wire.size() - off, n);
    if (st == ipc::IoStatus::kWouldBlock) {
      would_block = true;
      break;
    }
    ASSERT_EQ(st, ipc::IoStatus::kOk);
    off += n;
  }
  ASSERT_TRUE(would_block) << "frame fit the buffer; shrink SO_SNDBUF";
  ASSERT_GT(off, 0u);
  ASSERT_LT(off, wire.size());

  // Phase 2: drain the reader concurrently while the writer resumes
  // from its offset; the decoder must reassemble exactly one frame.
  ipc::FrameDecoder decoder;
  ipc::Frame got;
  bool complete = false;
  std::uint8_t buf[4096];
  while (!complete) {
    if (off < wire.size()) {
      std::size_t n = 0;
      const auto st = ipc::write_some(sv[0], wire.data() + off, wire.size() - off, n);
      ASSERT_NE(st, ipc::IoStatus::kError);
      ASSERT_NE(st, ipc::IoStatus::kClosed);
      off += n;
    }
    std::size_t n = 0;
    const auto st = ipc::read_some(sv[1], buf, sizeof(buf), n);
    if (st == ipc::IoStatus::kOk) decoder.feed(buf, n);
    complete = decoder.next(got) == ipc::DecodeStatus::kOk;
    ASSERT_FALSE(decoder.poisoned());
  }
  EXPECT_EQ(off, wire.size());
  EXPECT_EQ(got.event.name, "sound_level");
  EXPECT_EQ(got.event.str_field("pad").size(), 32u * 1024u);
  ::close(sv[0]);
  ::close(sv[1]);
}

// Two listeners on one abstract-namespace name: the kernel owns the
// name, so the second bind must fail cleanly (-1) instead of stealing
// or shadowing the first — that is what makes hub listener paths safe
// to derive from the pid without filesystem cleanup.
TEST(IpcTransport, AbstractNamespaceBindCollisionFails) {
  const std::string path = "@trader-bind-collision-" + std::to_string(::getpid());
  const int first = ipc::listen_unix(path);
  ASSERT_GE(first, 0);
  const int second = ipc::listen_unix(path);
  EXPECT_EQ(second, -1) << "duplicate abstract bind must fail closed";

  // The original listener still works after the failed collision.
  const int client_fd = ipc::connect_unix_retry(path, 2000);
  ASSERT_GE(client_fd, 0);
  ::close(client_fd);
  ::close(first);
  ipc::unlink_unix(path);
}

// ============================================================== supervisor

TEST(IpcSupervisor, BackoffIsImmediateThenExponentialAndCapped) {
  ipc::SupervisorConfig config;
  config.backoff_initial_ms = 20;
  config.backoff_max_ms = 160;
  config.backoff_jitter = 0.2;
  ipc::ProcessSupervisor sup(config);

  EXPECT_EQ(sup.next_backoff_ms(), 0);  // freshly dead SUO: probe now
  std::int64_t prev = 0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const std::int64_t d = sup.next_backoff_ms();
    const double nominal = std::min<double>(20.0 * (1 << (attempt - 1)), 160.0);
    EXPECT_GE(d, static_cast<std::int64_t>(nominal * 0.8) - 1) << attempt;
    EXPECT_LE(d, static_cast<std::int64_t>(nominal * 1.2) + 1) << attempt;
    EXPECT_GE(d, prev / 4);  // monotone-ish despite jitter
    prev = d;
  }
  EXPECT_EQ(sup.state(), ipc::LinkState::kConnecting);

  // Determinism: a second supervisor with the same seed walks the same
  // jittered sequence.
  ipc::ProcessSupervisor twin(config);
  ipc::ProcessSupervisor sup2(config);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(twin.next_backoff_ms(), sup2.next_backoff_ms());
}

TEST(IpcSupervisor, AttemptBudgetExhaustsToFailed) {
  ipc::SupervisorConfig config;
  config.max_attempts = 3;
  ipc::ProcessSupervisor sup(config);
  EXPECT_GE(sup.next_backoff_ms(), 0);
  EXPECT_GE(sup.next_backoff_ms(), 0);
  EXPECT_GE(sup.next_backoff_ms(), 0);
  EXPECT_EQ(sup.next_backoff_ms(), -1);
  EXPECT_TRUE(sup.exhausted());
  EXPECT_EQ(sup.state(), ipc::LinkState::kFailed);
}

TEST(IpcSupervisor, HeartbeatMissesDegradeThenDeclareDeadOnce) {
  rt::MetricsRegistry metrics;
  ipc::SupervisorConfig config;
  config.heartbeat_miss_threshold = 3;
  ipc::ProcessSupervisor sup(config);
  sup.set_metrics(&metrics);

  sup.on_connected();
  EXPECT_EQ(sup.state(), ipc::LinkState::kUp);
  EXPECT_FALSE(sup.on_heartbeat_miss());
  EXPECT_EQ(sup.state(), ipc::LinkState::kDegraded);
  EXPECT_FALSE(sup.on_heartbeat_miss());
  sup.on_heartbeat_ack();  // recovery clears the streak
  EXPECT_EQ(sup.state(), ipc::LinkState::kUp);
  EXPECT_FALSE(sup.on_heartbeat_miss());
  EXPECT_FALSE(sup.on_heartbeat_miss());
  EXPECT_TRUE(sup.on_heartbeat_miss());  // third consecutive miss
  EXPECT_EQ(sup.state(), ipc::LinkState::kDown);
  EXPECT_EQ(sup.outages(), 1u);

  // Reconnect counts once; a second connect while up is a no-op.
  sup.next_backoff_ms();
  sup.on_connected();
  sup.on_connected();
  EXPECT_EQ(sup.reconnects(), 1u);
  EXPECT_EQ(metrics.snapshot().counter("ipc.outages"), 1u);
  EXPECT_EQ(metrics.snapshot().counter("ipc.reconnects"), 1u);
  EXPECT_EQ(metrics.snapshot().counter("ipc.heartbeat_misses"), 5u);
}

// ==================================================== client/server loop

TEST(IpcLoop, SocketpairEndToEndDrivesRemoteTv) {
  auto [server_sock, client_sock] = ipc::socketpair_transport();
  ServerThread host(std::move(server_sock));

  rt::Scheduler sched;
  rt::EventBus bus;
  rt::MetricsRegistry metrics;
  // Hand the pre-connected fd over exactly once; reconnects get -1.
  ipc::RemoteSuoClient client(sched, bus,
                              [fd = client_sock.release(), used = std::make_shared<bool>(false)]() {
                                if (*used) return -1;
                                *used = true;
                                return fd;
                              });
  client.set_metrics(&metrics);

  // Observer side: count tv.output events arriving over the wire and
  // run a MonitorBuilder-built awareness monitor against the remote SUO
  // with zero core changes.
  int outputs_seen = 0;
  bool powered_seen = false;
  bus.subscribe("tv.output", [&](const rt::Event& ev) {
    ++outputs_seen;
    if (ev.name == "powered" && ev.fields.count("value") &&
        std::get<bool>(ev.fields.at("value"))) {
      powered_seen = true;
    }
  });

  std::vector<core::ErrorReport> monitor_errors;
  core::MonitorBuilder builder(sched, bus);
  builder
      .model(std::make_unique<ipc::LinkGatedModel>(
          std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()), client.gate()))
      .comparison_period(rt::msec(20))
      .startup_grace(rt::msec(100))
      .on_error([&](const core::ErrorReport& e) { monitor_errors.push_back(e); });
  for (const char* name : {"sound_level", "screen_state", "channel", "powered"}) {
    builder.threshold(name, 0.0, 3);
  }
  auto monitor = builder.build();

  client.initialize();
  ASSERT_TRUE(client.link_up());
  EXPECT_EQ(client.negotiated_version(), ipc::kProtocolVersion);
  client.start(sched.now());
  monitor->start();

  EXPECT_TRUE(client.press(tv::Key::kPower));
  EXPECT_TRUE(client.advance_to(rt::msec(400)));
  EXPECT_TRUE(client.press(tv::Key::kVolumeUp));
  EXPECT_TRUE(client.advance_to(rt::msec(800)));
  EXPECT_TRUE(client.heartbeat());

  EXPECT_GT(outputs_seen, 0);
  EXPECT_TRUE(powered_seen);
  EXPECT_EQ(sched.now(), rt::msec(800));  // lockstep reached on both sides
  EXPECT_TRUE(monitor_errors.empty()) << "clean run must not raise comparator errors";

  // Fault path over the wire: drop the next volume command inside the
  // remote SUO, watch the remote comparator view diverge.
  flt::FaultSpec loss;
  loss.kind = flt::FaultKind::kMessageLoss;
  loss.target = "cmd.audio";
  loss.activate_at = rt::msec(800);
  loss.duration = rt::msec(100);
  EXPECT_TRUE(client.inject(loss));
  EXPECT_TRUE(client.press(tv::Key::kVolumeUp));
  EXPECT_TRUE(client.advance_to(rt::msec(1600)));
  EXPECT_FALSE(monitor_errors.empty()) << "lost volume command must be detected remotely";

  // RTT histogram observed every lockstep exchange.
  const auto snap = metrics.snapshot();
  ASSERT_TRUE(snap.histograms.count("ipc.rtt_ns"));
  EXPECT_GT(snap.histograms.at("ipc.rtt_ns").count, 0u);
  EXPECT_GT(snap.counter("ipc.frames_sent"), 0u);

  EXPECT_TRUE(client.shutdown_remote());
  host.thread.join();
  EXPECT_EQ(host.result, ipc::SuoServer::ServeResult::kShutdown);
}

TEST(IpcLoop, HandshakeRejectsDisjointVersionRanges) {
  auto [server_sock, client_sock] = ipc::socketpair_transport();
  ServerThread host(std::move(server_sock));

  rt::Scheduler sched;
  rt::EventBus bus;
  ipc::RemoteSuoConfig config;
  config.min_version = 200;  // the server only speaks [1, 2]
  config.max_version = 210;
  ipc::RemoteSuoClient client(sched, bus,
                              [fd = client_sock.release(), used = std::make_shared<bool>(false)]() {
                                if (*used) return -1;
                                *used = true;
                                return fd;
                              },
                              config);
  client.initialize();
  EXPECT_FALSE(client.link_up());
  EXPECT_EQ(client.negotiated_version(), 0);
  host.thread.join();
  EXPECT_EQ(host.result, ipc::SuoServer::ServeResult::kHandshakeFailed);
}

TEST(IpcLoop, ControlLifecycleIsIdempotentAcrossTheWire) {
  auto [server_sock, client_sock] = ipc::socketpair_transport();
  ServerThread host(std::move(server_sock));

  rt::Scheduler sched;
  rt::EventBus bus;
  ipc::RemoteSuoClient client(sched, bus,
                              [fd = client_sock.release(), used = std::make_shared<bool>(false)]() {
                                if (*used) return -1;
                                *used = true;
                                return fd;
                              });

  // Repeated initialize/start are single remote transitions.
  client.initialize();
  client.initialize();
  client.start(sched.now());
  client.start(sched.now());
  ASSERT_TRUE(client.link_up());

  EXPECT_TRUE(client.advance_to(rt::msec(200)));
  const std::uint64_t ticks_running = host.server.tv()->ticks();
  EXPECT_GT(ticks_running, 0u);

  // stop() pauses remote frame processing; advance acks still flow but
  // virtual time on the SUO side freezes.
  client.stop();
  client.stop();
  EXPECT_TRUE(client.advance_to(rt::msec(400)));
  EXPECT_EQ(host.server.tv()->ticks(), ticks_running);

  // Restart resumes without double-scheduling the frame tick: after
  // advancing another 200 ms the tick count grows by exactly the ticks
  // of one 20 ms-period clock, not two.
  client.start(sched.now());
  EXPECT_TRUE(client.advance_to(rt::msec(600)));
  const std::uint64_t ticks_after = host.server.tv()->ticks();
  EXPECT_GT(ticks_after, ticks_running);
  EXPECT_LE(ticks_after - ticks_running, 21u);  // ~200ms / 20ms + boundary

  EXPECT_EQ(host.server.stats().advances, 3u);
  EXPECT_TRUE(client.shutdown_remote());
  host.thread.join();

  // Server-side lifecycle stays idempotent when driven directly too.
  ipc::SuoServer local;
  local.initialize();
  local.initialize();
  local.start(0);
  local.start(0);
  EXPECT_TRUE(local.running());
  local.stop();
  local.stop();
  EXPECT_FALSE(local.running());
  local.start(0);
  EXPECT_TRUE(local.running());
}

// ======================================================== kill & restart

namespace {

pid_t spawn_suo_host(const std::string& path) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ipc::SuoServerConfig config;
    config.read_timeout_ms = 50;
    ::_exit(ipc::run_suo_host(path, config));
  }
  return pid;
}

}  // namespace

TEST(IpcSupervision, SigkilledHostIsDetectedReportedOnceAndReconnected) {
  const std::string path = "/tmp/trader-suo-" + std::to_string(::getpid()) + ".sock";
  pid_t host_pid = spawn_suo_host(path);
  ASSERT_GT(host_pid, 0);

  rt::Scheduler sched;
  rt::EventBus bus;
  rt::MetricsRegistry metrics;

  struct Tap : core::IErrorNotify {
    std::vector<core::ErrorReport> reports;
    void on_error(const core::ErrorReport& r) override { reports.push_back(r); }
  } tap;

  ipc::RemoteSuoConfig config;
  config.supervisor.backoff_initial_ms = 5;
  config.supervisor.backoff_max_ms = 50;
  ipc::RemoteSuoClient client(
      sched, bus, [&]() { return ipc::connect_unix_retry(path, 2000); }, config);
  client.set_metrics(&metrics);
  client.set_error_notify(&tap);

  int outputs_seen = 0;
  bus.subscribe("tv.output", [&](const rt::Event&) { ++outputs_seen; });

  client.initialize();
  ASSERT_TRUE(client.link_up());
  client.start(sched.now());
  ASSERT_TRUE(client.press(tv::Key::kPower));
  ASSERT_TRUE(client.advance_to(rt::msec(400)));
  ASSERT_GT(outputs_seen, 0);
  EXPECT_TRUE(client.gate()->load());

  // SIGKILL the host: the hard crash case — no goodbye frame.
  ASSERT_EQ(::kill(host_pid, SIGKILL), 0);
  ASSERT_EQ(::waitpid(host_pid, nullptr, 0), host_pid);

  // The next exchange trips crash detection. Exactly one outage report
  // surfaces through the error tap; further commands fail silently
  // (degraded, comparator gated) instead of flooding.
  EXPECT_FALSE(client.advance_to(rt::msec(800)));
  EXPECT_EQ(sched.now(), rt::msec(800));  // local time flows regardless
  EXPECT_FALSE(client.link_up());
  EXPECT_FALSE(client.gate()->load());
  ASSERT_EQ(tap.reports.size(), 1u);
  EXPECT_EQ(tap.reports[0].observable, "ipc.link");
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(client.press(tv::Key::kVolumeUp));
  EXPECT_FALSE(client.heartbeat());
  EXPECT_EQ(tap.reports.size(), 1u) << "outage must be reported exactly once";
  EXPECT_EQ(client.outage_reports(), 1u);

  // Restart the host; the supervisor reconnects with backoff, replays
  // the lifecycle, resyncs, and the run completes.
  host_pid = spawn_suo_host(path);
  ASSERT_GT(host_pid, 0);
  bool reconnected = false;
  for (int attempt = 0; attempt < 50 && !reconnected; ++attempt) {
    reconnected = client.try_reconnect();
  }
  ASSERT_TRUE(reconnected);
  EXPECT_TRUE(client.link_up());
  EXPECT_TRUE(client.gate()->load());
  EXPECT_EQ(client.supervisor().reconnects(), 1u);
  EXPECT_EQ(metrics.snapshot().counter("ipc.outages"), 1u);

  const int outputs_before = outputs_seen;
  EXPECT_TRUE(client.press(tv::Key::kPower));
  EXPECT_TRUE(client.advance_to(rt::msec(1200)));
  EXPECT_GT(outputs_seen, outputs_before) << "fresh host must feed the observer again";
  EXPECT_TRUE(client.heartbeat());
  EXPECT_EQ(tap.reports.size(), 1u);

  EXPECT_TRUE(client.shutdown_remote());
  ASSERT_EQ(::waitpid(host_pid, nullptr, 0), host_pid);
  ipc::unlink_unix(path);
}

// ================================================================ campaign

TEST(IpcCampaign, TransportsMatchInProcessVerdictForVerdict) {
  tk::CampaignConfig base;
  base.seed = 77;
  base.scenarios = 20;
  base.draw.aspects = 3;
  base.draw.horizon = rt::msec(400);

  tk::CampaignConfig sp = base;
  sp.executor.ipc = tk::IpcMode::kSocketpair;
  tk::CampaignConfig un = base;
  un.executor.ipc = tk::IpcMode::kUnix;

  const auto in_process = tk::CampaignRunner(base).run();
  const auto socketpair = tk::CampaignRunner(sp).run();
  const auto unix_socket = tk::CampaignRunner(un).run();

  ASSERT_EQ(in_process.results.size(), 20u);
  ASSERT_EQ(socketpair.results.size(), 20u);
  ASSERT_EQ(unix_socket.results.size(), 20u);
  for (std::size_t i = 0; i < in_process.results.size(); ++i) {
    const auto& ref = in_process.results[i];
    for (const auto* other : {&socketpair.results[i], &unix_socket.results[i]}) {
      EXPECT_EQ(ref.verdict, other->verdict) << ref.name;
      EXPECT_EQ(ref.detection_latency, other->detection_latency) << ref.name;
      EXPECT_EQ(ref.recovered, other->recovered) << ref.name;
      const auto diff = tk::GoldenTrace::diff(ref.trace, other->trace);
      EXPECT_TRUE(diff.identical) << ref.name << ": " << diff.describe();
    }
  }
  EXPECT_EQ(in_process.golden_trace().fingerprint(), socketpair.golden_trace().fingerprint());
  EXPECT_EQ(in_process.golden_trace().fingerprint(), unix_socket.golden_trace().fingerprint());
}

TEST(IpcCampaign, KillAndRestartScenarioQuiescesAndCompletes) {
  tk::ScenarioScript script;
  script.name("kill-restart").aspects(2).horizon(rt::msec(500));
  script.every(rt::msec(20), rt::msec(20), rt::msec(480));

  tk::ExecutorConfig config;
  config.ipc = tk::IpcMode::kSocketpair;
  config.suo_down_at = rt::msec(120);
  config.suo_up_at = rt::msec(240);

  tk::ScenarioExecutor executor(config);
  const auto result = executor.run(script);

  EXPECT_EQ(result.link_outages, 1u);
  // No fault was planned and the outage itself must not manufacture
  // comparator errors: commands in the window reach neither the model
  // nor the system, and the link gate quiesces comparison.
  EXPECT_EQ(result.verdict, tk::Verdict::kTrueNegative);
  EXPECT_EQ(result.errors_on_target + result.errors_off_target, 0u);

  bool down_traced = false;
  bool up_traced = false;
  for (const auto& line : result.trace.lines()) {
    if (line.find("link down") != std::string::npos) down_traced = true;
    if (line.find("link up") != std::string::npos) up_traced = true;
  }
  EXPECT_TRUE(down_traced);
  EXPECT_TRUE(up_traced);

  // Determinism: the same outage scenario replays to the same trace.
  tk::ScenarioExecutor executor2(config);
  const auto replay = executor2.run(script);
  EXPECT_EQ(result.trace.fingerprint(), replay.trace.fingerprint());
}
