// Tests for the user-perception model (§4.6): irritation mechanism
// properties and the stated-vs-observed inversion driven by attribution.
#include <gtest/gtest.h>

#include "perception/perception.hpp"

namespace per = trader::perception;
namespace rt = trader::runtime;

namespace {

per::ProductFunction fn(double importance, double usage,
                        per::Attribution att = per::Attribution::kProduct) {
  return per::ProductFunction{"f", importance, usage, att};
}

per::FailureStimulus stim(double severity, rt::SimDuration dur = rt::sec(30)) {
  return per::FailureStimulus{"f", severity, dur};
}

}  // namespace

TEST(Irritation, WithinUnitInterval) {
  per::IrritationModel model;
  for (double imp : {0.0, 0.5, 1.0}) {
    for (double sev : {0.0, 0.5, 1.0}) {
      const double irr = model.irritation(fn(imp, 5.0), stim(sev), per::UserGroup::kCasual,
                                          per::Attribution::kProduct);
      EXPECT_GE(irr, 0.0);
      EXPECT_LE(irr, 1.0);
    }
  }
}

TEST(Irritation, IncreasesWithImportance) {
  per::IrritationModel model;
  const double low = model.irritation(fn(0.2, 5.0), stim(0.5), per::UserGroup::kCasual,
                                      per::Attribution::kProduct);
  const double high = model.irritation(fn(0.9, 5.0), stim(0.5), per::UserGroup::kCasual,
                                       per::Attribution::kProduct);
  EXPECT_GT(high, low);
}

TEST(Irritation, IncreasesWithSeverity) {
  per::IrritationModel model;
  const double low = model.irritation(fn(0.5, 5.0), stim(0.2), per::UserGroup::kCasual,
                                      per::Attribution::kProduct);
  const double high = model.irritation(fn(0.5, 5.0), stim(0.9), per::UserGroup::kCasual,
                                       per::Attribution::kProduct);
  EXPECT_GT(high, low);
}

TEST(Irritation, IncreasesWithUsage) {
  per::IrritationModel model;
  const double rare = model.irritation(fn(0.5, 0.2), stim(0.5), per::UserGroup::kCasual,
                                       per::Attribution::kProduct);
  const double frequent = model.irritation(fn(0.5, 20.0), stim(0.5), per::UserGroup::kCasual,
                                           per::Attribution::kProduct);
  EXPECT_GT(frequent, rare);
}

TEST(Irritation, LongerFailuresIrritateMore) {
  per::IrritationModel model;
  const double brief = model.irritation(fn(0.5, 5.0), stim(0.5, rt::sec(2)),
                                        per::UserGroup::kCasual, per::Attribution::kProduct);
  const double lasting = model.irritation(fn(0.5, 5.0), stim(0.5, rt::sec(120)),
                                          per::UserGroup::kCasual, per::Attribution::kProduct);
  EXPECT_GT(lasting, brief);
}

TEST(Irritation, ExternalAttributionDiscountsHeavily) {
  per::IrritationModel model;
  const double blamed = model.irritation(fn(0.9, 10.0), stim(0.7), per::UserGroup::kCasual,
                                         per::Attribution::kProduct);
  const double excused = model.irritation(fn(0.9, 10.0), stim(0.7), per::UserGroup::kCasual,
                                          per::Attribution::kExternal);
  EXPECT_LT(excused, blamed * 0.5);
}

TEST(Irritation, EnthusiastsAreMoreSensitive) {
  per::IrritationModel model;
  const double casual = model.irritation(fn(0.5, 5.0), stim(0.5), per::UserGroup::kCasual,
                                         per::Attribution::kProduct);
  const double enthusiast = model.irritation(fn(0.5, 5.0), stim(0.5),
                                             per::UserGroup::kEnthusiast,
                                             per::Attribution::kProduct);
  EXPECT_GT(enthusiast, casual);
}

TEST(Irritation, EnumNames) {
  EXPECT_STREQ(per::to_string(per::UserGroup::kSenior), "senior");
  EXPECT_STREQ(per::to_string(per::Attribution::kExternal), "external");
}

// ------------------------------------------------------------------ UserPanel

TEST(Panel, DeterministicForSameSeed) {
  per::UserPanel p1(100, 42);
  per::UserPanel p2(100, 42);
  const auto r1 = p1.run(per::tv_functions(), per::tv_failure_stimuli());
  const auto r2 = p2.run(per::tv_functions(), per::tv_failure_stimuli());
  ASSERT_EQ(r1.outcomes.size(), r2.outcomes.size());
  for (std::size_t i = 0; i < r1.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.outcomes[i].observed_irritation, r2.outcomes[i].observed_irritation);
  }
}

TEST(Panel, RanksAreAPermutation) {
  per::UserPanel panel(50, 7);
  const auto result = panel.run(per::tv_functions(), per::tv_failure_stimuli());
  std::set<std::size_t> stated;
  std::set<std::size_t> observed;
  for (const auto& o : result.outcomes) {
    stated.insert(o.stated_rank);
    observed.insert(o.observed_rank);
  }
  EXPECT_EQ(stated.size(), result.outcomes.size());
  EXPECT_EQ(observed.size(), result.outcomes.size());
  EXPECT_EQ(*stated.begin(), 1u);
}

TEST(Panel, OfLooksUpByName) {
  per::UserPanel panel(50, 7);
  const auto result = panel.run(per::tv_functions(), per::tv_failure_stimuli());
  EXPECT_EQ(result.of("swivel").function, "swivel");
  EXPECT_THROW(result.of("warp-drive"), std::out_of_range);
}

TEST(Panel, StatedSurveyTracksIntrinsicImportance) {
  per::UserPanel panel(400, 11);
  const auto result = panel.run(per::tv_functions(), per::tv_failure_stimuli());
  // Stated importance must be close to the intrinsic values, regardless
  // of attribution (surveys don't see attribution).
  EXPECT_NEAR(result.of("image_quality").stated_importance, 0.92, 0.05);
  EXPECT_NEAR(result.of("swivel").stated_importance, 0.88, 0.05);
  EXPECT_NEAR(result.of("sleep_timer").stated_importance, 0.25, 0.05);
}

TEST(Panel, TheAttributionInversion) {
  // The paper's headline §4.6 finding: stated importance puts image
  // quality and the swivel together at the top, but under observation
  // users tolerate bad image quality (external attribution) and are
  // irritated by the swivel.
  per::UserPanel panel(400, 11);
  const auto result = panel.run(per::tv_functions(), per::tv_failure_stimuli());
  const auto& iq = result.of("image_quality");
  const auto& swivel = result.of("swivel");
  // Stated: both in the top ranks, close together.
  EXPECT_LE(iq.stated_rank, 2u);
  EXPECT_LE(swivel.stated_rank, 3u);
  // Observed: the swivel irritates far more than image quality.
  EXPECT_GT(swivel.observed_irritation, 2.0 * iq.observed_irritation);
  EXPECT_LT(swivel.observed_rank, iq.observed_rank);
}

TEST(Panel, ProductAttributedFunctionsKeepTheirRank) {
  per::UserPanel panel(400, 11);
  const auto result = panel.run(per::tv_functions(), per::tv_failure_stimuli());
  // Audio is important, frequently used and blamed on the product: it
  // must stay highly irritating under observation.
  EXPECT_LE(result.of("audio").observed_rank, 2u);
}

TEST(Panel, LargerPanelsReduceSurveyNoise) {
  per::UserPanel small(10, 3);
  per::UserPanel large(1000, 3);
  const auto rs = small.run(per::tv_functions(), per::tv_failure_stimuli());
  const auto rl = large.run(per::tv_functions(), per::tv_failure_stimuli());
  const double err_small = std::abs(rs.of("teletext").stated_importance - 0.55);
  const double err_large = std::abs(rl.of("teletext").stated_importance - 0.55);
  EXPECT_LE(err_large, err_small + 0.02);
}

TEST(Panel, StimulusFreeFunctionsScoreZeroIrritation) {
  per::UserPanel panel(50, 5);
  const auto result = panel.run(per::tv_functions(), {});  // no stimuli at all
  for (const auto& o : result.outcomes) {
    EXPECT_DOUBLE_EQ(o.observed_irritation, 0.0);
  }
}
