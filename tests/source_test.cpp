// Tests for the AV source feature (§2: external inputs, recording
// devices, USB) — control semantics, pipeline behaviour, spec-model
// agreement, and awareness of source faults.
#include <gtest/gtest.h>

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "detection/detectors.hpp"
#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/test_script.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace tv = trader::tv;
namespace rt = trader::runtime;
namespace flt = trader::faults;
namespace core = trader::core;
namespace det = trader::detection;
namespace sm = trader::statemachine;

TEST(AvSource, CycleAndNames) {
  EXPECT_EQ(tv::next_source(tv::AvSource::kAntenna), tv::AvSource::kHdmi);
  EXPECT_EQ(tv::next_source(tv::AvSource::kHdmi), tv::AvSource::kUsb);
  EXPECT_EQ(tv::next_source(tv::AvSource::kUsb), tv::AvSource::kAntenna);
  EXPECT_STREQ(tv::to_string(tv::AvSource::kHdmi), "hdmi");
  EXPECT_GT(tv::source_quality(tv::AvSource::kHdmi), tv::source_quality(tv::AvSource::kUsb));
}

namespace {

struct SourceFixture {
  SourceFixture() : injector(rt::Rng(5)), set(sched, bus, injector) {
    set.start();
    set.press(tv::Key::kPower);
    sched.run_for(rt::msec(200));
  }

  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector;
  tv::TvSystem set;
};

}  // namespace

TEST(AvSource, SourceKeyCyclesThroughInputs) {
  SourceFixture f;
  EXPECT_EQ(f.set.av_switch().source(), tv::AvSource::kAntenna);
  f.set.press(tv::Key::kSource);
  EXPECT_EQ(f.set.av_switch().source(), tv::AvSource::kHdmi);
  EXPECT_EQ(f.set.control().source(), tv::AvSource::kHdmi);
  f.set.press(tv::Key::kSource);
  EXPECT_EQ(f.set.av_switch().source(), tv::AvSource::kUsb);
  f.set.press(tv::Key::kSource);
  EXPECT_EQ(f.set.av_switch().source(), tv::AvSource::kAntenna);
}

TEST(AvSource, ExternalFeedDeliversItsOwnQuality) {
  SourceFixture f;
  f.set.press(tv::Key::kSource);  // hdmi
  f.sched.run_for(rt::sec(2));
  EXPECT_NEAR(f.set.recent_quality(), 0.98, 0.05);
}

TEST(AvSource, ZappingInertOnExternalInputs) {
  SourceFixture f;
  f.set.press(tv::Key::kSource);
  f.set.press(tv::Key::kChannelUp);
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.set.displayed_channel(), 1);  // unchanged
  f.set.press(tv::Key::kDigit2);
  f.set.press(tv::Key::kDigit3);
  f.sched.run_for(rt::sec(2));
  EXPECT_EQ(f.set.displayed_channel(), 1);  // digits swallowed too
}

TEST(AvSource, TeletextAndDualUnavailableOnExternalInputs) {
  SourceFixture f;
  f.set.press(tv::Key::kSource);
  f.set.press(tv::Key::kTeletext);
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.set.screen_output(), "video");
  f.set.press(tv::Key::kDualScreen);
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.set.screen_output(), "video");
}

TEST(AvSource, SourceKeyDismissesTeletext) {
  SourceFixture f;
  f.set.press(tv::Key::kTeletext);
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.set.screen_output(), "teletext");
  f.set.press(tv::Key::kSource);
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.set.screen_output(), "video");
  EXPECT_EQ(f.set.av_switch().source(), tv::AvSource::kHdmi);
  EXPECT_EQ(f.set.teletext().mode(), tv::TeletextEngine::Mode::kOff);
}

TEST(AvSource, SourceKeyDismissesDualScreen) {
  SourceFixture f;
  f.set.press(tv::Key::kDualScreen);
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.set.screen_output(), "dual");
  f.set.press(tv::Key::kSource);
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.set.screen_output(), "video");
}

TEST(AvSource, MenuSwallowsSourceKey) {
  SourceFixture f;
  f.set.press(tv::Key::kMenu);
  f.set.press(tv::Key::kSource);
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.set.av_switch().source(), tv::AvSource::kAntenna);
  EXPECT_EQ(f.set.screen_output(), "menu");
}

TEST(AvSource, PowerCycleRestoresSource) {
  SourceFixture f;
  f.set.press(tv::Key::kSource);  // hdmi
  f.set.press(tv::Key::kPower);   // off
  f.sched.run_for(rt::msec(100));
  f.set.press(tv::Key::kPower);   // on again
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.set.av_switch().source(), tv::AvSource::kHdmi);
}

TEST(AvSource, SourceOutputPublishedOnChange) {
  SourceFixture f;
  std::vector<std::string> sources;
  f.bus.subscribe("tv.output", [&](const rt::Event& ev) {
    if (ev.name == "source") sources.push_back(ev.str_field("value"));
  });
  f.set.press(tv::Key::kSource);
  f.set.press(tv::Key::kSource);
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], "hdmi");
  EXPECT_EQ(sources[1], "usb");
}

TEST(AvSource, LostSelectCommandDetectedByModeChecker) {
  SourceFixture f;
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.avswitch",
                                     f.sched.now(), 0, 1.0, {}});
  f.set.press(tv::Key::kSource);  // select lost: belief hdmi, switch antenna
  EXPECT_EQ(f.set.control().source(), tv::AvSource::kHdmi);
  EXPECT_EQ(f.set.av_switch().source(), tv::AvSource::kAntenna);

  det::ModeConsistencyChecker checker;
  for (auto& rule : det::tv_mode_rules()) checker.add_rule(rule);
  det::DetectionLog log;
  for (int i = 0; i < 5; ++i) {
    f.sched.run_for(rt::msec(20));
    checker.check(f.set.mode_snapshot(), f.sched.now(), log);
  }
  EXPECT_GE(log.first("mode", "control-avswitch-source"), 0);
}

TEST(AvSource, LostSelectCommandDetectedByAwarenessMonitor) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(5));
  tv::TvSystem set(sched, bus, injector);

  auto monitor = core::MonitorBuilder(sched, bus)
                     .model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
                     .comparison_period(rt::msec(20))
                     .startup_grace(rt::msec(100))
                     .threshold("source", 0.0, /*max_consecutive=*/3)
                     .build();
  set.start();
  monitor->start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(300));
  set.press(tv::Key::kSource);
  sched.run_for(rt::msec(300));
  EXPECT_TRUE(monitor->errors().empty());  // healthy switch agrees

  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.avswitch", sched.now(),
                                   rt::msec(50), 1.0, {}});
  set.press(tv::Key::kSource);
  sched.run_for(rt::msec(500));
  ASSERT_FALSE(monitor->errors().empty());
  EXPECT_EQ(monitor->errors()[0].observable, "source");
}

TEST(AvSource, SpecModelScripts) {
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("source");
  script.inject("power")
      .inject("source")
      .expect_var("source", std::string("hdmi"))
      .expect_output("source")
      .inject("teletext")            // unavailable on hdmi
      .expect_state("On.Video")
      .inject("channel_up")          // inert on hdmi
      .expect_var("channel", std::int64_t{1})
      .inject("source")
      .inject("source")              // back to antenna
      .expect_var("source", std::string("antenna"))
      .inject("teletext")
      .expect_state("On.Teletext")
      .inject("source")              // dismisses teletext
      .expect_state("On.Video")
      .expect_var("source", std::string("hdmi"));
  const auto result = script.run(m);
  for (const auto& fail : result.failures) {
    ADD_FAILURE() << "step " << fail.step_index << ": " << fail.message;
  }
}

TEST(AvSource, CrashedSwitchRecoversByRestart) {
  SourceFixture f;
  f.set.press(tv::Key::kSource);  // hdmi (belief + switch)
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "avswitch", f.sched.now(),
                                     rt::msec(50), 1.0, {}});
  f.sched.run_for(rt::msec(100));
  ASSERT_TRUE(f.set.crashed().count("avswitch"));
  f.set.press(tv::Key::kSource);  // usb belief; dead switch stays hdmi
  EXPECT_EQ(f.set.av_switch().source(), tv::AvSource::kHdmi);
  f.set.restart_component("avswitch");
  EXPECT_EQ(f.set.av_switch().source(), tv::AvSource::kUsb);  // replayed belief
}
