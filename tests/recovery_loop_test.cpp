// Tests for the closed observe -> diagnose -> act loop: the hub-side
// RecoveryOrchestrator's four guards (convergence, cooldown, version
// gate, fleet-wide token bucket), idempotent command/ack handling with
// retries and flap quarantine, the §5 escalation ladder driven against
// online SFL suspects, and the RecoveryCampaign scoring the whole loop
// over real AF_UNIX sockets: MTTR vs a supervision-only baseline,
// recovery precision against injector ground truth (uniform draws and
// the shipped fuzz findings), byte-reproducibility at 1/2/4 shards, the
// ≥8-slot correlated-fault storm guard with a v2 peer that must never
// see a kRecover frame, and golden-trace hygiene for hub.recovery.*
// metrics. RecoveryConcurrency.* is the TSan target scripts/check.sh
// runs (ingest vs actuate vs ack vs query).
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fleetdiag/aggregator.hpp"
#include "gtest/gtest.h"
#include "hub/hub.hpp"
#include "hub/recovery.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "recovery/escalation.hpp"
#include "runtime/metrics.hpp"
#include "testkit/diag_campaign.hpp"
#include "testkit/golden_trace.hpp"
#include "testkit/recovery_campaign.hpp"
#include "testkit/scenario.hpp"

namespace diag = trader::diagnosis;
namespace fd = trader::fleetdiag;
namespace hub = trader::hub;
namespace ipc = trader::ipc;
namespace rec = trader::recovery;
namespace rt = trader::runtime;
namespace tk = trader::testkit;

namespace {

/// Orchestrator policy paced for unit tests: jitter off so timings are
/// exact, one failure per ladder rung so escalation is observable fast.
hub::RecoveryConfig fast_config() {
  hub::RecoveryConfig rc;
  rc.enabled = true;
  rc.stable_reports = 2;
  rc.token_capacity = 4;
  rc.token_refill_every = rt::msec(100);
  rc.cooldown = rt::msec(100);
  rc.cooldown_jitter = 0;
  rc.ack_timeout = rt::msec(50);
  rc.max_retries = 1;
  rc.flap_threshold = 2;
  rc.success_reports = 2;
  rc.escalation.failures_per_level = 1;
  rc.escalation.window = rt::sec(60);
  return rc;
}

/// One spectrum report: a failing step touching `block` plus a passing
/// step touching `block + 1` — Ochiai pins `block` as the top suspect.
void feed_error(fd::FleetAggregator& agg, const std::string& slot, std::uint32_t block,
                int reports = 1) {
  for (int i = 0; i < reports; ++i) {
    agg.ingest(slot, std::vector<ipc::SpectrumStep>{{true, {block}}, {false, {block + 1}}});
  }
}

struct SentFrame {
  std::string slot;
  ipc::Frame frame;
};

/// Orchestrator + aggregator + capturing send fn, wired like the hub
/// does it but with the transport faked out.
struct Rig {
  fd::FleetAggregator agg{fd::AggregatorConfig{10, diag::Coefficient::kOchiai, 1}};
  hub::RecoveryOrchestrator orch;
  std::vector<SentFrame> sent;

  explicit Rig(hub::RecoveryConfig cfg = fast_config()) : orch(cfg, agg) {
    orch.set_send([this](const std::string& slot, const ipc::Frame& f) {
      sent.push_back({slot, f});
      return true;
    });
    orch.set_component_of([](std::size_t block) { return "comp" + std::to_string(block); });
  }

  void ack(const std::string& slot, const ipc::Frame& cmd, bool ok) {
    ipc::Frame a;
    a.type = ipc::FrameType::kRecoverAck;
    a.action = cmd.action;
    a.token = cmd.token;
    a.unit = cmd.unit;
    a.ok = ok;
    orch.on_ack(slot, a);
  }
};

template <typename Pred>
bool pump_until(hub::AwarenessHub& awareness_hub, Pred done) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    if (awareness_hub.poll(10) < 0) return false;
  }
  return true;
}

/// Connect + kHello handshake; `max_version` lets a test pose as an
/// older peer (the storm-guard's v2 bystander).
bool handshake(hub::AwarenessHub& awareness_hub, ipc::FramedSocket& sock, const std::string& slot,
               std::uint8_t max_version = ipc::kProtocolVersion) {
  const int fd = ipc::connect_unix_retry(awareness_hub.path(), 2000);
  if (fd < 0) return false;
  sock = ipc::FramedSocket(fd);
  ipc::Frame hello;
  hello.type = ipc::FrameType::kHello;
  hello.detail = slot;
  hello.max_version = max_version;
  if (!sock.send(hello)) return false;
  ipc::Frame ack;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() <= deadline) {
    const auto st = sock.recv(ack, 0);
    if (st == ipc::FramedSocket::RecvStatus::kFrame) {
      return ack.type == ipc::FrameType::kHelloAck;
    }
    if (st != ipc::FramedSocket::RecvStatus::kTimeout) return false;
    if (awareness_hub.poll(10) < 0) return false;
  }
  return false;
}

/// One kSpectrum report frame, same shape as feed_error().
ipc::Frame spectrum_frame(std::uint32_t& seq, std::uint32_t block) {
  ipc::Frame f;
  f.type = ipc::FrameType::kSpectrum;
  f.seq = ++seq;
  f.block_count = 64;
  f.spectra.push_back({true, {block}});
  f.spectra.push_back({false, {block + 1}});
  return f;
}

std::string corpus_path() {
  std::string dir(__FILE__);
  const auto slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  for (const std::string& candidate :
       {dir + "/../FUZZ_corpus.json", std::string("FUZZ_corpus.json"),
        std::string("../FUZZ_corpus.json"), std::string("../../FUZZ_corpus.json")}) {
    struct stat st{};
    if (::stat(candidate.c_str(), &st) == 0 && st.st_size > 0) return candidate;
  }
  return "";
}

}  // namespace

// ==================================================== orchestrator guards

TEST(RecoveryOrchestrator, ConvergenceGateHoldsFireUntilSuspectIsStable) {
  Rig rig;
  rig.orch.slot_up("s0", ipc::kProtocolVersion);

  // Errors present but the candidate was only just baselined: no action.
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(10));
  EXPECT_TRUE(rig.sent.empty());
  EXPECT_GE(rig.orch.stats().suppressed_unconverged, 1u);

  // One more agreeing report still undercuts stable_reports = 2.
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(20));
  EXPECT_TRUE(rig.sent.empty());

  // Two agreeing reports after the baseline: the gate opens, the first
  // ladder rung goes out with the suspect's component and block.
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(30));
  ASSERT_EQ(rig.sent.size(), 1u);
  EXPECT_EQ(rig.sent[0].slot, "s0");
  EXPECT_EQ(rig.sent[0].frame.type, ipc::FrameType::kRecover);
  EXPECT_EQ(rig.sent[0].frame.action,
            static_cast<std::uint8_t>(rec::RecoveryAction::kResync));
  EXPECT_EQ(rig.sent[0].frame.unit, "comp5");
  EXPECT_EQ(rig.sent[0].frame.block, 5u);
  EXPECT_NE(rig.sent[0].frame.token, 0u);
  EXPECT_EQ(rig.orch.stats().sent, 1u);
}

TEST(RecoveryOrchestrator, LadderClimbsPerActionAndGiveUpQuarantines) {
  Rig rig;
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(rig.agg, "s0", 5, 2);

  // Drive 4 acked-but-ineffective actions: each needs fresh error
  // evidence and a cooldown-spaced tick; failures_per_level = 1 climbs
  // one rung per action.
  const rec::RecoveryAction want[] = {
      rec::RecoveryAction::kResync, rec::RecoveryAction::kRestartUnit,
      rec::RecoveryAction::kRestartDependents, rec::RecoveryAction::kFullRestart};
  rt::SimTime now = rt::msec(10);
  for (std::size_t i = 0; i < 4; ++i) {
    rig.orch.tick(now);
    ASSERT_EQ(rig.sent.size(), i + 1) << "action " << i;
    EXPECT_EQ(rig.sent[i].frame.action, static_cast<std::uint8_t>(want[i])) << "action " << i;
    rig.ack("s0", rig.sent[i].frame, /*ok=*/true);
    feed_error(rig.agg, "s0", 5);  // the "repair" did not stop the errors
    now += rt::msec(200);          // beyond cooldown
  }

  // Fifth eligible pass: the escalator answers give-up, which is
  // hub-local — no frame, the slot is quarantined instead.
  rig.orch.tick(now);
  EXPECT_EQ(rig.sent.size(), 4u);
  EXPECT_TRUE(rig.orch.quarantined("s0"));
  EXPECT_EQ(rig.orch.stats().give_ups, 1u);

  // Quarantined means observed, never actuated: more evidence, no frame.
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(now + rt::sec(1));
  EXPECT_EQ(rig.sent.size(), 4u);
}

TEST(RecoveryOrchestrator, PolicyMaskSkipsDeniedRungUpward) {
  // Operator policy: resync is denied fleet-wide, so the FIRST action
  // lands one rung up the ladder — and the skip is counted, not silent.
  hub::RecoveryConfig cfg = fast_config();
  cfg.policy.allow_resync = false;
  Rig rig(cfg);
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::msec(10));

  ASSERT_EQ(rig.sent.size(), 1u);
  EXPECT_EQ(rig.sent[0].frame.action,
            static_cast<std::uint8_t>(rec::RecoveryAction::kRestartUnit));
  EXPECT_EQ(rig.orch.stats().policy_denied, 1u);
  EXPECT_EQ(rig.orch.stats().sent, 1u);
}

TEST(RecoveryOrchestrator, PolicyDenyAllQuarantinesWithoutActuating) {
  // Every rung denied: the mask climbs straight through the ladder to
  // give-up. Nothing crosses the wire — the slot is parked as "needs
  // service" on the first eligible pass.
  hub::RecoveryConfig cfg = fast_config();
  cfg.policy.allow_resync = false;
  cfg.policy.allow_restart_unit = false;
  cfg.policy.allow_restart_dependents = false;
  cfg.policy.allow_full_restart = false;
  Rig rig(cfg);
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::msec(10));

  EXPECT_TRUE(rig.sent.empty());
  EXPECT_EQ(rig.orch.stats().policy_denied, 4u) << "one skip per masked rung";
  EXPECT_EQ(rig.orch.stats().give_ups, 1u);
  EXPECT_TRUE(rig.orch.quarantined("s0"));
  EXPECT_EQ(rig.orch.stats().sent, 0u);
}

TEST(RecoveryOrchestrator, QuietSuccessDecaysLadderWithoutRestartLoop) {
  Rig rig;
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::msec(10));
  ASSERT_EQ(rig.sent.size(), 1u);
  rig.ack("s0", rig.sent[0].frame, /*ok=*/true);

  // The repair worked: reports keep arriving but carry no new errors.
  // After success_reports quiet reports the ladder decays...
  rig.agg.ingest("s0", std::vector<ipc::SpectrumStep>{{false, {5}}});
  rig.agg.ingest("s0", std::vector<ipc::SpectrumStep>{{false, {5}}});
  rig.orch.tick(rt::sec(1));
  EXPECT_EQ(rig.orch.stats().recovered, 1u);

  // ...and the cumulative (never-zero) historical error count must not
  // re-trigger an action, however long the fleet runs on.
  for (int i = 0; i < 10; ++i) {
    rig.agg.ingest("s0", std::vector<ipc::SpectrumStep>{{false, {5}}});
    rig.orch.tick(rt::sec(2) + rt::msec(200 * i));
  }
  EXPECT_EQ(rig.sent.size(), 1u) << "no restart loop after a successful repair";

  // New error evidence is a different story: the loop re-arms (fresh
  // candidate baseline, then stable reports), and the decayed ladder
  // starts again from resync.
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::sec(10));  // re-baseline the reset candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::sec(11));
  ASSERT_EQ(rig.sent.size(), 2u);
  EXPECT_EQ(rig.sent[1].frame.action,
            static_cast<std::uint8_t>(rec::RecoveryAction::kResync));
}

TEST(RecoveryOrchestrator, TokenBucketCapsACorrelatedBurst) {
  hub::RecoveryConfig cfg = fast_config();
  cfg.token_capacity = 3;
  Rig rig(cfg);
  for (int i = 0; i < 8; ++i) {
    const std::string slot = "n" + std::to_string(i);
    rig.orch.slot_up(slot, ipc::kProtocolVersion);
    feed_error(rig.agg, slot, 5);  // all converge on the same suspect
  }
  rig.orch.tick(rt::msec(1));  // baseline every candidate
  for (int i = 0; i < 8; ++i) feed_error(rig.agg, "n" + std::to_string(i), 5, 2);

  // The correlated storm: 8 eligible slots, 3 tokens. Deterministic map
  // order hands the burst to n0..n2; the rest are suppressed, counted.
  rig.orch.tick(rt::msec(10));
  ASSERT_EQ(rig.sent.size(), 3u);
  EXPECT_EQ(rig.sent[0].slot, "n0");
  EXPECT_EQ(rig.sent[1].slot, "n1");
  EXPECT_EQ(rig.sent[2].slot, "n2");
  EXPECT_EQ(rig.orch.stats().suppressed_tokens, 5u);
  // Ack the burst so its ack timeouts don't spend the refilled tokens
  // on retries before n3 gets its turn.
  for (int i = 0; i < 3; ++i) rig.ack(rig.sent[i].slot, rig.sent[i].frame, /*ok=*/true);

  // One refill period -> exactly one more action (no banking, no burst).
  rig.orch.tick(rt::msec(110));
  EXPECT_EQ(rig.sent.size(), 4u);
  EXPECT_EQ(rig.sent[3].slot, "n3");
  rig.orch.tick(rt::msec(119));  // same window: still dry
  EXPECT_EQ(rig.sent.size(), 4u);
}

TEST(RecoveryOrchestrator, CooldownSpacesActionsOnOneSlot) {
  Rig rig;
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::msec(10));
  ASSERT_EQ(rig.sent.size(), 1u);
  rig.ack("s0", rig.sent[0].frame, /*ok=*/true);
  feed_error(rig.agg, "s0", 5);  // fresh evidence immediately

  rig.orch.tick(rt::msec(50));  // inside cooldown (100 ms from action)
  EXPECT_EQ(rig.sent.size(), 1u);
  EXPECT_GE(rig.orch.stats().suppressed_cooldown, 1u);
  rig.orch.tick(rt::msec(120));  // cooldown over
  EXPECT_EQ(rig.sent.size(), 2u);
}

TEST(RecoveryOrchestrator, FailedAcksFlapTheSlotIntoQuarantine) {
  Rig rig;  // flap_threshold = 2
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::msec(10));
  ASSERT_EQ(rig.sent.size(), 1u);
  rig.ack("s0", rig.sent[0].frame, /*ok=*/false);
  EXPECT_EQ(rig.orch.stats().acked_fail, 1u);
  EXPECT_FALSE(rig.orch.quarantined("s0"));

  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(200));
  ASSERT_EQ(rig.sent.size(), 2u);
  rig.ack("s0", rig.sent[1].frame, /*ok=*/false);
  EXPECT_TRUE(rig.orch.quarantined("s0"));
  EXPECT_EQ(rig.orch.quarantined_count(), 1u);
  EXPECT_EQ(rig.orch.stats().quarantined, 1u);
}

TEST(RecoveryOrchestrator, TimeoutRetriesSameTokenThenCountsAFlap) {
  hub::RecoveryConfig cfg = fast_config();
  cfg.flap_threshold = 1;  // first exhausted command quarantines
  Rig rig(cfg);
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::msec(10));
  ASSERT_EQ(rig.sent.size(), 1u);
  ASSERT_TRUE(rig.orch.has_outstanding("s0"));

  // No ack for ack_timeout: the retry carries the SAME token (the SUO
  // side dedupes on it) and is counted as a retry, not a fresh send.
  rig.orch.tick(rt::msec(70));
  ASSERT_EQ(rig.sent.size(), 2u);
  EXPECT_EQ(rig.sent[1].frame.token, rig.sent[0].frame.token);
  EXPECT_EQ(rig.orch.stats().sent, 1u);
  EXPECT_EQ(rig.orch.stats().retries, 1u);

  // Still no ack and max_retries = 1 exhausted: flap -> quarantine.
  rig.orch.tick(rt::msec(200));
  EXPECT_TRUE(rig.orch.quarantined("s0"));
  EXPECT_GE(rig.orch.stats().timeouts, 2u);
}

TEST(RecoveryOrchestrator, StaleAndDuplicateAcksAreCountedAndDropped) {
  Rig rig;
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::msec(10));
  ASSERT_EQ(rig.sent.size(), 1u);

  // A wrong-token ack is dropped; the real command stays outstanding.
  ipc::Frame stale = rig.sent[0].frame;
  stale.token ^= 0xdeadULL;
  rig.ack("s0", stale, true);
  EXPECT_TRUE(rig.orch.has_outstanding("s0"));
  EXPECT_EQ(rig.orch.stats().duplicate_acks, 1u);
  EXPECT_EQ(rig.orch.stats().acked_ok, 0u);

  // The real ack consumes it; its duplicate is counted and ignored.
  rig.ack("s0", rig.sent[0].frame, true);
  EXPECT_FALSE(rig.orch.has_outstanding("s0"));
  EXPECT_EQ(rig.orch.stats().acked_ok, 1u);
  rig.ack("s0", rig.sent[0].frame, true);
  EXPECT_EQ(rig.orch.stats().duplicate_acks, 2u);
  EXPECT_EQ(rig.orch.stats().acked_ok, 1u);

  // An ack for a slot the orchestrator never saw is equally harmless.
  rig.ack("ghost", rig.sent[0].frame, true);
  EXPECT_EQ(rig.orch.stats().duplicate_acks, 3u);
}

TEST(RecoveryOrchestrator, VersionGateKeepsV2PeersObservedOnly) {
  Rig rig;
  rig.orch.slot_up("old", 2);  // negotiated v2: spectra yes, recovery no
  feed_error(rig.agg, "old", 5);
  rig.orch.tick(rt::msec(10));  // baseline the candidate
  feed_error(rig.agg, "old", 5, 4);
  rig.orch.tick(rt::msec(500));  // converged — but only v2-capable
  rig.orch.tick(rt::sec(1));
  EXPECT_TRUE(rig.sent.empty());
  EXPECT_GE(rig.orch.stats().suppressed_version, 1u);
  EXPECT_FALSE(rig.orch.quarantined("old"));
}

TEST(RecoveryOrchestrator, RetireSlotDropsOrchestrationAndLadderState) {
  hub::RecoveryConfig cfg = fast_config();
  cfg.flap_threshold = 1;
  Rig rig(cfg);
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::msec(10));
  ASSERT_EQ(rig.sent.size(), 1u);
  rig.ack("s0", rig.sent[0].frame, /*ok=*/false);  // flap -> quarantine
  ASSERT_TRUE(rig.orch.quarantined("s0"));
  ASSERT_EQ(rig.orch.quarantined_count(), 1u);

  // Retirement frees everything (mirrors FleetAggregator::retire_slot).
  rig.orch.retire_slot("s0");
  EXPECT_EQ(rig.orch.quarantined_count(), 0u);
  EXPECT_FALSE(rig.orch.quarantined("s0"));

  // If the name ever returns it starts clean: fresh quarantine budget
  // AND a fresh ladder (resync, not mid-climb where the old slot died).
  rig.agg.retire_slot("s0");
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::sec(2));  // baseline the fresh candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::sec(3));
  ASSERT_EQ(rig.sent.size(), 2u);
  EXPECT_EQ(rig.sent[1].frame.action,
            static_cast<std::uint8_t>(rec::RecoveryAction::kResync));
}

TEST(RecoveryOrchestrator, SlotDownLosesOutstandingCommandSafely) {
  Rig rig;
  rig.orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(rig.agg, "s0", 5);
  rig.orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(rig.agg, "s0", 5, 2);
  rig.orch.tick(rt::msec(10));
  ASSERT_TRUE(rig.orch.has_outstanding("s0"));

  rig.orch.slot_down("s0");
  EXPECT_FALSE(rig.orch.has_outstanding("s0"));
  EXPECT_EQ(rig.orch.stats().lost, 1u);

  // A late ack from the dead connection's command is a dropped duplicate.
  rig.ack("s0", rig.sent[0].frame, true);
  EXPECT_EQ(rig.orch.stats().duplicate_acks, 1u);
}

// ==================================================== closed loop, sockets

TEST(RecoveryLoop, ClosedLoopRepairsAndBeatsSupervisionOnlyMttr) {
  tk::RecoveryCampaignConfig cfg;
  cfg.scenarios = 6;
  cfg.seed = 101;

  tk::RecoveryCampaign closed(cfg);
  const tk::RecoveryCampaignReport with = closed.run();

  tk::RecoveryCampaignConfig base_cfg = cfg;
  base_cfg.orchestrate = false;
  tk::RecoveryCampaign baseline(base_cfg);
  const tk::RecoveryCampaignReport without = baseline.run();

  // Identical scenario stream on both arms.
  ASSERT_EQ(with.scenarios, without.scenarios);
  ASSERT_EQ(with.scored, without.scored);
  ASSERT_GE(with.scored, 4u) << "draw produced too few manifest faults to score";

  // Supervision alone never repairs: every scored scenario rides its
  // fault to the horizon (right-censored downtime).
  EXPECT_EQ(without.repaired, 0u);
  EXPECT_EQ(without.censored, without.scored);

  // The closed loop actually repairs, and repairs the right component.
  EXPECT_GE(with.repaired, with.scored - 1) << with.to_json();
  EXPECT_GE(with.precision(), 5.0 / 6.0) << with.to_json();
  EXPECT_LT(with.mean_downtime_ms, 0.5 * without.mean_downtime_ms)
      << "MTTR should beat the censored baseline by a wide margin";

  // Byte-reproducible: an identically configured campaign re-runs to
  // the exact same report text (virtual-time decisions only).
  tk::RecoveryCampaign again(cfg);
  EXPECT_EQ(again.run().to_json(), with.to_json());
}

TEST(RecoveryLoop, CampaignReportIsShardInvariant) {
  tk::RecoveryCampaignConfig cfg;
  cfg.scenarios = 4;
  cfg.seed = 77;
  cfg.shards = 1;
  const std::string one = tk::RecoveryCampaign(cfg).run().to_json();
  cfg.shards = 2;
  const std::string two = tk::RecoveryCampaign(cfg).run().to_json();
  cfg.shards = 4;
  const std::string four = tk::RecoveryCampaign(cfg).run().to_json();
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(RecoveryLoop, FuzzFindingsAreRepairedWithPrecision) {
  const std::string path = corpus_path();
  ASSERT_FALSE(path.empty()) << "shipped FUZZ_corpus.json not found";
  const auto findings = tk::load_findings(path);
  ASSERT_GE(findings.size(), 6u);

  // Minimized findings carry ~one command — just enough to trip
  // detection. Under the persistent-fault model the fault is still live
  // afterwards, so the recovery loop gets a padded observation window
  // to converge and land the repair in.
  tk::RecoveryCampaignConfig cfg;
  std::vector<tk::LabeledScenario> extended = findings;
  for (tk::LabeledScenario& entry : extended) {
    entry.script = tk::extend_for_recovery(entry.script, rt::msec(2000), cfg.draw.cadence);
  }
  tk::RecoveryCampaign campaign(cfg);
  const tk::RecoveryCampaignReport report = campaign.run(extended);

  EXPECT_EQ(report.scenarios, findings.size());
  ASSERT_GE(report.scored, 5u) << report.to_json();
  EXPECT_GE(report.repaired, report.scored - 1) << report.to_json();
  // The acceptance bar: ≥ 5/6 of restart-class recoveries hit the
  // component the injector actually broke.
  ASSERT_GT(report.with_restart, 0u) << report.to_json();
  EXPECT_GE(report.precision(), 5.0 / 6.0) << report.to_json();
}

TEST(RecoveryLoop, StormGuardBudgetsCorrelatedFaultAndSparesV2Peer) {
  // ≥ 8 slots hit by a correlated fault at once, plus one v2 bystander.
  // The token bucket must cap actuation per refill window, flapping
  // slots must end quarantined, and the v2 peer must see ZERO kRecover
  // frames (its fail-closed decoder would poison the link).
  constexpr int kSlots = 8;
  hub::HubConfig cfg;
  cfg.probe_liveness = false;
  cfg.diag.refresh_every = 1;
  cfg.recovery.enabled = true;
  cfg.recovery.stable_reports = 1;
  cfg.recovery.token_capacity = 3;
  cfg.recovery.token_refill_every = rt::msec(100);
  cfg.recovery.cooldown = rt::msec(50);
  cfg.recovery.cooldown_jitter = 0;
  cfg.recovery.ack_timeout = rt::sec(5);  // no timeouts in this test
  cfg.recovery.flap_threshold = 1;        // first failed ack quarantines
  hub::AwarenessHub awareness_hub(cfg);
  std::vector<std::string> names;
  for (int i = 0; i < kSlots; ++i) names.push_back("n" + std::to_string(i));
  for (const std::string& n : names) awareness_hub.add_slot(n);
  awareness_hub.add_slot("v2peer");
  awareness_hub.recovery().set_component_of(
      [](std::size_t block) { return "comp" + std::to_string(block); });
  ASSERT_TRUE(awareness_hub.start());

  std::vector<ipc::FramedSocket> socks(kSlots);
  for (int i = 0; i < kSlots; ++i) {
    ASSERT_TRUE(handshake(awareness_hub, socks[i], names[static_cast<std::size_t>(i)]));
  }
  ipc::FramedSocket v2sock;
  ASSERT_TRUE(handshake(awareness_hub, v2sock, "v2peer", /*max_version=*/2));

  std::uint32_t seq = 0;
  std::uint64_t reports = 0;
  const auto feed_all = [&] {
    for (int i = 0; i < kSlots; ++i) {
      if (!socks[static_cast<std::size_t>(i)].send(spectrum_frame(seq, 7))) return false;
    }
    if (!v2sock.send(spectrum_frame(seq, 7))) return false;  // v2 streams spectra too
    ++reports;
    return pump_until(awareness_hub, [&] {
      for (const std::string& n : names) {
        if (awareness_hub.diagnosis().health(n).reports < reports) return false;
      }
      return awareness_hub.diagnosis().health("v2peer").reports >= reports;
    });
  };

  std::vector<int> recovers_per_sock(kSlots, 0);
  int v2_recovers = 0;
  bool v2_saw_any = false;
  const auto drain_and_nack = [&] {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    for (;;) {
      bool outstanding = false;
      for (const std::string& n : names) {
        outstanding = outstanding || awareness_hub.recovery().has_outstanding(n);
      }
      if (!outstanding) return true;
      if (std::chrono::steady_clock::now() > deadline) return false;
      for (int i = 0; i < kSlots; ++i) {
        auto& sock = socks[static_cast<std::size_t>(i)];
        ipc::Frame f;
        while (sock.recv(f, 0) == ipc::FramedSocket::RecvStatus::kFrame) {
          if (f.type != ipc::FrameType::kRecover) continue;
          ++recovers_per_sock[static_cast<std::size_t>(i)];
          ipc::Frame ack;  // the fault is sticky: every recovery fails
          ack.type = ipc::FrameType::kRecoverAck;
          ack.action = f.action;
          ack.token = f.token;
          ack.unit = f.unit;
          ack.ok = false;
          ack.detail = "still broken";
          if (!sock.send(ack)) return false;
        }
      }
      {
        ipc::Frame f;
        while (v2sock.recv(f, 0) == ipc::FramedSocket::RecvStatus::kFrame) {
          v2_saw_any = true;
          if (f.type == ipc::FrameType::kRecover) ++v2_recovers;
        }
      }
      if (awareness_hub.poll(10) < 0) return false;
    }
  };

  // Window 0 baselines every candidate; each later window carries one
  // fresh agreeing report, a tick, and the failed-ack drain.
  ASSERT_TRUE(feed_all());
  awareness_hub.run_until(rt::msec(100));
  ASSERT_GE(awareness_hub.poll(0), 0);
  for (int w = 1;
       w <= 12 && awareness_hub.recovery().quarantined_count() < static_cast<std::size_t>(kSlots);
       ++w) {
    ASSERT_TRUE(feed_all());
    awareness_hub.run_until(rt::msec(100) * (w + 1));
    ASSERT_GE(awareness_hub.poll(0), 0);
    ASSERT_TRUE(drain_and_nack()) << "window " << w;
  }

  const hub::RecoveryStats stats = awareness_hub.recovery().stats();

  // Every flapping slot ended quarantined, after exactly one command.
  EXPECT_EQ(awareness_hub.recovery().quarantined_count(), static_cast<std::size_t>(kSlots));
  int total = 0;
  for (int i = 0; i < kSlots; ++i) {
    EXPECT_EQ(recovers_per_sock[static_cast<std::size_t>(i)], 1) << "slot n" << i;
    total += recovers_per_sock[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(static_cast<std::uint64_t>(total), stats.sent + stats.retries);

  // The storm never outran the bucket: per refill window, at most
  // token_capacity actuations across the whole fleet.
  std::map<rt::SimTime, int> per_window;
  for (const hub::RecoveryActionRecord& rec : awareness_hub.recovery().actions()) {
    ++per_window[rec.at / cfg.recovery.token_refill_every];
  }
  for (const auto& [window, count] : per_window) {
    EXPECT_LE(count, cfg.recovery.token_capacity) << "window " << window;
  }
  EXPECT_GT(stats.suppressed_tokens, 0u) << "the storm should have hit the budget";

  // The v2 peer was diagnosed (spectra accepted) but never actuated.
  EXPECT_GE(awareness_hub.diagnosis().health("v2peer").reports, 1u);
  EXPECT_EQ(v2_recovers, 0) << "a v2 link must never carry kRecover";
  EXPECT_GT(stats.suppressed_version, 0u);
  EXPECT_FALSE(awareness_hub.recovery().quarantined("v2peer"));
  (void)v2_saw_any;

  awareness_hub.stop();
}

TEST(RecoveryLoop, GoldenTraceFingerprintsExcludeRecoveryMetrics) {
  // hub.recovery.* counters move with wall-clock poll interleaving
  // (suppression tallies), so like ipc.* they must stay out of
  // shard-differential fingerprints — while remaining addressable for
  // operators who ask for them explicitly.
  rt::MetricsRegistry metrics;
  fd::FleetAggregator agg(fd::AggregatorConfig{10, diag::Coefficient::kOchiai, 1});
  hub::RecoveryConfig cfg = fast_config();
  hub::RecoveryOrchestrator orch(cfg, agg, &metrics);
  orch.set_send([](const std::string&, const ipc::Frame&) { return true; });
  orch.slot_up("s0", ipc::kProtocolVersion);
  feed_error(agg, "s0", 5);
  orch.tick(rt::msec(1));  // baseline the candidate
  feed_error(agg, "s0", 5, 2);
  orch.tick(rt::msec(10));
  ASSERT_EQ(orch.stats().sent, 1u);

  const rt::MetricsSnapshot snap = metrics.snapshot();
  tk::GoldenTrace fingerprinted;
  fingerprinted.capture_metrics(snap, {"comparator.", "model."});
  for (const std::string& line : fingerprinted.lines()) {
    EXPECT_EQ(line.find("hub.recovery."), std::string::npos) << line;
  }

  tk::GoldenTrace operators_view;
  operators_view.capture_metrics(snap, {"hub.recovery."});
  EXPECT_FALSE(operators_view.empty())
      << "hub.recovery.* must stay addressable through the prefix filter";
}

// ======================================================== TSan harness

TEST(RecoveryConcurrency, IngestActuateAckAndQueryRaceSafely) {
  // 4 threads against one orchestrator + aggregator: spectra ingest,
  // virtual-time ticks, ack delivery, and introspection queries.
  // scripts/check.sh runs this under TSan; the assertions here are
  // sanity only — the sanitizer is the real oracle.
  fd::FleetAggregator agg(fd::AggregatorConfig{10, diag::Coefficient::kOchiai, 1});
  hub::RecoveryConfig cfg = fast_config();
  cfg.cooldown = rt::msec(10);
  cfg.flap_threshold = 1000;  // keep slots actionable for the whole run
  hub::RecoveryOrchestrator orch(cfg, agg);

  std::mutex mu;
  std::deque<SentFrame> inbox;
  orch.set_send([&](const std::string& slot, const ipc::Frame& f) {
    std::lock_guard<std::mutex> lock(mu);
    inbox.push_back({slot, f});
    return true;
  });
  orch.set_component_of([](std::size_t block) { return "comp" + std::to_string(block); });
  const std::vector<std::string> slots = {"a", "b", "c", "d"};
  for (const std::string& s : slots) orch.slot_up(s, ipc::kProtocolVersion);

  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    // Fixed suspect block per slot, so rankings can actually converge.
    for (int i = 0; i < 400; ++i) {
      const std::size_t s = static_cast<std::size_t>(i) % slots.size();
      feed_error(agg, slots[s], static_cast<std::uint32_t>(5 + s));
    }
  });
  std::thread ticker([&] {
    for (int t = 0; t < 400; ++t) orch.tick(rt::msec(5) * t);
  });
  std::thread acker([&] {
    std::uint64_t acked = 0;
    while (!stop.load(std::memory_order_acquire) || !inbox.empty()) {
      SentFrame cmd;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (inbox.empty()) continue;
        cmd = inbox.front();
        inbox.pop_front();
      }
      ipc::Frame ack;
      ack.type = ipc::FrameType::kRecoverAck;
      ack.action = cmd.frame.action;
      ack.token = cmd.frame.token;
      ack.unit = cmd.frame.unit;
      ack.ok = (++acked % 3) != 0;
      orch.on_ack(cmd.slot, ack);
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)orch.stats();
      (void)orch.quarantined_count();
      (void)orch.actions();
      (void)agg.fleet_health();
    }
  });

  ingester.join();
  ticker.join();
  // Deterministic tail: with ingest quiesced, baseline + stable reports
  // + tick guarantees at least one command regardless of how the
  // concurrent phase interleaved (the acker is still live to consume).
  for (int i = 0; orch.stats().sent == 0 && i < 50; ++i) {
    feed_error(agg, "a", 5);
    orch.tick(rt::sec(100) + rt::msec(100 * i));
  }
  stop.store(true, std::memory_order_release);
  acker.join();
  reader.join();

  // Every frame the orchestrator emitted got exactly one ack back, and
  // each ack was either consumed or dropped as a duplicate — nothing
  // double-counted, nothing lost.
  const hub::RecoveryStats stats = orch.stats();
  EXPECT_EQ(stats.acked_ok + stats.acked_fail + stats.duplicate_acks,
            stats.sent + stats.retries);
  EXPECT_GE(stats.sent, 1u);
}
