// Executor-v2 property tests: the arena-batched BatchExecutor against
// the two legacy kernels (interpreting StateMachine, batch-of-1
// CompiledMachine) over seeded random machines and event streams, plus
// arena growth/reuse and cross-thread program sharing.
//
// The batched executor is only allowed to exist because it is
// indistinguishable from the interpreter: every test here drives twins
// step by step and compares state, outputs, deadlines and counters
// after every step. Run under ASan (arena recycling) and TSan (shared
// immutable program) by the `exec` stage of scripts/check.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_program.hpp"
#include "core/monitor_builder.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/rng.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/batch.hpp"
#include "statemachine/compiled.hpp"
#include "statemachine/machine.hpp"
#include "statemachine/program.hpp"

namespace sm = trader::statemachine;
namespace rt = trader::runtime;
namespace core = trader::core;

namespace {

// ---------------------------------------------------- random machines
//
// Same family as statemachine_test's equivalence suite: 2-4 top states
// with 0-3 children, random guarded/counting transitions over a 4-event
// alphabet, a few timed transitions. No history (compile rejects it).

struct RandomMachine {
  std::unique_ptr<sm::StateMachineDef> def;
  std::vector<std::string> alphabet;
};

RandomMachine make_random_machine(std::uint64_t seed) {
  rt::Rng rng(seed);
  auto def = std::make_unique<sm::StateMachineDef>("rand");
  std::vector<sm::StateId> states;
  const int tops = static_cast<int>(rng.uniform_int(2, 4));
  for (int t = 0; t < tops; ++t) {
    const auto top = def->add_state("T" + std::to_string(t));
    states.push_back(top);
    const int kids = static_cast<int>(rng.uniform_int(0, 3));
    for (int k = 0; k < kids; ++k) {
      states.push_back(def->add_state("T" + std::to_string(t) + "K" + std::to_string(k), top));
    }
  }
  std::vector<std::string> alphabet = {"a", "b", "c", "d"};
  const int transitions = static_cast<int>(rng.uniform_int(4, 14));
  for (int i = 0; i < transitions; ++i) {
    const auto src = states[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(states.size() - 1)))];
    const auto dst = states[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(states.size() - 1)))];
    const auto& ev = alphabet[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    sm::Guard guard = nullptr;
    if (rng.bernoulli(0.3)) {
      guard = [](const sm::Context& c, const sm::SmEvent&) { return c.get_int("ctr") % 2 == 0; };
    }
    sm::Action action = [](sm::ActionEnv& env) {
      env.vars.set_int("ctr", env.vars.get_int("ctr") + 1);
      env.emit("out", {{"value", env.vars.get_int("ctr")}});
    };
    def->add_transition(src, dst, ev, guard, action);
  }
  const int timed = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < timed; ++i) {
    const auto src = states[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(states.size() - 1)))];
    const auto dst = states[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(states.size() - 1)))];
    def->add_timed(src, dst, rng.uniform_int(50, 500));
  }
  return RandomMachine{std::move(def), std::move(alphabet)};
}

void expect_same_outputs(const std::vector<sm::ModelOutput>& a,
                         const std::vector<sm::ModelOutput>& b, int step) {
  ASSERT_EQ(a.size(), b.size()) << "step " << step;
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].name, b[k].name) << "step " << step;
    EXPECT_EQ(a[k].time, b[k].time) << "step " << step;
    EXPECT_EQ(rt::deviation(a[k].fields.at("value"), b[k].fields.at("value")), 0.0)
        << "step " << step;
  }
}

}  // namespace

// ----------------------------------------------- three-kernel property

class BatchedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

// Interpreter, batch-of-1 CompiledMachine and a multi-tenant
// BatchExecutor slot must agree step for step on a random machine and
// stream — state, dispatch result, fired counter, deadline, outputs.
TEST_P(BatchedEquivalence, InterpreterCompiledAndBatchSlotAgree) {
  const std::uint64_t seed = GetParam();
  RandomMachine rm = make_random_machine(seed);
  const auto program = sm::ModelProgram::compile(*rm.def);

  sm::StateMachine interp(*rm.def);
  sm::CompiledMachine compiled(program);
  // The batch slot under test lives AMONG other instances: two
  // bystanders stepped on a different stream guard against cross-slot
  // state bleed in the dense arrays.
  sm::BatchExecutor batch(program);
  const auto bi = batch.add_instance();
  const auto by0 = batch.add_instance();
  const auto by1 = batch.add_instance();

  interp.start(0);
  compiled.start(0);
  batch.start(bi, 0);
  batch.start(by0, 0);
  batch.start(by1, 0);
  ASSERT_EQ(interp.active_leaf(), batch.active_leaf(bi));

  rt::Rng rng(seed ^ 0xABCD);
  rt::Rng noise(seed ^ 0x5150);
  rt::SimTime now = 0;
  for (int step = 0; step < 200; ++step) {
    if (rng.bernoulli(0.3)) {
      now += rng.uniform_int(10, 300);
      const int fi = interp.advance_time(now);
      const int fc = compiled.advance_time(now);
      const int fb = batch.advance_time(bi, now);
      ASSERT_EQ(fi, fc) << "step " << step;
      ASSERT_EQ(fi, fb) << "step " << step;
    } else {
      const auto& name = rm.alphabet[static_cast<std::size_t>(rng.uniform_int(0, 3))];
      const bool ri = interp.dispatch(sm::SmEvent::named(name), now);
      const bool rc = compiled.dispatch(sm::SmEvent::named(name), now);
      const bool rb = batch.dispatch(bi, sm::SmEvent::named(name), now);
      ASSERT_EQ(ri, rc) << "step " << step << " event " << name;
      ASSERT_EQ(ri, rb) << "step " << step << " event " << name;
    }
    // Bystanders walk their own independent stream.
    batch.dispatch(by0, sm::SmEvent::named(rm.alphabet[static_cast<std::size_t>(
                            noise.uniform_int(0, 3))]),
                   now);
    batch.advance_time(by1, now);

    ASSERT_EQ(interp.active_leaf(), compiled.active_leaf()) << "step " << step;
    ASSERT_EQ(interp.active_leaf(), batch.active_leaf(bi)) << "step " << step;
    ASSERT_EQ(interp.next_deadline(), compiled.next_deadline()) << "step " << step;
    ASSERT_EQ(interp.next_deadline(), batch.next_deadline(bi)) << "step " << step;
    ASSERT_EQ(interp.transitions_fired(), batch.transitions_fired(bi)) << "step " << step;
    ASSERT_EQ(interp.livelock_detected(), batch.livelock_detected(bi)) << "step " << step;
    ASSERT_EQ(interp.vars().get_int("ctr"), batch.vars(bi).get_int("ctr")) << "step " << step;
    const auto oi = interp.drain_outputs();
    const auto oc = compiled.drain_outputs();
    const auto ob = batch.drain_outputs(bi);
    expect_same_outputs(oi, oc, step);
    expect_same_outputs(oi, ob, step);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMachines, BatchedEquivalence,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107, 108, 109, 110, 111,
                                           112, 113, 114, 115, 116, 117, 118, 119, 120));

// A whole population in ONE batch, each instance twinned with its own
// interpreter on its own stream: the strongest cross-instance isolation
// check the dense arrays get.
TEST(BatchExecutor, PopulationMatchesPerInstanceInterpreters) {
  RandomMachine rm = make_random_machine(424242);
  const auto program = sm::ModelProgram::compile(*rm.def);
  sm::BatchExecutor batch(program);

  constexpr int kN = 64;
  std::vector<sm::BatchExecutor::InstanceId> ids;
  std::vector<std::unique_ptr<sm::StateMachine>> twins;
  std::vector<rt::Rng> streams;
  for (int i = 0; i < kN; ++i) {
    ids.push_back(batch.add_instance());
    twins.push_back(std::make_unique<sm::StateMachine>(*rm.def));
    streams.emplace_back(0x9000u + static_cast<std::uint64_t>(i));
    batch.start(ids.back(), 0);
    twins.back()->start(0);
  }

  rt::SimTime now = 0;
  for (int step = 0; step < 60; ++step) {
    now += 25;
    for (int i = 0; i < kN; ++i) {
      auto& rng = streams[static_cast<std::size_t>(i)];
      auto& twin = *twins[static_cast<std::size_t>(i)];
      const auto id = ids[static_cast<std::size_t>(i)];
      if (rng.bernoulli(0.4)) {
        ASSERT_EQ(twin.advance_time(now), batch.advance_time(id, now)) << i << "@" << step;
      } else {
        const auto& name = rm.alphabet[static_cast<std::size_t>(rng.uniform_int(0, 3))];
        ASSERT_EQ(twin.dispatch(sm::SmEvent::named(name), now),
                  batch.dispatch(id, sm::SmEvent::named(name), now))
            << i << "@" << step;
      }
      ASSERT_EQ(twin.active_leaf(), batch.active_leaf(id)) << i << "@" << step;
      ASSERT_EQ(twin.vars().get_int("ctr"), batch.vars(id).get_int("ctr")) << i << "@" << step;
    }
  }
  // advance_all == per-instance advance_time over the same population.
  int per_instance = 0;
  for (auto& twin : twins) per_instance += twin->advance_time(now + 1000);
  EXPECT_EQ(batch.advance_all(now + 1000), per_instance);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(twins[static_cast<std::size_t>(i)]->active_leaf(),
              batch.active_leaf(ids[static_cast<std::size_t>(i)]));
  }
}

// ------------------------------------------------- arena growth/reuse

// Released slots come back through the free list with scrubbed state;
// the arena does not grow under churn. ASan holds this to memory
// hygiene in the check.sh exec stage.
TEST(BatchExecutor, SlotRecyclingScrubsStateAndBoundsGrowth) {
  RandomMachine rm = make_random_machine(7);
  const auto program = sm::ModelProgram::compile(*rm.def);
  sm::BatchExecutor batch(program);

  const auto a = batch.add_instance();
  batch.start(a, 0);
  for (int i = 0; i < 20; ++i) batch.dispatch(a, sm::SmEvent::named("a"), 10 * i);
  batch.vars(a).set_int("junk", 99);
  const auto fired_before = batch.transitions_fired(a);
  EXPECT_EQ(batch.slot_count(), 1u);

  batch.release(a);
  EXPECT_EQ(batch.live_count(), 0u);
  EXPECT_EQ(batch.free_count(), 1u);

  // Churn: claim/release in a loop; slot_count must not move.
  for (int round = 0; round < 100; ++round) {
    const auto r = batch.add_instance();
    EXPECT_EQ(r, a) << "free list should recycle the single slot";
    EXPECT_FALSE(batch.started(r));
    EXPECT_EQ(batch.transitions_fired(r), 0u);
    EXPECT_FALSE(batch.vars(r).has("junk"));
    EXPECT_TRUE(batch.drain_outputs(r).empty());
    EXPECT_FALSE(batch.livelock_detected(r));
    batch.start(r, 0);
    batch.dispatch(r, sm::SmEvent::named("b"), 5);
    batch.release(r);
  }
  EXPECT_EQ(batch.slot_count(), 1u);
  (void)fired_before;
}

// Context& handed out by vars() must survive arena growth — actions
// hold such a reference while other monitors join the batch.
TEST(BatchExecutor, VarsReferencesSurviveGrowth) {
  RandomMachine rm = make_random_machine(8);
  const auto program = sm::ModelProgram::compile(*rm.def);
  sm::BatchExecutor batch(program);

  const auto first = batch.add_instance();
  batch.start(first, 0);
  sm::Context& held = batch.vars(first);
  held.set_int("pinned", 1);

  std::vector<sm::BatchExecutor::InstanceId> rest;
  for (int i = 0; i < 500; ++i) {
    rest.push_back(batch.add_instance());
    batch.start(rest.back(), 0);
  }
  held.set_int("pinned", held.get_int("pinned") + 1);  // write through old reference
  EXPECT_EQ(batch.vars(first).get_int("pinned"), 2);
  EXPECT_GE(batch.slot_count(), 501u);
}

// ModelArena: one batch per program, instances recycled through it, and
// the ModelInstance facade keeps the batch alive regardless of
// destruction order.
TEST(ModelArena, OneBatchPerProgramAndChurnReuse) {
  RandomMachine rm = make_random_machine(9);
  const auto p1 = core::compile_model(*rm.def);
  RandomMachine rm2 = make_random_machine(10);
  const auto p2 = core::compile_model(*rm2.def);

  auto arena = std::make_shared<core::ModelArena>();
  std::vector<std::unique_ptr<core::ModelInstance>> pop;
  for (int i = 0; i < 10; ++i) pop.push_back(arena->make_instance(p1));
  for (int i = 0; i < 5; ++i) pop.push_back(arena->make_instance(p2));
  EXPECT_EQ(arena->batch_count(), 2u);
  EXPECT_EQ(arena->live_instances(), 15u);
  EXPECT_EQ(arena->slot_count(), 15u);
  EXPECT_GT(arena->approx_bytes(), 0u);

  pop.clear();  // release every slot
  EXPECT_EQ(arena->live_instances(), 0u);
  EXPECT_EQ(arena->slot_count(), 15u);  // rows kept for reuse
  for (int i = 0; i < 10; ++i) pop.push_back(arena->make_instance(p1));
  EXPECT_EQ(arena->slot_count(), 15u);  // churn did not grow the arena

  // An instance may outlive the arena map entry's other users.
  auto survivor = arena->make_instance(p2);
  pop.clear();
  arena.reset();
  survivor->start(0);
  EXPECT_FALSE(survivor->state_name().empty());
}

// ------------------------------------------- shared program, N threads

// One immutable ModelProgram feeding per-thread batches — the
// ShardedFleet sharing pattern. TSan (check.sh exec stage) watches for
// races on the shared tables.
TEST(BatchExecutor, SharedProgramAcrossThreadsIsRaceFree) {
  RandomMachine rm = make_random_machine(11);
  const auto program = sm::ModelProgram::compile(*rm.def);

  constexpr int kThreads = 4;
  std::vector<std::uint64_t> fired(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &program, &rm, &fired]() {
      sm::BatchExecutor batch(program);
      rt::Rng rng(0xF00 + static_cast<std::uint64_t>(t));
      std::vector<sm::BatchExecutor::InstanceId> ids;
      for (int i = 0; i < 32; ++i) {
        ids.push_back(batch.add_instance());
        batch.start(ids.back(), 0);
      }
      rt::SimTime now = 0;
      std::uint64_t total = 0;
      for (int step = 0; step < 400; ++step) {
        now += 20;
        const auto id = ids[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ids.size() - 1)))];
        const auto& name = rm.alphabet[static_cast<std::size_t>(rng.uniform_int(0, 3))];
        batch.dispatch(id, sm::SmEvent::named(name), now);
        total += static_cast<std::uint64_t>(batch.advance_all(now));
      }
      for (const auto id : ids) total += batch.transitions_fired(id);
      fired[static_cast<std::size_t>(t)] = total;
    });
  }
  for (auto& w : workers) w.join();
  // Identical seeds per thread index would differ; just require work happened.
  for (const auto f : fired) EXPECT_GT(f, 0u);
}

// ------------------------------------------- monitor-level equivalence

// The batch-of-1 path behind MonitorBuilder::with_program and an
// arena-backed instance must be the same model as far as a monitor can
// tell. (Campaign-level equivalence incl. golden traces lives in
// testkit_test's DifferentialLegacyVsBatchedExecutorFingerprints.)
TEST(MonitorBuilder, PrivateBatchOfOneMatchesArenaInstance) {
  RandomMachine rm = make_random_machine(12);
  const auto program = core::compile_model(*rm.def);

  rt::Scheduler sched_a;
  rt::EventBus bus_a;
  auto arena = std::make_shared<core::ModelArena>();
  core::MonitorBuilder ba;
  ba.with_program(program).arena(arena);
  auto arena_monitor = ba.build(sched_a, bus_a);

  rt::Scheduler sched_b;
  rt::EventBus bus_b;
  core::MonitorBuilder bb;
  bb.with_program(program);  // no arena: private batch of 1
  auto solo_monitor = bb.build(sched_b, bus_b);

  arena_monitor->start();
  solo_monitor->start();
  EXPECT_EQ(arena->batch_count(), 1u);
  EXPECT_EQ(arena->live_instances(), 1u);

  rt::Rng rng(0xBEEF);
  rt::SimTime now = 0;
  for (int step = 0; step < 100; ++step) {
    now += 10;
    const auto& name = rm.alphabet[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    arena_monitor->executor().on_input(sm::SmEvent::named(name), now);
    solo_monitor->executor().on_input(sm::SmEvent::named(name), now);
    sched_a.run_until(now);
    sched_b.run_until(now);
    ASSERT_EQ(arena_monitor->executor().model_state(), solo_monitor->executor().model_state())
        << "step " << step;
  }
}
