// Tests for src/hub: the epoll EventLoop (timer semantics including
// fixed-rate catch-up after a stalled iteration, cross-thread wake),
// HubConnection backpressure policy, the AwarenessHub slot handshake
// (accept / unknown / busy / backoff rejection), accept storms,
// hub-driven liveness eviction with exactly-one-outage accounting, the
// publisher agent end to end, and the campaign differential gate: a
// multi-SUO campaign through the hub must match the in-process and
// per-monitor-socket backends verdict for verdict and fingerprint for
// fingerprint.
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor_builder.hpp"
#include "gtest/gtest.h"
#include "hub/agent.hpp"
#include "hub/connection.hpp"
#include "hub/event_loop.hpp"
#include "hub/hub.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "runtime/metrics.hpp"
#include "testkit/campaign.hpp"
#include "tv/spec_model.hpp"

namespace rt = trader::runtime;
namespace hub = trader::hub;
namespace ipc = trader::ipc;
namespace core = trader::core;
namespace tk = trader::testkit;
namespace tv = trader::tv;

namespace {

/// Pump `awareness_hub` until `done` returns true or ~2s of wall time
/// passes. The loop itself is the unit under test, so every wait in
/// these tests goes through it.
template <typename Pred>
bool pump_until(hub::AwarenessHub& awareness_hub, Pred done) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    if (awareness_hub.poll(10) < 0) return false;
  }
  return true;
}

ipc::Frame hello_frame(const std::string& slot) {
  ipc::Frame f;
  f.type = ipc::FrameType::kHello;
  f.detail = slot;
  return f;
}

/// Connect to the hub and run the kHello handshake, pumping the hub
/// loop between nonblocking receive attempts. Returns the handshake
/// response type (kShutdown on rejection).
ipc::FrameType handshake(hub::AwarenessHub& awareness_hub, ipc::FramedSocket& sock,
                         const std::string& slot) {
  const int fd = ipc::connect_unix_retry(awareness_hub.path(), 2000);
  if (fd < 0) return ipc::FrameType::kShutdown;
  sock = ipc::FramedSocket(fd);
  if (!sock.send(hello_frame(slot))) return ipc::FrameType::kShutdown;
  ipc::Frame ack;
  while (true) {
    const auto st = sock.recv(ack, 0);
    if (st == ipc::FramedSocket::RecvStatus::kFrame) return ack.type;
    if (st != ipc::FramedSocket::RecvStatus::kTimeout) return ipc::FrameType::kShutdown;
    if (awareness_hub.poll(10) < 0) return ipc::FrameType::kShutdown;
  }
}

// ============================================================= event loop

TEST(EventLoopTest, OneShotTimerFiresOnce) {
  hub::EventLoop loop;
  ASSERT_TRUE(loop.valid());
  int fired = 0;
  loop.add_timer(1'000'000, 0, [&fired] { ++fired; });  // 1ms
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (fired == 0 && std::chrono::steady_clock::now() < deadline) loop.poll(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.timer_count(), 0u) << "one-shot must deregister itself";
  loop.poll(20);
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  hub::EventLoop loop;
  int fired = 0;
  const auto id = loop.add_timer(1'000'000, 0, [&fired] { ++fired; });
  loop.cancel_timer(id);
  EXPECT_EQ(loop.timer_count(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  loop.poll(10);
  EXPECT_EQ(fired, 0);
}

TEST(EventLoopTest, PeriodicTimerFiresRepeatedly) {
  hub::EventLoop loop;
  int fired = 0;
  hub::EventLoop::TimerId id = 0;
  id = loop.add_timer(1'000'000, 1'000'000, [&] {
    if (++fired == 3) loop.cancel_timer(id);  // self-cancel from callback
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (fired < 3 && std::chrono::steady_clock::now() < deadline) loop.poll(10);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(loop.timer_count(), 0u);
}

// The heartbeat-deadline drift regression: a fixed-rate timer's next
// deadline is computed from the *scheduled* deadline, so a stalled
// loop iteration yields catch-up fires on resume instead of silently
// stretching the period. A fixed-delay ("now + interval") wheel would
// fire exactly once here and the liveness window would drift by the
// stall length every time the loop hiccuped.
TEST(EventLoopTest, PeriodicTimerCatchesUpAfterStall) {
  hub::EventLoop loop;
  int fired = 0;
  loop.add_timer(20'000'000, 20'000'000, [&fired] { ++fired; });  // 20ms rate
  loop.poll(0);                                                   // arm
  std::this_thread::sleep_for(std::chrono::milliseconds(110));    // stall ~5 periods
  loop.poll(0);
  EXPECT_GE(fired, 4) << "fixed-rate timer must catch up on missed periods";
}

TEST(EventLoopTest, WakeFromAnotherThreadInterruptsPoll) {
  hub::EventLoop loop;
  std::thread waker([&loop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.wake();
  });
  const auto t0 = std::chrono::steady_clock::now();
  loop.poll(5000);  // would block 5s without the wake
  const auto waited = std::chrono::steady_clock::now() - t0;
  waker.join();
  EXPECT_LT(waited, std::chrono::seconds(2));
}

TEST(EventLoopTest, DeferCloseRemovesFd) {
  hub::EventLoop loop;
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  bool readable = false;
  ASSERT_TRUE(loop.add_fd(sv[0], EPOLLIN, [&](std::uint32_t) {
    readable = true;
    loop.defer_close(sv[0]);  // close from inside the callback
  }));
  EXPECT_EQ(loop.fd_count(), 1u);
  ASSERT_EQ(::write(sv[1], "x", 1), 1);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!readable && std::chrono::steady_clock::now() < deadline) loop.poll(10);
  EXPECT_TRUE(readable);
  EXPECT_EQ(loop.fd_count(), 0u);
  ::close(sv[1]);
}

// ============================================================ connection

TEST(HubConnectionTest, BackpressureCountsOncePerEpisodeThenEvicts) {
  hub::EventLoop loop;
  rt::MetricsRegistry metrics;
  hub::ConnectionCounters counters;
  counters.backpressure = &metrics.counter("hub.backpressure");
  hub::ConnectionLimits limits;
  limits.write_soft_water = 512;
  limits.write_high_water = 8 * 1024;

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Shrink the kernel send buffer so the queue backs up immediately;
  // the peer (sv[1]) never reads.
  const int tiny = 1;
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));

  bool closed = false;
  hub::CloseReason reason = hub::CloseReason::kPeerClosed;
  hub::HubConnection conn(
      loop, sv[0], limits, counters, [](const ipc::Frame&) {},
      [&](hub::CloseReason r) {
        closed = true;
        reason = r;
      });

  ipc::Frame f;
  f.type = ipc::FrameType::kOutputEvent;
  f.event.topic = "out.x";
  f.event.name = "sample";
  f.event.fields["pad"] = std::string(256, 'p');

  int sent = 0;
  while (!closed && sent < 4096) {
    conn.send(f);
    ++sent;
  }
  ASSERT_TRUE(closed) << "unread peer must eventually evict the connection";
  EXPECT_EQ(reason, hub::CloseReason::kBackpressure);
  EXPECT_EQ(metrics.snapshot().counter("hub.backpressure"), 1u)
      << "one episode = one count, not one per queued frame";
  EXPECT_FALSE(conn.send(f)) << "dead connection must refuse frames";
  ::close(sv[1]);
}

// ============================================================= handshake

TEST(HubTest, HandshakeAcceptsKnownSlotAndFlipsGate) {
  hub::HubConfig config;
  config.probe_liveness = false;
  hub::AwarenessHub awareness_hub(config);
  const auto gate = awareness_hub.add_slot("tv0");
  ASSERT_TRUE(awareness_hub.start());
  EXPECT_FALSE(gate->load());

  ipc::FramedSocket sock;
  EXPECT_EQ(handshake(awareness_hub, sock, "tv0"), ipc::FrameType::kHelloAck);
  EXPECT_TRUE(gate->load());
  EXPECT_TRUE(awareness_hub.slot_up("tv0"));
  EXPECT_EQ(awareness_hub.connection_count(), 1u);
  EXPECT_EQ(awareness_hub.metrics().counter("hub.accepted"), 1u);

  // Orderly goodbye: gate drops, no outage is reported.
  ipc::Frame bye;
  bye.type = ipc::FrameType::kShutdown;
  sock.send(bye);
  ASSERT_TRUE(pump_until(awareness_hub, [&] { return awareness_hub.connection_count() == 0; }));
  EXPECT_FALSE(gate->load());
  EXPECT_TRUE(awareness_hub.link_errors().empty());
  EXPECT_EQ(awareness_hub.metrics().counter("hub.outages"), 0u);
  awareness_hub.stop();
}

TEST(HubTest, HandshakeRejectsUnknownAndBusySlots) {
  hub::HubConfig config;
  config.probe_liveness = false;
  hub::AwarenessHub awareness_hub(config);
  awareness_hub.add_slot("tv0");
  ASSERT_TRUE(awareness_hub.start());

  ipc::FramedSocket owner;
  ASSERT_EQ(handshake(awareness_hub, owner, "tv0"), ipc::FrameType::kHelloAck);

  ipc::FramedSocket unknown;
  EXPECT_EQ(handshake(awareness_hub, unknown, "nope"), ipc::FrameType::kShutdown);
  ipc::FramedSocket duplicate;
  EXPECT_EQ(handshake(awareness_hub, duplicate, "tv0"), ipc::FrameType::kShutdown);

  // The rejections must not have disturbed the established link.
  ASSERT_TRUE(pump_until(awareness_hub, [&] { return awareness_hub.connection_count() == 1; }));
  EXPECT_TRUE(awareness_hub.slot_up("tv0"));
  EXPECT_EQ(awareness_hub.metrics().counter("hub.rejected"), 2u);
  awareness_hub.stop();
}

TEST(HubTest, AcceptStormAllSlotsClaimed) {
  constexpr std::size_t kConnections = 64;
  hub::HubConfig config;
  config.probe_liveness = false;
  hub::AwarenessHub awareness_hub(config);
  std::vector<std::shared_ptr<std::atomic<bool>>> gates;
  for (std::size_t k = 0; k < kConnections; ++k) {
    gates.push_back(awareness_hub.add_slot("s" + std::to_string(k)));
  }
  ASSERT_TRUE(awareness_hub.start());

  // Connect and send every kHello *before* the hub runs a single loop
  // iteration: the accept path must drain the whole backlog burst.
  std::vector<ipc::FramedSocket> socks(kConnections);
  for (std::size_t k = 0; k < kConnections; ++k) {
    const int fd = ipc::connect_unix_retry(awareness_hub.path(), 2000);
    ASSERT_GE(fd, 0) << "connect " << k;
    socks[k] = ipc::FramedSocket(fd);
    ASSERT_TRUE(socks[k].send(hello_frame("s" + std::to_string(k))));
  }
  ASSERT_TRUE(pump_until(awareness_hub, [&] {
    return awareness_hub.metrics().counter("hub.accepted") == kConnections;
  }));
  EXPECT_EQ(awareness_hub.connection_count(), kConnections);
  for (std::size_t k = 0; k < kConnections; ++k) {
    EXPECT_TRUE(gates[k]->load()) << "slot s" << k;
    ipc::Frame ack;
    ASSERT_EQ(socks[k].recv(ack, 1000), ipc::FramedSocket::RecvStatus::kFrame);
    EXPECT_EQ(ack.type, ipc::FrameType::kHelloAck);
  }
  EXPECT_EQ(awareness_hub.metrics().counter("hub.accepted"), kConnections);
  for (auto& s : socks) s.close();
  ASSERT_TRUE(pump_until(awareness_hub, [&] { return awareness_hub.connection_count() == 0; }));
  awareness_hub.stop();
}

// ============================================================== liveness

TEST(HubTest, LivenessMissEvictsOnceAndReportsOneOutage) {
  hub::HubConfig config;
  config.probe_liveness = true;
  config.heartbeat_interval_ms = 10;
  config.supervisor.heartbeat_miss_threshold = 2;
  config.supervisor.backoff_initial_ms = 20;
  config.supervisor.backoff_jitter = 0.0;
  hub::AwarenessHub awareness_hub(config);
  const auto gate = awareness_hub.add_slot("tv0");
  ASSERT_TRUE(awareness_hub.start());

  ipc::FramedSocket sock;
  ASSERT_EQ(handshake(awareness_hub, sock, "tv0"), ipc::FrameType::kHelloAck);
  ASSERT_TRUE(gate->load());

  // Never answer a probe: the hub must declare the slot dead after the
  // miss threshold and evict — exactly once, with exactly one report.
  ASSERT_TRUE(pump_until(awareness_hub, [&] { return awareness_hub.connection_count() == 0; }));
  EXPECT_FALSE(gate->load());
  ASSERT_EQ(awareness_hub.link_errors().size(), 1u);
  const auto& report = awareness_hub.link_errors()[0];
  EXPECT_EQ(report.observable, "hub.link/tv0");
  EXPECT_EQ(std::get<std::string>(report.expected), "up");
  EXPECT_EQ(std::get<std::string>(report.observed), "down");
  EXPECT_EQ(awareness_hub.metrics().counter("hub.outages"), 1u);
  EXPECT_GE(awareness_hub.metrics().counter("hub.probes"), 1u);

  // A freshly restarted SUO is picked up immediately: the first
  // reconnect attempt after an outage is free.
  ipc::FramedSocket retry;
  ASSERT_EQ(handshake(awareness_hub, retry, "tv0"), ipc::FrameType::kHelloAck);
  EXPECT_TRUE(gate->load());
  ASSERT_EQ(awareness_hub.link_errors().size(), 1u) << "reconnect is not an outage";
  awareness_hub.stop();
}

// A SUO that dies right after its handshake — before surviving one
// liveness window — is a crash loop, and the supervisor's per-connect
// attempt reset must not hand it a free reconnect every cycle: the hub
// charges consecutive unstable sessions against the capped seeded
// backoff, so the third crash-in-a-row lands behind a real window.
TEST(HubTest, CrashLoopPaysBackoffWindow) {
  hub::HubConfig config;
  config.probe_liveness = false;  // crashes here are abrupt EOFs, not probe deaths
  config.heartbeat_interval_ms = 10;
  config.supervisor.heartbeat_miss_threshold = 2;  // liveness window = 20ms
  config.supervisor.backoff_initial_ms = 40;
  config.supervisor.backoff_jitter = 0.0;  // deterministic window for the test
  hub::AwarenessHub awareness_hub(config);
  const auto gate = awareness_hub.add_slot("tv0");
  ASSERT_TRUE(awareness_hub.start());

  // Crash #1: instant EOF after the handshake. The next attempt is
  // still free (first crash gets the freshly-restarted benefit).
  ipc::FramedSocket s1;
  ASSERT_EQ(handshake(awareness_hub, s1, "tv0"), ipc::FrameType::kHelloAck);
  s1.close();
  ASSERT_TRUE(pump_until(awareness_hub, [&] { return awareness_hub.connection_count() == 0; }));
  EXPECT_EQ(awareness_hub.link_errors().size(), 1u);

  // Crash #2: the second consecutive unstable session arms the window.
  ipc::FramedSocket s2;
  ASSERT_EQ(handshake(awareness_hub, s2, "tv0"), ipc::FrameType::kHelloAck);
  s2.close();
  ASSERT_TRUE(pump_until(awareness_hub, [&] { return awareness_hub.connection_count() == 0; }));
  EXPECT_EQ(awareness_hub.link_errors().size(), 2u);

  // Inside the 40ms window the reconnect is rejected...
  ipc::FramedSocket eager;
  EXPECT_EQ(handshake(awareness_hub, eager, "tv0"), ipc::FrameType::kShutdown);
  EXPECT_FALSE(gate->load());
  EXPECT_GE(awareness_hub.metrics().counter("hub.rejected"), 1u);

  // ...and once it passes the slot accepts again.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ipc::FramedSocket healthy;
  EXPECT_EQ(handshake(awareness_hub, healthy, "tv0"), ipc::FrameType::kHelloAck);
  EXPECT_TRUE(gate->load());
  awareness_hub.stop();
}

// ============================================================= publisher

TEST(HubTest, PublisherStreamsToHorizonAndSaysGoodbye) {
  hub::HubConfig config;
  config.probe_liveness = true;
  config.heartbeat_interval_ms = 10;
  config.namespace_topics = true;
  config.auto_advance = true;
  hub::AwarenessHub awareness_hub(config);

  core::MonitorBuilder builder;
  builder.model(tv::build_tv_spec_model())
      .input_topic("tv0/tv.input")
      .output_topic("tv0/tv.output")
      .comparison_period(rt::msec(50))
      .startup_grace(rt::msec(100));
  builder.threshold("sound_level", 0.0, 3)
      .threshold("screen_state", 0.0, 3)
      .threshold("channel", 0.0, 3)
      .threshold("powered", 0.0, 3);
  awareness_hub.add_monitor("tv0", "tv0", std::move(builder));
  ASSERT_TRUE(awareness_hub.start());

  hub::PublisherConfig pub;
  pub.hub_path = awareness_hub.path();
  pub.name = "tv0";
  pub.horizon = rt::msec(600);
  pub.key_period = rt::msec(100);
  pub.pace_us = 200;  // leave wall time for probes between steps
  hub::PublisherStats stats;
  int rc = -1;
  std::thread suo([&] { rc = hub::run_hub_publisher(pub, &stats); });

  ASSERT_TRUE(pump_until(awareness_hub, [&] {
    return awareness_hub.events_ingested() > 0 && awareness_hub.connection_count() == 0;
  }));
  suo.join();

  EXPECT_EQ(rc, 0) << "publisher must reach its horizon and exit orderly";
  EXPECT_FALSE(stats.rejected);
  EXPECT_FALSE(stats.evicted);
  EXPECT_GT(stats.events_sent, 0u);
  EXPECT_EQ(awareness_hub.events_ingested(), stats.events_sent);
  EXPECT_TRUE(awareness_hub.link_errors().empty()) << "orderly goodbye is not an outage";
  // A faultless TV stream through the hub must not trip the comparator.
  EXPECT_TRUE(awareness_hub.fleet().monitor("tv0").errors().empty());
  awareness_hub.stop();
}

// ============================================================== campaign

// The differential gate for the whole subsystem: the same seeded
// campaign through (a) the in-process bus, (b) one blocking socket per
// monitor, and (c) the epoll hub multiplexing every aspect over real
// AF_UNIX connections into a sharded fleet must agree on every verdict,
// every detection latency and every golden-trace fingerprint. The
// fingerprints filter to comparator./model. counters, so hub.* and
// ipc.* transport metrics are free to differ — semantics are not.
TEST(HubCampaign, HubMatchesInProcessAndIpcVerdictForVerdict) {
  tk::CampaignConfig base;
  base.seed = 77;
  base.scenarios = 20;
  base.draw.aspects = 8;
  base.draw.horizon = rt::msec(400);

  tk::CampaignConfig sp = base;
  sp.executor.ipc = tk::IpcMode::kSocketpair;
  tk::CampaignConfig hb = base;
  hb.executor.ipc = tk::IpcMode::kHub;
  hb.executor.shards = 2;

  const auto in_process = tk::CampaignRunner(base).run();
  const auto socketpair = tk::CampaignRunner(sp).run();
  const auto hub_run = tk::CampaignRunner(hb).run();

  ASSERT_EQ(in_process.results.size(), 20u);
  ASSERT_EQ(socketpair.results.size(), 20u);
  ASSERT_EQ(hub_run.results.size(), 20u);
  for (std::size_t i = 0; i < in_process.results.size(); ++i) {
    const auto& ref = in_process.results[i];
    for (const auto* other : {&socketpair.results[i], &hub_run.results[i]}) {
      EXPECT_EQ(ref.verdict, other->verdict) << ref.name;
      EXPECT_EQ(ref.detection_latency, other->detection_latency) << ref.name;
      EXPECT_EQ(ref.recovered, other->recovered) << ref.name;
      const auto diff = tk::GoldenTrace::diff(ref.trace, other->trace);
      EXPECT_TRUE(diff.identical) << ref.name << ": " << diff.describe();
    }
  }
  EXPECT_EQ(in_process.golden_trace().fingerprint(), socketpair.golden_trace().fingerprint());
  EXPECT_EQ(in_process.golden_trace().fingerprint(), hub_run.golden_trace().fingerprint());
}

TEST(HubCampaign, KillAndRestartThroughHubQuiescesAndCompletes) {
  tk::ScenarioScript script;
  script.name("hub-kill-restart").aspects(2).horizon(rt::msec(500));
  script.every(rt::msec(20), rt::msec(20), rt::msec(480));

  tk::ExecutorConfig config;
  config.ipc = tk::IpcMode::kHub;
  config.suo_down_at = rt::msec(120);
  config.suo_up_at = rt::msec(240);

  tk::ScenarioExecutor executor(config);
  const auto result = executor.run(script);

  EXPECT_EQ(result.link_outages, 1u);
  EXPECT_EQ(result.verdict, tk::Verdict::kTrueNegative);
  EXPECT_EQ(result.errors_on_target + result.errors_off_target, 0u);

  tk::ScenarioExecutor executor2(config);
  const auto replay = executor2.run(script);
  EXPECT_EQ(result.trace.fingerprint(), replay.trace.fingerprint());
}

}  // namespace
