// Tests for the fault-injection campaign harness (src/testkit):
// verdict classification, golden-trace recording/diffing, the
// ScenarioScript DSL, single-scenario execution on both backends, the
// fuzzed 200-scenario detection floor (40 uniform seeds + 160
// coverage-guided mutants), byte-identical report reproducibility, and
// the single-vs-sharded differential — the same campaign must
// fingerprint identically at 1, 2 and 4 shards.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/monitor_builder.hpp"
#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/metrics.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace_log.hpp"
#include "testkit/campaign.hpp"
#include "testkit/fuzz.hpp"
#include "testkit/golden_trace.hpp"
#include "testkit/scenario.hpp"

namespace core = trader::core;
namespace rt = trader::runtime;
namespace sm = trader::statemachine;
namespace tk = trader::testkit;
namespace faults = trader::faults;

// ------------------------------------------------------------------ Verdicts

TEST(Verdict, ClassificationMatrix) {
  using tk::Verdict;
  EXPECT_EQ(tk::classify_verdict(true, 1, 0), Verdict::kDetected);
  EXPECT_EQ(tk::classify_verdict(true, 2, 3), Verdict::kDetected);  // off-target noise ignored
  EXPECT_EQ(tk::classify_verdict(true, 0, 0), Verdict::kMissed);
  EXPECT_EQ(tk::classify_verdict(true, 0, 5), Verdict::kMissed);  // wrong aspect != detected
  EXPECT_EQ(tk::classify_verdict(false, 0, 0), Verdict::kTrueNegative);
  EXPECT_EQ(tk::classify_verdict(false, 1, 0), Verdict::kFalsePositive);
  EXPECT_EQ(tk::classify_verdict(false, 0, 1), Verdict::kFalsePositive);
}

TEST(Verdict, Names) {
  EXPECT_STREQ(tk::to_string(tk::Verdict::kDetected), "detected");
  EXPECT_STREQ(tk::to_string(tk::Verdict::kMissed), "missed");
  EXPECT_STREQ(tk::to_string(tk::Verdict::kFalsePositive), "false-positive");
  EXPECT_STREQ(tk::to_string(tk::Verdict::kTrueNegative), "true-negative");
}

// -------------------------------------------------------------- GoldenTrace

TEST(GoldenTrace, SelfEqualityAndFingerprint) {
  tk::GoldenTrace a;
  a.add(rt::msec(1), "cmd", "aspect0 inc");
  a.add(rt::msec(2), "error", "aspect0 count off by 1");
  tk::GoldenTrace b;
  b.add(rt::msec(1), "cmd", "aspect0 inc");
  b.add(rt::msec(2), "error", "aspect0 count off by 1");

  const auto d = tk::GoldenTrace::diff(a, b);
  EXPECT_TRUE(d.identical);
  EXPECT_EQ(d.describe(), "traces identical");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint().size(), 16u);
  EXPECT_FALSE(a.empty());
}

TEST(GoldenTrace, FirstDivergencePointsAtTheLine) {
  tk::GoldenTrace a;
  tk::GoldenTrace b;
  a.add_line("same 0");
  b.add_line("same 0");
  a.add_line("left 1");
  b.add_line("right 1");
  a.add_line("tail");  // never reached by the diff
  const auto d = tk::GoldenTrace::diff(a, b);
  ASSERT_FALSE(d.identical);
  EXPECT_EQ(d.first_divergence, 1u);
  EXPECT_EQ(d.left, "left 1");
  EXPECT_EQ(d.right, "right 1");
  EXPECT_NE(d.describe().find("line 1"), std::string::npos);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(GoldenTrace, LengthMismatchDivergesAtTheShorterEnd) {
  tk::GoldenTrace a;
  tk::GoldenTrace b;
  a.add_line("x");
  a.add_line("extra");
  b.add_line("x");
  const auto d = tk::GoldenTrace::diff(a, b);
  ASSERT_FALSE(d.identical);
  EXPECT_EQ(d.first_divergence, 1u);
  EXPECT_EQ(d.left, "extra");
  EXPECT_EQ(d.right, "");
  EXPECT_NE(d.describe().find("<end of trace>"), std::string::npos);
}

TEST(GoldenTrace, EmptyTracesAreIdentical) {
  EXPECT_TRUE(tk::GoldenTrace::diff({}, {}).identical);
  EXPECT_EQ(tk::GoldenTrace().fingerprint(), tk::GoldenTrace().fingerprint());
}

TEST(GoldenTrace, TraceLogTapCapturesLiveRecords) {
  rt::TraceLog log(/*capacity=*/2);  // tiny: eviction must not lose taps
  tk::GoldenTrace trace;
  trace.tap(log);
  log.log(rt::msec(1), rt::TraceLevel::kInfo, "comp", "first");
  log.log(rt::msec(2), rt::TraceLevel::kWarning, "comp", "second");
  log.log(rt::msec(3), rt::TraceLevel::kError, "comp", "third");
  log.set_tap(nullptr);
  log.log(rt::msec(4), rt::TraceLevel::kInfo, "comp", "after tap cleared");

  ASSERT_EQ(trace.lines().size(), 3u);  // all three, despite capacity 2
  EXPECT_NE(trace.lines()[0].find("first"), std::string::npos);
  EXPECT_NE(trace.lines()[1].find("WARNING"), std::string::npos);
  EXPECT_NE(trace.lines()[2].find("third"), std::string::npos);
}

TEST(GoldenTrace, ErrorTapObservesWithoutStealingRecovery) {
  rt::Scheduler sched;
  rt::EventBus bus;

  sm::StateMachineDef def("counter");
  const auto s = def.add_state("S");
  def.add_internal(s, "inc", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("n", env.vars.get_int("n") + 1);
    env.emit("count", {{"value", env.vars.get_int("n")}});
  });

  int recoveries = 0;
  core::MonitorBuilder builder(sched, bus);
  builder.model(std::move(def))
      .input_topic("in.t")
      .output_topic("out.t")
      .threshold("count", 0.0, /*max_consecutive=*/2)
      .comparison_period(rt::msec(10))
      .startup_grace(rt::msec(5))
      .on_error([&recoveries](const core::ErrorReport&) { ++recoveries; });
  auto monitor = builder.build();

  tk::GoldenTrace trace;
  monitor->set_error_tap([&trace](const core::ErrorReport& r) {
    trace.add(r.detected_at, "error", r.describe());
  });
  monitor->start();

  rt::Event in;
  in.topic = "in.t";
  in.name = "key";
  in.fields["key"] = std::string("inc");
  bus.publish(in);
  rt::Event out;
  out.topic = "out.t";
  out.name = "count";
  out.fields["value"] = std::int64_t{0};  // model expects 1: deviation
  bus.publish(out);
  sched.run_until(rt::msec(100));
  monitor->stop();

  // The tap saw every report the recovery handler saw — recording the
  // stream did not steal the recovery hook.
  ASSERT_EQ(monitor->errors().size(), 1u);
  EXPECT_EQ(recoveries, 1);
  ASSERT_EQ(trace.lines().size(), 1u);

  tk::GoldenTrace replay;
  replay.capture_errors("t", monitor->errors());
  // add() above used the raw report (no aspect label); check times match.
  EXPECT_EQ(trace.lines()[0].substr(0, trace.lines()[0].find(' ')),
            replay.lines()[0].substr(0, replay.lines()[0].find(' ')));
}

TEST(GoldenTrace, MetricsFingerprintFiltersAndIsStable) {
  rt::MetricsRegistry reg;
  reg.counter("comparator.errors").inc(2);
  reg.counter("model.inputs").inc(9);
  reg.counter("fleet.cross_shard_out").inc(5);  // topology-dependent: must filter out
  reg.gauge("fleet.shards").set(4.0);           // gauges never enter fingerprints
  reg.histogram("lat", {10.0}).record(3.0);     // wall-clock: never enters

  const auto snap = reg.snapshot();
  const auto lines = snap.counter_lines({"comparator.", "model."});
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "comparator.errors=2");
  EXPECT_EQ(lines[1], "model.inputs=9");

  rt::MetricsRegistry other;
  other.counter("comparator.errors").inc(2);
  other.counter("model.inputs").inc(9);
  other.counter("fleet.cross_shard_out").inc(999);  // differs, but filtered
  EXPECT_EQ(snap.fingerprint({"comparator.", "model."}),
            other.snapshot().fingerprint({"comparator.", "model."}));
  EXPECT_NE(snap.fingerprint({}), other.snapshot().fingerprint({}));  // unfiltered sees it

  tk::GoldenTrace trace;
  trace.capture_metrics(snap, {"comparator.", "model."});
  ASSERT_EQ(trace.lines().size(), 2u);
  EXPECT_EQ(trace.lines()[0], "metric comparator.errors=2");
}

// ----------------------------------------------------------- ScenarioScript

TEST(Scenario, EveryExpandsTheCadenceGrid) {
  tk::ScenarioScript script;
  script.aspects(2).every(rt::msec(10), rt::msec(10), rt::msec(30));
  const auto cmds = script.sorted_commands();
  ASSERT_EQ(cmds.size(), 6u);  // 3 instants x 2 aspects
  EXPECT_EQ(cmds[0].at, rt::msec(10));
  EXPECT_EQ(cmds[0].aspect, 0u);
  EXPECT_EQ(cmds[1].at, rt::msec(10));
  EXPECT_EQ(cmds[1].aspect, 1u);
  EXPECT_EQ(cmds[5].at, rt::msec(30));
}

TEST(Scenario, SortedCommandsOrderByTimeThenAspect) {
  tk::ScenarioScript script;
  script.aspects(3).command(rt::msec(20), 1).command(rt::msec(10), 2).command(rt::msec(20), 0);
  const auto cmds = script.sorted_commands();
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_EQ(cmds[0].at, rt::msec(10));
  EXPECT_EQ(cmds[1].aspect, 0u);
  EXPECT_EQ(cmds[2].aspect, 1u);
}

TEST(Scenario, InjectConvenienceTargetsAspectByName) {
  tk::ScenarioScript script;
  script.aspects(4).inject(faults::FaultKind::kCrash, 2, rt::msec(100), rt::msec(40));
  ASSERT_EQ(script.fault_plan().size(), 1u);
  EXPECT_EQ(script.fault_plan()[0].target, "aspect2");
  EXPECT_EQ(script.fault_plan()[0].kind, faults::FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(script.fault_plan()[0].intensity, 1.0);
}

TEST(Scenario, DrawIsDeterministicPerSeed) {
  tk::ScenarioDraw draw;
  rt::Rng a(7);
  rt::Rng b(7);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto sa = tk::draw_scenario(a, i, draw);
    const auto sb = tk::draw_scenario(b, i, draw);
    EXPECT_EQ(sa.name(), sb.name());
    ASSERT_EQ(sa.fault_plan().size(), sb.fault_plan().size());
    if (!sa.fault_plan().empty()) {
      EXPECT_EQ(sa.fault_plan()[0].kind, sb.fault_plan()[0].kind);
      EXPECT_EQ(sa.fault_plan()[0].target, sb.fault_plan()[0].target);
      EXPECT_EQ(sa.fault_plan()[0].activate_at, sb.fault_plan()[0].activate_at);
      // Activation lands on the command cadence, inside the first half.
      EXPECT_EQ(sa.fault_plan()[0].activate_at % draw.cadence, 0);
      EXPECT_GE(sa.fault_plan()[0].activate_at, draw.cadence);
      EXPECT_LE(sa.fault_plan()[0].activate_at, draw.horizon / 2);
    }
  }
}

// --------------------------------------------------------- ScenarioExecutor

namespace {

tk::ScenarioScript scripted(faults::FaultKind kind) {
  tk::ScenarioScript script;
  script.name("unit").aspects(2).horizon(rt::msec(400));
  script.every(rt::msec(20), rt::msec(20), rt::msec(380));
  script.inject(kind, /*target_aspect=*/1, rt::msec(100), rt::msec(80));
  return script;
}

}  // namespace

TEST(Executor, DetectsAnObservableFault) {
  tk::ScenarioExecutor exec;
  const auto r = exec.run(scripted(faults::FaultKind::kStuckComponent));
  EXPECT_TRUE(r.fault_planned);
  EXPECT_TRUE(r.fault_manifested);
  EXPECT_EQ(r.verdict, tk::Verdict::kDetected);
  EXPECT_GT(r.errors_on_target, 0u);
  EXPECT_EQ(r.errors_off_target, 0u);  // the untouched aspect stays clean
  EXPECT_GE(r.first_manifestation, rt::msec(100));
  EXPECT_GT(r.first_detection, r.first_manifestation);
  EXPECT_GT(r.detection_latency, 0);
  EXPECT_FALSE(r.actions.empty());  // recovery ladder engaged
  EXPECT_FALSE(r.trace.empty());
}

TEST(Executor, MissesAnUnobservableFault) {
  // A task overrun perturbs timing, not the counter value: ground truth
  // records the manifestation, the comparator never sees it.
  tk::ScenarioExecutor exec;
  const auto r = exec.run(scripted(faults::FaultKind::kTaskOverrun));
  EXPECT_TRUE(r.fault_manifested);
  EXPECT_EQ(r.verdict, tk::Verdict::kMissed);
  EXPECT_EQ(r.errors_on_target, 0u);
  EXPECT_EQ(r.detection_latency, -1);
}

TEST(Executor, CleanScenarioIsTrueNegative) {
  tk::ScenarioScript script;
  script.name("clean").aspects(2).horizon(rt::msec(400));
  script.every(rt::msec(20), rt::msec(20), rt::msec(380));
  tk::ScenarioExecutor exec;
  const auto r = exec.run(script);
  EXPECT_FALSE(r.fault_planned);
  EXPECT_FALSE(r.fault_manifested);
  EXPECT_EQ(r.verdict, tk::Verdict::kTrueNegative);
  EXPECT_EQ(r.errors_on_target + r.errors_off_target, 0u);
}

TEST(Executor, RecoversViaResync) {
  tk::ScenarioExecutor exec;
  const auto r = exec.run(scripted(faults::FaultKind::kMessageLoss));
  EXPECT_EQ(r.verdict, tk::Verdict::kDetected);
  // Lost increments never come back on their own; only the escalator's
  // resync can re-converge the counter, so recovered proves the loop.
  EXPECT_TRUE(r.recovered);
  EXPECT_FALSE(r.gave_up);
}

TEST(Executor, EveryDetectableKindIsDetected) {
  tk::ScenarioExecutor exec;
  for (const auto kind : tk::campaign_default_kinds()) {
    const auto r = exec.run(scripted(kind));
    ASSERT_TRUE(r.fault_manifested) << faults::to_string(kind);
    if (tk::campaign_detectable(kind)) {
      EXPECT_EQ(r.verdict, tk::Verdict::kDetected) << faults::to_string(kind);
    } else {
      EXPECT_EQ(r.verdict, tk::Verdict::kMissed) << faults::to_string(kind);
    }
  }
}

TEST(Executor, SameScenarioSameTrace) {
  tk::ScenarioExecutor exec;
  const auto a = exec.run(scripted(faults::FaultKind::kMemoryCorruption));
  const auto b = exec.run(scripted(faults::FaultKind::kMemoryCorruption));
  const auto d = tk::GoldenTrace::diff(a.trace, b.trace);
  EXPECT_TRUE(d.identical) << d.describe();
}

// ----------------------------------------------------------- CampaignRunner

namespace {

tk::CampaignConfig mini_campaign(std::size_t shards = 0) {
  tk::CampaignConfig cfg;
  cfg.seed = 2026;
  cfg.scenarios = 50;
  cfg.executor.shards = shards;
  return cfg;
}

}  // namespace

// The detection floor, measured over a *fuzzed* mixed corpus rather
// than the uniform draw: 200 scenarios — 40 uniform seeds plus 160
// coverage-guided mutants (composed faults, attenuated intensities,
// resource eaters, kill-restart windows, command drops). The floor is
// computed over scenarios where a detectable-kind fault actually
// manifested, which is exactly what the uniform 50-scenario floor
// measured, on a far more adversarial population.
TEST(Campaign, FuzzedTwoHundredScenarioDetectionFloor) {
  tk::FuzzConfig cfg;
  cfg.seed = 2026;
  cfg.seed_scenarios = 40;
  cfg.iterations = 160;
  const auto report = tk::FuzzCampaignRunner(cfg).run();
  ASSERT_EQ(report.executions, 200u);

  // Every scenario got exactly one verdict.
  EXPECT_EQ(report.detected + report.missed + report.false_positive + report.true_negative,
            200u);

  // The paper's claim, quantified: detectable faults are overwhelmingly
  // detected — even under composed and degraded scenarios — and no run
  // raises a false alarm.
  EXPECT_GT(report.detectable_manifested, 50u);  // the corpus is not vacuous
  EXPECT_GE(report.detection_floor(), 0.9);
  EXPECT_EQ(report.false_positive, 0u);

  // The old uniform floor still holds as a sanity anchor.
  const auto uniform = tk::CampaignRunner(mini_campaign()).run();
  ASSERT_EQ(uniform.results.size(), 50u);
  EXPECT_GE(uniform.detection_rate_detectable(), 0.9);
  EXPECT_EQ(uniform.count(tk::Verdict::kFalsePositive), 0u);
  std::size_t by_kind_total = 0;
  for (const auto& [kind, ks] : uniform.by_kind) {
    by_kind_total += ks.scenarios;
    EXPECT_EQ(ks.scenarios, ks.detected + ks.missed + ks.false_positive + ks.true_negative)
        << kind;
  }
  EXPECT_EQ(by_kind_total, 50u);
}

TEST(Campaign, ReportIsByteIdenticalAcrossRuns) {
  const auto a = tk::CampaignRunner(mini_campaign()).run();
  const auto b = tk::CampaignRunner(mini_campaign()).run();
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.golden_trace().fingerprint(), b.golden_trace().fingerprint());
  // The JSON embeds the campaign fingerprint, so equality above is not
  // vacuous — and the document carries the headline numbers.
  EXPECT_NE(a.to_json().find(a.golden_trace().fingerprint()), std::string::npos);
  EXPECT_NE(a.to_json().find("detection_rate_detectable"), std::string::npos);
}

TEST(Campaign, DifferentSeedDifferentTrace) {
  auto cfg = mini_campaign();
  cfg.scenarios = 10;
  const auto a = tk::CampaignRunner(cfg).run();
  cfg.seed = 2027;
  const auto b = tk::CampaignRunner(cfg).run();
  EXPECT_NE(a.golden_trace().fingerprint(), b.golden_trace().fingerprint());
}

// ------------------------------------------------ single-vs-sharded differential

TEST(Campaign, DifferentialSingleVsShardedFingerprints) {
  auto cfg = mini_campaign();
  cfg.scenarios = 12;  // full backend matrix: keep each leg small
  const auto single = tk::CampaignRunner(cfg).run();
  const auto fp = single.golden_trace().fingerprint();
  ASSERT_GT(single.count(tk::Verdict::kDetected), 0u);

  for (const std::size_t shards : {1u, 2u, 4u}) {
    auto sharded_cfg = mini_campaign(shards);
    sharded_cfg.scenarios = 12;
    const auto sharded = tk::CampaignRunner(sharded_cfg).run();
    EXPECT_EQ(sharded.golden_trace().fingerprint(), fp) << shards << " shards";
    // Pinpoint the first diverging line if the fingerprints disagree.
    const auto d = tk::GoldenTrace::diff(single.golden_trace(), sharded.golden_trace());
    EXPECT_TRUE(d.identical) << shards << " shards: " << d.describe();
    // Verdict totals must match too (the trace implies it; check anyway).
    EXPECT_EQ(sharded.count(tk::Verdict::kDetected), single.count(tk::Verdict::kDetected));
    EXPECT_EQ(sharded.count(tk::Verdict::kMissed), single.count(tk::Verdict::kMissed));
  }
}

// ------------------------------------------------ legacy-vs-batched differential

// The executor-v2 crown jewel: swapping the model kernel under every
// monitor — legacy per-instance interpreter vs arena-batched shared
// program — must not move a single golden-trace byte, at any shard
// count. Detection times, verdicts, metrics and recovery actions are
// all inside the fingerprint.
TEST(Campaign, DifferentialLegacyVsBatchedExecutorFingerprints) {
  for (const std::size_t shards : {0u, 1u, 2u, 4u, 8u}) {
    auto legacy_cfg = mini_campaign(shards);
    legacy_cfg.scenarios = 8;  // 5 shard counts x 2 engines: keep legs small
    legacy_cfg.executor.engine = tk::ExecutorConfig::ModelEngine::kInterpreted;
    auto batched_cfg = legacy_cfg;
    batched_cfg.executor.engine = tk::ExecutorConfig::ModelEngine::kBatched;

    const auto legacy = tk::CampaignRunner(legacy_cfg).run();
    const auto batched = tk::CampaignRunner(batched_cfg).run();

    EXPECT_EQ(batched.golden_trace().fingerprint(), legacy.golden_trace().fingerprint())
        << shards << " shards";
    const auto d = tk::GoldenTrace::diff(legacy.golden_trace(), batched.golden_trace());
    EXPECT_TRUE(d.identical) << shards << " shards: " << d.describe();
    // The reports differ ONLY in the echoed backend label.
    EXPECT_NE(legacy.to_json().find("+interpreted"), std::string::npos);
    EXPECT_EQ(batched.to_json().find("+interpreted"), std::string::npos);
  }
}

TEST(Campaign, BackendLabelSharedHelper) {
  tk::ExecutorConfig cfg;
  EXPECT_EQ(tk::backend_label(cfg), "single");
  cfg.shards = 4;
  EXPECT_EQ(tk::backend_label(cfg), "sharded(4)");
  cfg.ipc = tk::IpcMode::kHub;
  EXPECT_EQ(tk::backend_label(cfg), "sharded(4)+ipc-hub");
  cfg.engine = tk::ExecutorConfig::ModelEngine::kInterpreted;
  EXPECT_EQ(tk::backend_label(cfg), "sharded(4)+ipc-hub+interpreted");
  // to_string names come from the backend registry — one source.
  EXPECT_STREQ(tk::to_string(tk::IpcMode::kOff), "off");
  EXPECT_STREQ(tk::to_string(tk::IpcMode::kSocketpair), "socketpair");
  EXPECT_STREQ(tk::to_string(tk::IpcMode::kUnix), "unix");
  EXPECT_STREQ(tk::to_string(tk::IpcMode::kHub), "hub");
}
