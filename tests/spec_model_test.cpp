// Validation of the TV specification model (§4.2) and model-to-model
// experiments (§5): the spec model and the independently written
// TvControl/TvSystem must agree on user-perceived behaviour in
// fault-free runs.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/rng.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/checker.hpp"
#include "statemachine/compiled.hpp"
#include "statemachine/machine.hpp"
#include "statemachine/test_script.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace sm = trader::statemachine;
namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace flt = trader::faults;

namespace {

// Track the latest value per observable emitted by a machine.
class ExpectedTable {
 public:
  void absorb(std::vector<sm::ModelOutput> outs) {
    for (auto& o : outs) {
      auto it = o.fields.find("value");
      if (it != o.fields.end()) table_[o.name] = it->second;
    }
  }
  const rt::Value* get(const std::string& name) const {
    auto it = table_.find(name);
    return it != table_.end() ? &it->second : nullptr;
  }

 private:
  std::map<std::string, rt::Value> table_;
};

}  // namespace

TEST(TvSpecModel, PassesStaticChecks) {
  auto def = tv::build_tv_spec_model();
  sm::ModelChecker checker;
  const auto report = checker.check(def);
  for (const auto& issue : report.issues) {
    ADD_FAILURE() << sm::to_string(issue.kind) << " at " << issue.subject << ": "
                  << issue.message;
  }
  EXPECT_TRUE(report.clean());
}

TEST(TvSpecModel, CompilesToFlatTables) {
  auto def = tv::build_tv_spec_model();
  sm::CompiledMachine cm(def);
  EXPECT_EQ(cm.leaf_count(), 5u);  // Off, Video, Dual, Teletext, Menu
}

TEST(TvSpecModel, PowerCycleScript) {
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("power");
  script.expect_state("Off")
      .expect_output("powered")
      .inject("power")
      .expect_state("On.Video")
      .inject("power")
      .expect_state("Off");
  const auto result = script.run(m);
  for (const auto& f : result.failures) ADD_FAILURE() << "step " << f.step_index << ": " << f.message;
  EXPECT_TRUE(result.passed());
}

TEST(TvSpecModel, VolumeAndMuteScript) {
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("volume");
  script.inject("power")
      .inject("volume_up")
      .expect_var("volume", std::int64_t{35})
      .inject("mute")
      .expect_var("muted", true)
      .inject("volume_up")  // unmutes
      .expect_var("muted", false)
      .expect_var("volume", std::int64_t{40});
  EXPECT_TRUE(script.run(m).passed());
}

TEST(TvSpecModel, ScreenInteractionScript) {
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("screens");
  script.inject("power")
      .inject("teletext")
      .expect_state("On.Teletext")
      .inject("dual_screen")
      .expect_state("On.Dual")
      .inject("teletext")
      .expect_state("On.Teletext")
      .inject("back")
      .expect_state("On.Video")
      .inject("menu")
      .expect_state("On.Menu")
      .inject("teletext")  // swallowed by the menu
      .expect_state("On.Menu")
      .inject("menu")
      .expect_state("On.Video");
  EXPECT_TRUE(script.run(m).passed());
}

TEST(TvSpecModel, DigitEntryCommitsTwoDigits) {
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("digits");
  script.inject("power").inject("digit_1").inject("digit_7").expect_var("channel",
                                                                        std::int64_t{17});
  EXPECT_TRUE(script.run(m).passed());
}

TEST(TvSpecModel, SingleDigitCommitsAfterTimeout) {
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("digit-timeout");
  script.inject("power")
      .inject("digit_5")
      .expect_var("channel", std::int64_t{1})
      .advance(rt::msec(1500))
      .expect_var("channel", std::int64_t{5});
  EXPECT_TRUE(script.run(m).passed());
}

TEST(TvSpecModel, DigitTimeoutRestartsPerDigit) {
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("power"), 0);
  m.dispatch(sm::SmEvent::named("digit_2"), 0);
  m.advance_time(rt::msec(1400));  // not yet
  EXPECT_EQ(m.vars().get_int("channel", 1), 1);
  // A second digit commits 2x as a two-digit number immediately.
  m.dispatch(sm::SmEvent::named("digit_9"), rt::msec(1400));
  EXPECT_EQ(m.vars().get_int("channel", 1), 29);
}

TEST(TvSpecModel, ChildLockBlocksAdultTargets) {
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("lock");
  script.inject("power")
      .inject("child_lock")
      .inject("digit_3")
      .inject("digit_5")
      .expect_var("channel", std::int64_t{1})  // blocked
      .inject("digit_1")
      .inject("digit_2")
      .expect_var("channel", std::int64_t{12});
  EXPECT_TRUE(script.run(m).passed());
}

TEST(TvSpecModel, TeletextSwallowsDigits) {
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("ttx-digits");
  script.inject("power")
      .inject("teletext")
      .inject("digit_2")
      .inject("digit_3")
      .expect_var("channel", std::int64_t{1});  // pages, not channels
  EXPECT_TRUE(script.run(m).passed());
}

TEST(TvSpecModel, ZapWrapsAtLineupEdges) {
  tv::TvSpecConfig cfg;
  cfg.channel_count = 5;
  auto def = tv::build_tv_spec_model(cfg);
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("power"), 0);
  m.dispatch(sm::SmEvent::named("channel_down"), 1);
  EXPECT_EQ(m.vars().get_int("channel"), 5);
  m.dispatch(sm::SmEvent::named("channel_up"), 2);
  EXPECT_EQ(m.vars().get_int("channel"), 1);
}

// ----------------------------------------------------- model-to-model (E1)

namespace {

// Drive the spec model and the real TV in lockstep (no transport
// latency, no faults) and compare observables after each settling
// period. This is the §5 "model-to-model experiments" validation.
class LockstepHarness {
 public:
  LockstepHarness()
      : injector_(rt::Rng(123)),
        set_(sched_, bus_, injector_),
        def_(tv::build_tv_spec_model()),
        model_(def_) {
    set_.start();
    model_.start(0);
    expected_.absorb(model_.drain_outputs());
  }

  void press(tv::Key key) {
    set_.press(key);
    model_.advance_time(sched_.now());
    model_.dispatch(sm::SmEvent::named(tv::to_string(key)), sched_.now());
    expected_.absorb(model_.drain_outputs());
  }

  void settle(rt::SimDuration d = rt::msec(100)) {
    sched_.run_for(d);
    model_.advance_time(sched_.now());
    expected_.absorb(model_.drain_outputs());
  }

  // Compare the partial-model observables; returns mismatch description
  // or empty string.
  std::string compare() const {
    struct Pair {
      const char* name;
      rt::Value actual;
    };
    const std::vector<Pair> pairs = {
        {"powered", rt::Value{set_.control().powered()}},
        {"screen_state", rt::Value{set_.screen_output()}},
        {"sound_level", rt::Value{std::int64_t{set_.sound_output()}}},
        {"channel", rt::Value{std::int64_t{set_.displayed_channel()}}},
        {"source", rt::Value{std::string(tv::to_string(set_.av_switch().source()))}},
    };
    for (const auto& p : pairs) {
      const rt::Value* exp = expected_.get(p.name);
      if (exp == nullptr) continue;  // model never spoke about it yet
      if (rt::deviation(*exp, p.actual) > 0.0) {
        return std::string(p.name) + ": expected " + rt::to_string(*exp) + ", actual " +
               rt::to_string(p.actual);
      }
    }
    return {};
  }

  rt::Scheduler sched_;
  rt::EventBus bus_;
  flt::FaultInjector injector_;
  tv::TvSystem set_;
  sm::StateMachineDef def_;
  sm::StateMachine model_;
  ExpectedTable expected_;
};

}  // namespace

TEST(ModelToModel, AgreesOnScriptedScenario) {
  LockstepHarness h;
  const std::vector<tv::Key> scenario = {
      tv::Key::kPower,     tv::Key::kVolumeUp,   tv::Key::kVolumeUp, tv::Key::kMute,
      tv::Key::kVolumeUp,  tv::Key::kChannelUp,  tv::Key::kDigit1,   tv::Key::kDigit7,
      tv::Key::kTeletext,  tv::Key::kChannelUp,  tv::Key::kTeletext, tv::Key::kDualScreen,
      tv::Key::kMenu,      tv::Key::kVolumeDown, tv::Key::kMenu,     tv::Key::kBack,
      tv::Key::kChannelDown, tv::Key::kPower,
  };
  for (const auto key : scenario) {
    h.press(key);
    h.settle(rt::msec(200));
    const std::string mismatch = h.compare();
    EXPECT_TRUE(mismatch.empty()) << "after key " << tv::to_string(key) << ": " << mismatch;
  }
}

class ModelToModelRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelToModelRandom, AgreesOnRandomScenarios) {
  LockstepHarness h;
  rt::Rng rng(GetParam());
  // Keys the partial model covers (sleep/swivel excluded by design; they
  // are modeled as no-ops but their real effects are outside the model's
  // observables anyway).
  const std::vector<tv::Key> alphabet = {
      tv::Key::kPower,    tv::Key::kVolumeUp,   tv::Key::kVolumeDown, tv::Key::kMute,
      tv::Key::kChannelUp, tv::Key::kChannelDown, tv::Key::kTeletext, tv::Key::kDualScreen,
      tv::Key::kMenu,     tv::Key::kBack,       tv::Key::kDigit1,    tv::Key::kDigit2,
      tv::Key::kDigit3,   tv::Key::kChildLock,  tv::Key::kSource,
  };
  h.press(tv::Key::kPower);
  h.settle();
  ASSERT_EQ(h.compare(), "");
  for (int i = 0; i < 60; ++i) {
    const auto key = alphabet[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size() - 1)))];
    h.press(key);
    // Settle past the digit timeout so buffered entry resolves in both.
    h.settle(rt::msec(1600));
    const std::string mismatch = h.compare();
    ASSERT_EQ(mismatch, "") << "step " << i << " key " << tv::to_string(key);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelToModelRandom,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(ModelToModel, KnownFeatureInteractionDiscrepancy) {
  // A genuine spec-vs-implementation discrepancy found by the awareness
  // loop (documented in DESIGN.md): pressing a digit and then entering
  // the menu lets the real control unit commit the pending digit entry
  // on timeout *while inside the menu*, whereas the spec model discards
  // buffered digits on menu entry. The §5 model-to-model experiments
  // exist precisely to surface such feature interactions.
  LockstepHarness h;
  h.press(tv::Key::kPower);
  h.settle();
  h.press(tv::Key::kDigit5);
  h.press(tv::Key::kMenu);
  h.settle(rt::msec(1600));  // digit timeout elapses inside the menu
  EXPECT_EQ(h.set_.displayed_channel(), 5);             // real TV zapped
  const rt::Value* exp = h.expected_.get("channel");
  ASSERT_NE(exp, nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*exp), 1);           // model did not
}
