// Tests for the durable hub (src/journal): the byte codec's fail-closed
// discipline, WAL append/rotate/scan with the full corruption contract
// (torn tails repair, mid-log damage fails closed — a byte-flip and a
// truncation sweep over every offset, mirroring the ipc_test frame
// sweep), checkpoint atomicity/fallback/retention, checkpoint
// roundtrips for every Checkpointable (SFL counters, fleet aggregator,
// recovery orchestrator) pinned by continued-input equality, HubJournal
// recovery fail-closed paths, a fork+SIGKILL durability smoke for
// FsyncPolicy::kEveryRecord, and the end-to-end crash-restart drill:
// a RecoveryCampaign scenario whose hub is killed cold mid-script must
// score byte-identically to an uninterrupted run, at 1/2/4 shards.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "diagnosis/incremental.hpp"
#include "fleetdiag/aggregator.hpp"
#include "gtest/gtest.h"
#include "hub/hub.hpp"
#include "hub/recovery.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "journal/checkpoint.hpp"
#include "journal/codec.hpp"
#include "journal/replay.hpp"
#include "journal/wal.hpp"
#include "runtime/metrics.hpp"
#include "testkit/recovery_campaign.hpp"
#include "testkit/scenario.hpp"

namespace diag = trader::diagnosis;
namespace fd = trader::fleetdiag;
namespace hub = trader::hub;
namespace ipc = trader::ipc;
namespace jn = trader::journal;
namespace rec = trader::recovery;
namespace rt = trader::runtime;
namespace tk = trader::testkit;

namespace {

/// Scratch journal directory, purged and removed on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "journal_test_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path = p;
  }
  ~TempDir() {
    if (path.empty()) return;
    jn::purge_journal_dir(path);
    ::rmdir(path.c_str());
  }
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Append `n` records seq 1..n (alternating types) and close cleanly.
void write_records(const std::string& dir, int n,
                   std::size_t segment_bytes = 1 << 20) {
  jn::WalWriter w;
  ASSERT_TRUE(w.open(dir, 1, segment_bytes, jn::FsyncPolicy::kNone));
  for (int i = 1; i <= n; ++i) {
    const std::string slot = "slot" + std::to_string(i % 3);
    const std::vector<std::uint8_t> payload(static_cast<std::size_t>(i % 7), 0xab);
    ASSERT_EQ(w.append(i % 2 == 0 ? jn::WalRecordType::kTick : jn::WalRecordType::kSlotUp,
                       slot, rt::msec(i), payload.data(), payload.size()),
              static_cast<std::uint64_t>(i));
  }
  w.close();
}

/// Trivial Checkpointable: one u64, versioned.
struct CounterPart : jn::Checkpointable {
  std::string name;
  std::uint32_t version = 1;
  std::uint64_t value = 0;
  bool refuse_load = false;

  CounterPart(std::string n, std::uint64_t v) : name(std::move(n)), value(v) {}
  std::string checkpoint_name() const override { return name; }
  std::uint32_t checkpoint_version() const override { return version; }
  void save_state(jn::Encoder& out) const override { out.u64(value); }
  bool load_state(jn::Decoder& in, std::uint32_t ver) override {
    if (refuse_load || ver != version) return false;
    value = in.u64();
    return in.done();
  }
};

/// ReplaySink that just tallies what recovery dispatched.
struct CountingSink : jn::ReplaySink {
  std::size_t frames = 0, ups = 0, downs = 0, ticks = 0;
  std::vector<rt::SimTime> tick_times;
  void replay_frame(const std::string&, const ipc::Frame&) override { ++frames; }
  void replay_slot_up(const std::string&, std::uint8_t) override { ++ups; }
  void replay_slot_down(const std::string&, bool) override { ++downs; }
  void replay_tick(rt::SimTime now) override {
    ++ticks;
    tick_times.push_back(now);
  }
};

/// One error-evidence spectrum report (same shape recovery_loop_test uses).
void feed_error(fd::FleetAggregator& agg, const std::string& slot, std::uint32_t block,
                int reports = 1) {
  for (int i = 0; i < reports; ++i) {
    agg.ingest(slot, std::vector<ipc::SpectrumStep>{{true, {block}}, {false, {block + 1}}});
  }
}

std::string stats_key(const hub::RecoveryStats& s) {
  std::string out;
  for (std::uint64_t v : {s.sent, s.retries, s.timeouts, s.lost, s.acked_ok, s.acked_fail,
                          s.duplicate_acks, s.suppressed_unconverged, s.suppressed_cooldown,
                          s.suppressed_tokens, s.suppressed_version, s.quarantined, s.give_ups,
                          s.recovered, s.send_failures, s.policy_denied}) {
    out += std::to_string(v) + ",";
  }
  return out;
}

std::string actions_key(const std::vector<hub::RecoveryActionRecord>& actions) {
  std::string out;
  for (const hub::RecoveryActionRecord& a : actions) {
    out += std::to_string(a.at) + "/" + a.slot + "/" +
           std::to_string(static_cast<int>(a.action)) + "/" + a.unit + "/" +
           std::to_string(a.block) + "/" + std::to_string(a.token) + "/" +
           (a.retry ? "r" : "-") + ";";
  }
  return out;
}

}  // namespace

// ============================================================== codec

TEST(JournalCodec, RoundTripsEveryFieldType) {
  jn::Encoder enc;
  enc.u8(0x7f);
  enc.u16(0xbeef);
  enc.u32(0xdeadbeef);
  enc.u64(0x0123456789abcdefULL);
  enc.i64(-42);
  enc.boolean(true);
  enc.boolean(false);
  enc.str("slot/name");
  enc.str("");
  const std::vector<std::uint8_t> bytes = {1, 2, 3};
  enc.blob(bytes);

  jn::Decoder dec(enc.buffer());
  EXPECT_EQ(dec.u8(), 0x7f);
  EXPECT_EQ(dec.u16(), 0xbeef);
  EXPECT_EQ(dec.u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.i64(), -42);
  EXPECT_TRUE(dec.boolean());
  EXPECT_FALSE(dec.boolean());
  EXPECT_EQ(dec.str(), "slot/name");
  EXPECT_EQ(dec.str(), "");
  EXPECT_EQ(dec.blob(), bytes);
  EXPECT_TRUE(dec.done());
}

TEST(JournalCodec, FailsClosedAndStaysFailed) {
  // A string whose announced length overruns the buffer poisons the
  // decoder: every later read yields zero, done() stays false.
  jn::Encoder enc;
  enc.u32(1000);  // str length prefix far beyond the data
  enc.u8(7);
  jn::Decoder dec(enc.buffer());
  EXPECT_EQ(dec.str(), "");
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.u64(), 0u);
  EXPECT_EQ(dec.remaining(), 0u);
  EXPECT_FALSE(dec.done());

  // A boolean that is neither 0 nor 1 is malformed, not truthy.
  jn::Encoder enc2;
  enc2.u8(2);
  jn::Decoder dec2(enc2.buffer());
  (void)dec2.boolean();
  EXPECT_FALSE(dec2.ok());
}

// ================================================================ WAL

TEST(Wal, AppendScanRoundTripPreservesEverything) {
  TempDir dir;
  jn::WalWriter w;
  ASSERT_TRUE(w.open(dir.path, 1, 1 << 20, jn::FsyncPolicy::kBatch));
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  EXPECT_EQ(w.append(jn::WalRecordType::kFrame, "alpha", rt::msec(5), payload.data(),
                     payload.size()),
            1u);
  EXPECT_EQ(w.append(jn::WalRecordType::kSlotDown, "", rt::msec(6), nullptr, 0), 2u);
  EXPECT_TRUE(w.sync());
  w.close();

  std::vector<jn::WalRecord> seen;
  const jn::WalScanResult res = jn::scan_wal(dir.path, 0, false, [&](const jn::WalRecord& r) {
    seen.push_back(r);
    return true;
  });
  ASSERT_EQ(res.status, jn::WalScanStatus::kOk);
  EXPECT_EQ(res.records, 2u);
  EXPECT_EQ(res.last_seq, 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].seq, 1u);
  EXPECT_EQ(seen[0].type, jn::WalRecordType::kFrame);
  EXPECT_EQ(seen[0].time, rt::msec(5));
  EXPECT_EQ(seen[0].slot, "alpha");
  EXPECT_EQ(seen[0].payload, payload);
  EXPECT_EQ(seen[1].seq, 2u);
  EXPECT_EQ(seen[1].slot, "");
  EXPECT_TRUE(seen[1].payload.empty());
}

TEST(Wal, RotatesBySizeAndScansAcrossSegments) {
  TempDir dir;
  // Tiny segments force a rotation every couple of records.
  write_records(dir.path, 50, /*segment_bytes=*/128);
  const std::vector<std::string> segments = jn::wal_segments(dir.path);
  ASSERT_GE(segments.size(), 5u) << "expected size rotation to produce many segments";

  std::uint64_t expect = 1;
  const jn::WalScanResult res = jn::scan_wal(dir.path, 0, false, [&](const jn::WalRecord& r) {
    EXPECT_EQ(r.seq, expect++);
    return true;
  });
  EXPECT_EQ(res.status, jn::WalScanStatus::kOk);
  EXPECT_EQ(res.records, 50u);
  EXPECT_EQ(res.last_seq, 50u);
}

TEST(Wal, AfterSeqSkipsCoveredRecordsAndRejectsGaps) {
  TempDir dir;
  write_records(dir.path, 10);

  // after_seq = 6: only 7..10 are delivered.
  std::vector<std::uint64_t> seqs;
  const jn::WalScanResult res = jn::scan_wal(dir.path, 6, false, [&](const jn::WalRecord& r) {
    seqs.push_back(r.seq);
    return true;
  });
  EXPECT_EQ(res.status, jn::WalScanStatus::kOk);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{7, 8, 9, 10}));

  // A log that STARTS beyond after_seq+1 cannot bridge the gap: the
  // checkpoint claims coverage the WAL cannot corroborate.
  TempDir dir2;
  jn::WalWriter w;
  ASSERT_TRUE(w.open(dir2.path, 5, 1 << 20, jn::FsyncPolicy::kNone));
  ASSERT_EQ(w.append(jn::WalRecordType::kTick, "", 0, nullptr, 0), 5u);
  w.close();
  const jn::WalScanResult gap = jn::scan_wal(dir2.path, 0, false, nullptr);
  EXPECT_EQ(gap.status, jn::WalScanStatus::kCorrupt);
  EXPECT_FALSE(gap.usable());
}

TEST(Wal, TruncationSweepEveryCutIsTornTailOrClean) {
  TempDir dir;
  write_records(dir.path, 6);
  const std::vector<std::string> segments = jn::wal_segments(dir.path);
  ASSERT_EQ(segments.size(), 1u);
  const std::vector<std::uint8_t> full = read_file(segments[0]);
  ASSERT_GT(full.size(), 0u);

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    write_file(segments[0], std::vector<std::uint8_t>(full.begin(),
                                                      full.begin() + static_cast<long>(cut)));
    std::uint64_t count = 0;
    const jn::WalScanResult res =
        jn::scan_wal(dir.path, 0, false, [&](const jn::WalRecord&) {
          ++count;
          return true;
        });
    // Any prefix cut is the crash signature: a clean shorter log or a
    // torn tail — never kCorrupt. The surviving prefix stays readable.
    EXPECT_TRUE(res.usable()) << "cut at " << cut << ": " << res.error;
    EXPECT_EQ(res.records, count) << "cut at " << cut;
    EXPECT_LE(count, 6u);
  }
  write_file(segments[0], full);
}

TEST(Wal, RepairTruncatesTornTailAndWriterResumes) {
  TempDir dir;
  write_records(dir.path, 4);
  const std::vector<std::string> segments = jn::wal_segments(dir.path);
  ASSERT_EQ(segments.size(), 1u);
  std::vector<std::uint8_t> bytes = read_file(segments[0]);
  // Cut the last record short by 3 bytes.
  bytes.resize(bytes.size() - 3);
  write_file(segments[0], bytes);

  const jn::WalScanResult res = jn::scan_wal(dir.path, 0, /*repair_tail=*/true, nullptr);
  EXPECT_EQ(res.status, jn::WalScanStatus::kTornTail);
  EXPECT_EQ(res.last_seq, 3u);
  EXPECT_GT(res.truncated_bytes, 0u);

  // Post-repair the file is physically clean and a resumed writer
  // continues the sequence without a gap.
  EXPECT_EQ(jn::scan_wal(dir.path, 0, false, nullptr).status, jn::WalScanStatus::kOk);
  jn::WalWriter w;
  ASSERT_TRUE(w.open(dir.path, res.last_seq + 1, 1 << 20, jn::FsyncPolicy::kNone));
  EXPECT_EQ(w.append(jn::WalRecordType::kTick, "", 0, nullptr, 0), 4u);
  w.close();
  const jn::WalScanResult resumed = jn::scan_wal(dir.path, 0, false, nullptr);
  EXPECT_EQ(resumed.status, jn::WalScanStatus::kOk);
  EXPECT_EQ(resumed.last_seq, 4u);
}

TEST(Wal, ByteFlipSweepMidLogFailsClosedTailTears) {
  TempDir dir;
  write_records(dir.path, 5);
  const std::vector<std::string> segments = jn::wal_segments(dir.path);
  ASSERT_EQ(segments.size(), 1u);
  const std::vector<std::uint8_t> full = read_file(segments[0]);

  // Find where the last record starts: scan the clean file and count
  // bytes of the first 4 records.
  std::vector<std::uint8_t> lens;
  std::size_t last_record_start = 0;
  {
    std::size_t off = 0;
    int n = 0;
    while (n < 4) {
      std::uint32_t body_len = 0;
      for (int i = 0; i < 4; ++i) {
        body_len |= static_cast<std::uint32_t>(full[off + 8 + static_cast<std::size_t>(i)])
                    << (8 * i);
      }
      off += jn::kWalRecordHeader + body_len;
      ++n;
    }
    last_record_start = off;
  }

  for (std::size_t at = 0; at < full.size(); ++at) {
    std::vector<std::uint8_t> bytes = full;
    bytes[at] ^= 0x40;
    write_file(segments[0], bytes);
    const jn::WalScanResult res = jn::scan_wal(dir.path, 0, false, nullptr);
    if (at < last_record_start) {
      // Damage with a validating record after it: the log lies about
      // history — fail closed, never replay around it.
      EXPECT_EQ(res.status, jn::WalScanStatus::kCorrupt) << "flip at " << at;
    } else {
      // Damage confined to the physically last record: crash signature.
      EXPECT_EQ(res.status, jn::WalScanStatus::kTornTail) << "flip at " << at;
      EXPECT_EQ(res.last_seq, 4u) << "flip at " << at;
    }
  }
  write_file(segments[0], full);
}

TEST(Wal, SequenceGapAcrossSegmentsFailsClosed) {
  TempDir dir;
  // Segment 1 holds 1..3; a second writer opened at 5 leaves a hole.
  {
    jn::WalWriter w;
    ASSERT_TRUE(w.open(dir.path, 1, 1 << 20, jn::FsyncPolicy::kNone));
    for (int i = 1; i <= 3; ++i) {
      ASSERT_EQ(w.append(jn::WalRecordType::kTick, "", rt::msec(i), nullptr, 0),
                static_cast<std::uint64_t>(i));
    }
    w.close();
  }
  {
    jn::WalWriter w;
    ASSERT_TRUE(w.open(dir.path, 5, 1 << 20, jn::FsyncPolicy::kNone));
    ASSERT_EQ(w.append(jn::WalRecordType::kTick, "", rt::msec(5), nullptr, 0), 5u);
    w.close();
  }
  const jn::WalScanResult res = jn::scan_wal(dir.path, 0, false, nullptr);
  EXPECT_EQ(res.status, jn::WalScanStatus::kCorrupt);
  EXPECT_NE(res.error.find("expected first seq"), std::string::npos) << res.error;
}

TEST(Wal, RetirementDropsCoveredSegmentsNeverTheLast) {
  TempDir dir;
  write_records(dir.path, 40, /*segment_bytes=*/128);
  const std::vector<std::string> before = jn::wal_segments(dir.path);
  ASSERT_GE(before.size(), 4u);

  // Nothing covered: nothing retired.
  EXPECT_EQ(jn::retire_wal_segments(dir.path, 0), 0u);

  // Everything covered: every segment but the active one goes.
  const std::size_t removed = jn::retire_wal_segments(dir.path, 40);
  EXPECT_EQ(removed, before.size() - 1);
  ASSERT_EQ(jn::wal_segments(dir.path).size(), 1u);

  // The partial-coverage contract: a segment is deleted only when the
  // NEXT segment starts at or before covered+1 (no record loss, ever).
  TempDir dir2;
  write_records(dir2.path, 40, /*segment_bytes=*/128);
  const std::vector<std::string> segs2 = jn::wal_segments(dir2.path);
  jn::retire_wal_segments(dir2.path, 7);
  const jn::WalScanResult res = jn::scan_wal(dir2.path, 7, false, nullptr);
  EXPECT_TRUE(res.usable());
  EXPECT_EQ(res.last_seq, 40u);
  EXPECT_LE(jn::wal_segments(dir2.path).size(), segs2.size());
}

// ========================================================= checkpoints

TEST(Checkpoint, WriteLoadRoundTripAndRetention) {
  TempDir dir;
  jn::CheckpointStore store(dir.path, /*retain=*/2);
  CounterPart a("alpha", 11), b("beta", 22);
  const std::vector<jn::Checkpointable*> parts = {&a, &b};
  std::string error;
  ASSERT_TRUE(store.write(10, parts, &error)) << error;
  a.value = 111;
  b.value = 222;
  ASSERT_TRUE(store.write(20, parts, &error)) << error;
  ASSERT_TRUE(store.write(30, parts, &error)) << error;

  // Retention keeps the newest two snapshots.
  EXPECT_EQ(store.available(), (std::vector<std::uint64_t>{20, 30}));

  a.value = 0;
  b.value = 0;
  std::uint64_t seq = 0;
  ASSERT_TRUE(store.load_latest(parts, &seq, &error)) << error;
  EXPECT_EQ(seq, 30u);
  EXPECT_EQ(a.value, 111u);
  EXPECT_EQ(b.value, 222u);
}

TEST(Checkpoint, NoSnapshotIsFreshStartNotAnError) {
  TempDir dir;
  jn::CheckpointStore store(dir.path, 2);
  CounterPart a("alpha", 5);
  const std::vector<jn::Checkpointable*> parts = {&a};
  std::uint64_t seq = 99;
  std::string error = "preset";
  EXPECT_FALSE(store.load_latest(parts, &seq, &error));
  EXPECT_TRUE(error.empty()) << "absence is not corruption";
}

TEST(Checkpoint, CorruptContainerFallsBackSectionFailureFailsClosed) {
  TempDir dir;
  jn::CheckpointStore store(dir.path, 4);
  CounterPart a("alpha", 7);
  const std::vector<jn::Checkpointable*> parts = {&a};
  std::string error;
  ASSERT_TRUE(store.write(10, parts, &error)) << error;
  a.value = 77;
  ASSERT_TRUE(store.write(20, parts, &error)) << error;

  // Flip a byte in the NEWEST snapshot: container checksum rejects it
  // and the loader falls back to the older one.
  const std::string newest = dir.path + "/ckpt-00000000000000000020.bin";
  std::vector<std::uint8_t> bytes = read_file(newest);
  ASSERT_GT(bytes.size(), 20u);
  bytes[bytes.size() / 2] ^= 0xff;
  write_file(newest, bytes);
  a.value = 0;
  std::uint64_t seq = 0;
  ASSERT_TRUE(store.load_latest(parts, &seq, &error)) << error;
  EXPECT_EQ(seq, 10u);
  EXPECT_EQ(a.value, 7u);

  // A checksum-VALID snapshot whose section refuses to load is a
  // software mismatch: the whole recovery fails closed, no fallback.
  TempDir dir2;
  jn::CheckpointStore store2(dir2.path, 4);
  CounterPart c("gamma", 9);
  const std::vector<jn::Checkpointable*> parts2 = {&c};
  ASSERT_TRUE(store2.write(5, parts2, &error)) << error;
  c.refuse_load = true;
  std::uint64_t seq2 = 0;
  std::string error2;
  EXPECT_FALSE(store2.load_latest(parts2, &seq2, &error2));
  EXPECT_FALSE(error2.empty());
}

TEST(Checkpoint, LeftoverTmpFileIsIgnored) {
  TempDir dir;
  jn::CheckpointStore store(dir.path, 2);
  CounterPart a("alpha", 3);
  const std::vector<jn::Checkpointable*> parts = {&a};
  std::string error;
  ASSERT_TRUE(store.write(10, parts, &error)) << error;
  // A crash mid-write leaves a .tmp: neither loaded nor counted.
  write_file(dir.path + "/ckpt-00000000000000000099.tmp", {1, 2, 3});
  a.value = 0;
  std::uint64_t seq = 0;
  ASSERT_TRUE(store.load_latest(parts, &seq, &error)) << error;
  EXPECT_EQ(seq, 10u);
  EXPECT_EQ(a.value, 3u);
}

// ===================================== checkpointable state round trips

TEST(CheckpointState, SflCountsRoundTripThenDivergenceFreeContinuation) {
  diag::IncrementalSflCounts live;
  live.add({1, 5, 9}, true);
  live.add({2, 5}, false);
  live.add({5, 9}, true);

  jn::Encoder enc;
  live.save(enc);
  diag::IncrementalSflCounts restored;
  restored.add({42}, true);  // dirty instance: load must fully overwrite
  jn::Decoder dec(enc.buffer());
  ASSERT_TRUE(restored.load(dec));
  EXPECT_TRUE(dec.done());

  // Same state now, and — the durable-hub property — same state after
  // identical further input.
  for (diag::IncrementalSflCounts* c : {&live, &restored}) c->add({5, 7}, true);
  const diag::DiagnosisReport a = live.report();
  const diag::DiagnosisReport b = restored.report();
  ASSERT_EQ(a.ranking.size(), b.ranking.size());
  for (std::size_t i = 0; i < a.ranking.size(); ++i) {
    EXPECT_EQ(a.ranking[i].block, b.ranking[i].block);
    EXPECT_DOUBLE_EQ(a.ranking[i].score, b.ranking[i].score);
  }
  EXPECT_EQ(live.steps(), restored.steps());
  EXPECT_EQ(live.touched_blocks(), restored.touched_blocks());

  // Truncated state fails closed and leaves the instance empty.
  diag::IncrementalSflCounts broken;
  jn::Decoder short_dec(enc.buffer().data(), enc.buffer().size() / 2);
  EXPECT_FALSE(broken.load(short_dec));
  EXPECT_EQ(broken.steps(), 0u);
}

TEST(CheckpointState, AggregatorRoundTripKeepsRankingsAndChurnHistory) {
  fd::AggregatorConfig cfg{10, diag::Coefficient::kOchiai, 1};
  fd::FleetAggregator live(cfg);
  feed_error(live, "s0", 5, 3);
  feed_error(live, "s1", 9, 2);

  jn::Encoder enc;
  live.save_state(enc);
  fd::FleetAggregator restored(cfg);
  feed_error(restored, "junk", 1);  // load must fully overwrite
  jn::Decoder dec(enc.buffer());
  ASSERT_TRUE(restored.load_state(dec, live.checkpoint_version()));

  EXPECT_EQ(restored.slots(), live.slots());
  EXPECT_EQ(restored.reports_ingested(), live.reports_ingested());
  EXPECT_EQ(restored.steps_ingested(), live.steps_ingested());
  EXPECT_EQ(restored.ranking_churn(), live.ranking_churn());

  // Cached rankings were re-derived, not re-counted as churn.
  const auto top_live = live.top_suspects("s0");
  const auto top_restored = restored.top_suspects("s0");
  ASSERT_EQ(top_live.size(), top_restored.size());
  for (std::size_t i = 0; i < top_live.size(); ++i) {
    EXPECT_EQ(top_live[i].block, top_restored[i].block);
    EXPECT_DOUBLE_EQ(top_live[i].score, top_restored[i].score);
  }

  // Continued identical input keeps both worlds identical (health holds
  // the convergence-gate inputs the orchestrator reads).
  feed_error(live, "s0", 5);
  feed_error(restored, "s0", 5);
  const fd::SlotHealth ha = live.health("s0");
  const fd::SlotHealth hb = restored.health("s0");
  EXPECT_EQ(ha.reports, hb.reports);
  EXPECT_EQ(ha.error_steps, hb.error_steps);
  EXPECT_EQ(ha.churn, hb.churn);
  EXPECT_EQ(ha.top_block, hb.top_block);

  // Wrong version fails closed.
  jn::Decoder dec2(enc.buffer());
  fd::FleetAggregator v2(cfg);
  EXPECT_FALSE(v2.load_state(dec2, 999));
}

TEST(CheckpointState, OrchestratorRoundTripContinuesLadderIdentically) {
  // Drive a live orchestrator mid-ladder, snapshot it, restore into a
  // fresh instance, then continue BOTH with identical input: actions
  // and stats must stay equal — ladder position, cooldowns, token
  // bucket and idempotency tokens all survived.
  hub::RecoveryConfig cfg;
  cfg.enabled = true;
  cfg.stable_reports = 2;
  cfg.token_capacity = 4;
  cfg.token_refill_every = rt::msec(100);
  cfg.cooldown = rt::msec(100);
  cfg.cooldown_jitter = 0;
  cfg.ack_timeout = rt::msec(50);
  cfg.max_retries = 1;
  cfg.flap_threshold = 3;
  cfg.success_reports = 2;
  cfg.escalation.failures_per_level = 1;
  cfg.escalation.window = rt::sec(60);

  fd::AggregatorConfig acfg{10, diag::Coefficient::kOchiai, 1};
  fd::FleetAggregator agg_live(acfg);
  hub::RecoveryOrchestrator live(cfg, agg_live);
  std::vector<ipc::Frame> live_cmds;
  live.set_send([&](const std::string&, const ipc::Frame& f) {
    live_cmds.push_back(f);
    return true;
  });
  live.set_component_of([](std::size_t b) { return "comp" + std::to_string(b); });

  live.slot_up("s0", ipc::kProtocolVersion);
  feed_error(agg_live, "s0", 5);
  live.tick(rt::msec(1));
  feed_error(agg_live, "s0", 5, 2);
  live.tick(rt::msec(10));  // first action (kResync) goes out
  ASSERT_EQ(live_cmds.size(), 1u);
  {
    ipc::Frame ack;
    ack.type = ipc::FrameType::kRecoverAck;
    ack.action = live_cmds[0].action;
    ack.token = live_cmds[0].token;
    ack.unit = live_cmds[0].unit;
    ack.ok = true;
    live.on_ack("s0", ack);
  }
  feed_error(agg_live, "s0", 5);  // repair did not take: mid-ladder now

  // Snapshot both halves of the diagnosis->action pipeline.
  jn::Encoder agg_enc, orch_enc;
  agg_live.save_state(agg_enc);
  live.save_state(orch_enc);

  fd::FleetAggregator agg_restored(acfg);
  hub::RecoveryOrchestrator restored(cfg, agg_restored);
  std::vector<ipc::Frame> restored_cmds;
  restored.set_send([&](const std::string&, const ipc::Frame& f) {
    restored_cmds.push_back(f);
    return true;
  });
  restored.set_component_of([](std::size_t b) { return "comp" + std::to_string(b); });
  jn::Decoder agg_dec(agg_enc.buffer());
  ASSERT_TRUE(agg_restored.load_state(agg_dec, agg_live.checkpoint_version()));
  jn::Decoder orch_dec(orch_enc.buffer());
  ASSERT_TRUE(restored.load_state(orch_dec, live.checkpoint_version()));

  EXPECT_EQ(stats_key(restored.stats()), stats_key(live.stats()));
  EXPECT_EQ(actions_key(restored.actions()), actions_key(live.actions()));

  // Continue both worlds identically: next action must be the SAME
  // ladder rung with the SAME idempotency token at the SAME time.
  const auto advance = [](fd::FleetAggregator& agg, hub::RecoveryOrchestrator& orch) {
    feed_error(agg, "s0", 5);
    orch.tick(rt::msec(250));
    feed_error(agg, "s0", 5);
    orch.tick(rt::msec(400));
  };
  advance(agg_live, live);
  advance(agg_restored, restored);
  ASSERT_EQ(live_cmds.size(), restored_cmds.size() + 1)
      << "restored world missed the pre-snapshot command only";
  const ipc::Frame& l = live_cmds.back();
  const ipc::Frame& r = restored_cmds.back();
  EXPECT_EQ(l.action, r.action);
  EXPECT_EQ(l.action, static_cast<std::uint8_t>(rec::RecoveryAction::kRestartUnit));
  EXPECT_EQ(l.token, r.token);
  EXPECT_EQ(l.unit, r.unit);
  EXPECT_EQ(l.block, r.block);
  EXPECT_EQ(stats_key(restored.stats()), stats_key(live.stats()));
  EXPECT_EQ(actions_key(restored.actions()), actions_key(live.actions()));
}

// ========================================================== HubJournal

TEST(HubJournal, RecoverEmptyDirIsFreshStartAndArmsWriter) {
  TempDir dir;
  jn::JournalConfig cfg;
  cfg.enabled = true;
  cfg.dir = dir.path;
  jn::HubJournal journal(cfg, nullptr);
  CountingSink sink;
  const jn::JournalRecoveryInfo info = journal.recover({}, sink);
  EXPECT_TRUE(info.ok);
  EXPECT_TRUE(info.attempted);
  EXPECT_FALSE(info.from_checkpoint);
  EXPECT_EQ(info.replayed_records, 0u);
  EXPECT_TRUE(journal.active());
  journal.append_tick(rt::msec(1));
  EXPECT_EQ(journal.last_seq(), 1u);
}

TEST(HubJournal, ReplaysTailAfterCheckpointThroughSink) {
  TempDir dir;
  jn::JournalConfig cfg;
  cfg.enabled = true;
  cfg.dir = dir.path;
  cfg.checkpoint_every_records = 0;  // only explicit checkpoints
  CounterPart part("part", 1);
  const std::vector<jn::Checkpointable*> parts = {&part};

  // Session 1: two ticks, checkpoint, two more ticks, crash.
  {
    jn::HubJournal journal(cfg, nullptr);
    CountingSink sink;
    ASSERT_TRUE(journal.recover(parts, sink).ok);
    journal.append_tick(rt::msec(1));
    journal.append_tick(rt::msec(2));
    part.value = 42;
    ASSERT_TRUE(journal.checkpoint_now(parts));
    journal.append_tick(rt::msec(3));
    journal.append_tick(rt::msec(4));
    journal.on_batch_end(parts);  // kBatch fsync
    journal.abandon();
  }

  // Session 2: checkpoint restores, only the tail replays.
  part.value = 0;
  jn::HubJournal journal(cfg, nullptr);
  CountingSink sink;
  const jn::JournalRecoveryInfo info = journal.recover(parts, sink);
  ASSERT_TRUE(info.ok) << info.error;
  EXPECT_TRUE(info.from_checkpoint);
  EXPECT_EQ(info.checkpoint_seq, 2u);
  EXPECT_EQ(part.value, 42u);
  EXPECT_EQ(info.replayed_records, 2u);
  EXPECT_EQ(sink.ticks, 2u);
  EXPECT_EQ(sink.tick_times, (std::vector<rt::SimTime>{rt::msec(3), rt::msec(4)}));
  // The writer resumes exactly after the last journaled record.
  journal.append_tick(rt::msec(5));
  EXPECT_EQ(journal.last_seq(), 5u);
}

TEST(HubJournal, MidLogCorruptionFailsRecoveryClosed) {
  TempDir dir;
  jn::JournalConfig cfg;
  cfg.enabled = true;
  cfg.dir = dir.path;
  {
    jn::HubJournal journal(cfg, nullptr);
    CountingSink sink;
    ASSERT_TRUE(journal.recover({}, sink).ok);
    journal.append_tick(rt::msec(1));
    journal.append_tick(rt::msec(2));
    journal.append_tick(rt::msec(3));
    journal.on_batch_end({});
    journal.abandon();
  }
  // Flip a byte in the FIRST record (valid records follow): kCorrupt.
  const std::vector<std::string> segments = jn::wal_segments(dir.path);
  ASSERT_EQ(segments.size(), 1u);
  std::vector<std::uint8_t> bytes = read_file(segments[0]);
  bytes[jn::kWalRecordHeader + 2] ^= 0x01;
  write_file(segments[0], bytes);

  jn::HubJournal journal(cfg, nullptr);
  CountingSink sink;
  const jn::JournalRecoveryInfo info = journal.recover({}, sink);
  EXPECT_FALSE(info.ok);
  EXPECT_EQ(info.wal_status, jn::WalScanStatus::kCorrupt);
  EXPECT_FALSE(journal.active()) << "a failed recovery must not arm the writer";
  journal.append_tick(rt::msec(9));  // ignored, not a crash
  EXPECT_EQ(journal.wal_stats().records, 0u);
}

TEST(HubJournal, UndecodableFramePayloadFailsRecoveryClosed) {
  TempDir dir;
  // A checksum-valid WAL record whose payload is not a decodable wire
  // frame: the WAL layer accepts it, the dispatch layer must refuse.
  {
    jn::WalWriter w;
    ASSERT_TRUE(w.open(dir.path, 1, 1 << 20, jn::FsyncPolicy::kNone));
    const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0x00};
    ASSERT_EQ(w.append(jn::WalRecordType::kFrame, "s0", rt::msec(1), garbage.data(),
                       garbage.size()),
              1u);
    w.close();
  }
  jn::JournalConfig cfg;
  cfg.enabled = true;
  cfg.dir = dir.path;
  jn::HubJournal journal(cfg, nullptr);
  CountingSink sink;
  const jn::JournalRecoveryInfo info = journal.recover({}, sink);
  EXPECT_FALSE(info.ok);
  EXPECT_NE(info.error.find("undecodable"), std::string::npos) << info.error;
  EXPECT_EQ(sink.frames, 0u);
}

TEST(HubJournal, CheckpointRetiresCoveredSegments) {
  TempDir dir;
  jn::JournalConfig cfg;
  cfg.enabled = true;
  cfg.dir = dir.path;
  cfg.segment_bytes = 128;  // rotate fast
  cfg.checkpoint_every_records = 0;
  jn::HubJournal journal(cfg, nullptr);
  CountingSink sink;
  ASSERT_TRUE(journal.recover({}, sink).ok);
  for (int i = 0; i < 40; ++i) journal.append_tick(rt::msec(i));
  ASSERT_GE(jn::wal_segments(dir.path).size(), 4u);
  ASSERT_TRUE(journal.checkpoint_now({}));
  // Everything up to last_seq is covered: only the active segment stays.
  EXPECT_EQ(jn::wal_segments(dir.path).size(), 1u);
  EXPECT_EQ(journal.checkpoint_stats().written, 1u);
}

// =============================================== fork + SIGKILL smoke

TEST(HubJournal, EveryRecordFsyncSurvivesSigkill) {
  TempDir dir;
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: append with the strongest policy, reporting each acked
    // sequence over the pipe, until killed.
    ::close(pipefd[0]);
    jn::WalWriter w;
    if (!w.open(dir.path, 1, 1 << 20, jn::FsyncPolicy::kEveryRecord)) ::_exit(2);
    for (std::uint64_t i = 1; i <= 100000; ++i) {
      const std::vector<std::uint8_t> payload(32, static_cast<std::uint8_t>(i));
      if (w.append(jn::WalRecordType::kFrame, "s", static_cast<rt::SimTime>(i),
                   payload.data(), payload.size()) != i) {
        ::_exit(3);
      }
      if (::write(pipefd[1], &i, sizeof i) != sizeof i) ::_exit(0);
    }
    ::_exit(0);
  }
  ::close(pipefd[1]);
  std::uint64_t acked = 0, got = 0;
  while (acked < 200 && ::read(pipefd[0], &got, sizeof got) == sizeof got) acked = got;
  ASSERT_GE(acked, 200u) << "child died before enough appends";
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ::close(pipefd[0]);

  // Every append acked before the kill was fsynced before the ack: the
  // scan must deliver at least that prefix (a torn final record from
  // the in-flight append is fine — that's what repair is for).
  const jn::WalScanResult res = jn::scan_wal(dir.path, 0, /*repair_tail=*/true, nullptr);
  EXPECT_TRUE(res.usable()) << res.error;
  EXPECT_GE(res.last_seq, acked);
}

// ============================================ end-to-end crash restart

TEST(JournalCampaign, CrashRestartScoresByteIdenticalToGolden) {
  // The acceptance surface: a recovery campaign whose hub is SIGKILLed
  // (simulate_crash: no sync, no checkpoint, no goodbyes) mid-scenario
  // and restarted from its journal must produce the byte-identical
  // report of an uninterrupted run — rankings, ladder, repair times,
  // everything in the canonical JSON.
  tk::RecoveryCampaignConfig cfg;
  cfg.scenarios = 2;
  cfg.seed = 101;
  const std::string golden = tk::RecoveryCampaign(cfg).run().to_json();

  TempDir root;
  tk::RecoveryCampaignConfig crash_cfg = cfg;
  crash_cfg.journal.enabled = true;
  crash_cfg.journal_root = root.path;
  crash_cfg.crash_at_command = 30;
  const std::string crashed = tk::RecoveryCampaign(crash_cfg).run().to_json();
  EXPECT_EQ(crashed, golden);

  // And the restart point must not matter either.
  crash_cfg.crash_at_command = 55;
  EXPECT_EQ(tk::RecoveryCampaign(crash_cfg).run().to_json(), golden);
}

TEST(JournalCampaign, CrashRestartIsShardInvariant) {
  tk::RecoveryCampaignConfig cfg;
  cfg.scenarios = 1;
  cfg.seed = 77;
  TempDir root;
  cfg.journal.enabled = true;
  cfg.journal_root = root.path;
  cfg.crash_at_command = 40;

  cfg.shards = 1;
  const std::string one = tk::RecoveryCampaign(cfg).run().to_json();
  cfg.shards = 2;
  const std::string two = tk::RecoveryCampaign(cfg).run().to_json();
  cfg.shards = 4;
  const std::string four = tk::RecoveryCampaign(cfg).run().to_json();
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);

  // The crash drill must match the journal-disabled golden at any
  // shard count too.
  tk::RecoveryCampaignConfig plain = cfg;
  plain.journal = trader::journal::JournalConfig{};
  plain.crash_at_command = SIZE_MAX;
  plain.shards = 1;
  EXPECT_EQ(tk::RecoveryCampaign(plain).run().to_json(), one);
}

TEST(JournalHub, CleanStopCheckpointsAndRestartRestoresState) {
  // Hub-level durability without the campaign: ingest diagnosis
  // evidence over a real socket, stop cleanly (checkpoint), restart on
  // the same dir and observe identical diagnosis state with no WAL
  // tail replay.
  TempDir dir;
  hub::HubConfig cfg;
  cfg.probe_liveness = false;
  cfg.diag.refresh_every = 1;
  cfg.journal.enabled = true;
  cfg.journal.dir = dir.path;

  std::uint64_t reports_before = 0;
  std::uint64_t events_before = 0;
  {
    hub::AwarenessHub h(cfg);
    h.add_slot("s0");
    ASSERT_TRUE(h.start());
    // Loopback publisher: reuse the campaign-side framing via a raw
    // socket handshake.
    const int fd = trader::ipc::connect_unix_retry(h.path(), 2000);
    ASSERT_GE(fd, 0);
    ipc::FramedSocket sock{fd};
    ipc::Frame hello;
    hello.type = ipc::FrameType::kHello;
    hello.detail = "s0";
    ASSERT_TRUE(sock.send(hello));
    ipc::Frame ack;
    for (;;) {
      const auto st = sock.recv(ack, 0);
      if (st == ipc::FramedSocket::RecvStatus::kFrame) break;
      ASSERT_EQ(st, ipc::FramedSocket::RecvStatus::kTimeout);
      ASSERT_GE(h.poll(10), 0);
    }
    ASSERT_EQ(ack.type, ipc::FrameType::kHelloAck);

    std::uint32_t seq = 0;
    for (int i = 0; i < 5; ++i) {
      ipc::Frame f;
      f.type = ipc::FrameType::kSpectrum;
      f.seq = ++seq;
      f.block_count = 64;
      f.spectra.push_back({true, {7}});
      f.spectra.push_back({false, {8}});
      ASSERT_TRUE(sock.send(f));
    }
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (h.diagnosis().health("s0").reports < 5) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      ASSERT_GE(h.poll(10), 0);
    }
    reports_before = h.diagnosis().health("s0").reports;
    events_before = h.events_ingested();
    h.stop();  // clean stop = checkpoint
  }

  hub::AwarenessHub h2(cfg);
  h2.add_slot("s0");
  ASSERT_TRUE(h2.start());
  const jn::JournalRecoveryInfo& info = h2.journal_recovery();
  EXPECT_TRUE(info.ok) << info.error;
  EXPECT_TRUE(info.from_checkpoint);
  EXPECT_EQ(info.replayed_records, 0u) << "clean stop leaves no WAL tail";
  EXPECT_EQ(h2.diagnosis().health("s0").reports, reports_before);
  EXPECT_EQ(h2.events_ingested(), events_before);
  const auto top = h2.diagnosis().top_suspects("s0");
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].block, 7u);
  // The restored slot is down (no socket survived) but reconnectable.
  EXPECT_FALSE(h2.slot_up("s0"));
  h2.stop();
}

TEST(JournalHub, CorruptJournalRefusesToStart) {
  TempDir dir;
  hub::HubConfig cfg;
  cfg.probe_liveness = false;
  cfg.recovery.enabled = true;  // actuation ticks populate the WAL
  cfg.journal.enabled = true;
  cfg.journal.dir = dir.path;
  {
    hub::AwarenessHub h(cfg);
    h.add_slot("s0");
    ASSERT_TRUE(h.start());
    for (int i = 0; i < 3; ++i) ASSERT_GE(h.poll(0), 0);
    h.simulate_crash();
  }
  // Corrupt the WAL mid-log: the restarted hub must fail closed.
  const std::vector<std::string> segments = jn::wal_segments(dir.path);
  ASSERT_FALSE(segments.empty());
  std::vector<std::uint8_t> bytes = read_file(segments[0]);
  ASSERT_GT(bytes.size(), jn::kWalRecordHeader + 4);
  bytes[jn::kWalRecordHeader + 2] ^= 0x01;
  write_file(segments[0], bytes);

  hub::AwarenessHub h2(cfg);
  h2.add_slot("s0");
  EXPECT_FALSE(h2.start()) << "a lying journal must not serve guessed state";
  EXPECT_FALSE(h2.journal_recovery().ok);
}
