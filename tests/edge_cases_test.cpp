// Edge-case and run-time-reconfiguration coverage across modules: the
// corners that the main suites don't reach.
#include <gtest/gtest.h>

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "faults/injector.hpp"
#include "recovery/managers.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/compiled.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace rt = trader::runtime;
namespace sm = trader::statemachine;
namespace tv = trader::tv;
namespace core = trader::core;
namespace rec = trader::recovery;
namespace flt = trader::faults;

// ---------------------------------------------------------- runtime corners

TEST(EdgeScheduler, RunUntilOnEmptyQueueAdvancesTime) {
  rt::Scheduler sched;
  sched.run_until(5000);
  EXPECT_EQ(sched.now(), 5000);
  sched.run_until(100);  // going backwards is a no-op on now()
  EXPECT_EQ(sched.now(), 5000);
}

TEST(EdgeScheduler, NegativeDelayClampsToNow) {
  rt::Scheduler sched;
  sched.run_until(100);
  rt::SimTime fired = -1;
  sched.schedule_after(-50, [&] { fired = sched.now(); });
  sched.run_all();
  EXPECT_EQ(fired, 100);
}

TEST(EdgeBus, UnsubscribeDuringDeliveryIsSafe) {
  rt::EventBus bus;
  rt::Subscription sub;
  int calls = 0;
  sub = bus.subscribe("t", [&](const rt::Event&) {
    ++calls;
    bus.unsubscribe(sub);  // self-removal mid-delivery
  });
  rt::Event ev;
  ev.topic = "t";
  bus.publish(ev);
  bus.publish(ev);
  EXPECT_EQ(calls, 1);
}

TEST(EdgeChannel, ZeroLatencyDeliversViaScheduler) {
  rt::Scheduler sched;
  int delivered = 0;
  rt::ChannelConfig cfg;
  cfg.base_latency = 0;
  rt::LatencyChannel ch(sched, rt::Rng(1), cfg, [&](const rt::Event&) { ++delivered; });
  rt::Event ev;
  ch.send(ev);
  EXPECT_EQ(delivered, 0);  // still asynchronous
  sched.run_all();
  EXPECT_EQ(delivered, 1);
}

// ------------------------------------------------------- statemachine corners

TEST(EdgeMachine, EmptyMachineIsInert) {
  sm::StateMachineDef def("empty");
  sm::StateMachine m(def);
  m.start(0);
  EXPECT_FALSE(m.started());
  EXPECT_FALSE(m.dispatch(sm::SmEvent::named("x"), 1));
  EXPECT_EQ(m.advance_time(1000), 0);
}

TEST(EdgeMachine, CompiledNextDeadlineBeforeStart) {
  sm::StateMachineDef def("d");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_timed(a, b, 100);
  sm::CompiledMachine cm(def);
  EXPECT_EQ(cm.next_deadline(), -1);
  cm.start(50);
  EXPECT_EQ(cm.next_deadline(), 150);
}

TEST(EdgeMachine, TransitionFromCompositeExitsAllDescendants) {
  sm::StateMachineDef def("m");
  std::vector<std::string> exits;
  const auto top = def.add_state("Top");
  const auto mid = def.add_state("Mid", top);
  const auto leaf = def.add_state("Leaf", mid);
  const auto other = def.add_state("Other");
  (void)leaf;
  def.on_exit(leaf, [&](sm::ActionEnv&) { exits.push_back("leaf"); });
  def.on_exit(mid, [&](sm::ActionEnv&) { exits.push_back("mid"); });
  def.on_exit(top, [&](sm::ActionEnv&) { exits.push_back("top"); });
  def.add_transition(top, other, "go");
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("go"), 1);
  EXPECT_EQ(exits, (std::vector<std::string>{"leaf", "mid", "top"}));
  EXPECT_TRUE(m.in("Other"));
}

TEST(EdgeMachine, HistoryClearedByReset) {
  sm::StateMachineDef def("m");
  const auto on = def.add_state("On");
  def.add_state("A", on);
  const auto b = def.add_state("B", on);
  const auto off = def.add_state("Off");
  def.set_history(on, true);
  def.add_transition(def.find_state("A"), b, "next");
  def.add_transition(on, off, "off");
  def.add_transition(off, on, "on");
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("next"), 1);
  m.dispatch(sm::SmEvent::named("off"), 2);
  m.reset();
  m.start(3);
  EXPECT_TRUE(m.in("A"));  // history gone after reset
}

// --------------------------------------------------------------- TV corners

TEST(EdgeTv, VolumeAtRailsStillConsistent) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(1));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(200));
  for (int i = 0; i < 30; ++i) set.press(tv::Key::kVolumeUp);
  EXPECT_EQ(set.control().volume(), 100);
  EXPECT_EQ(set.audio().volume(), 100);
  for (int i = 0; i < 30; ++i) set.press(tv::Key::kVolumeDown);
  EXPECT_EQ(set.sound_output(), 0);
  set.press(tv::Key::kVolumeUp);
  EXPECT_EQ(set.sound_output(), 5);
}

TEST(EdgeTv, DigitEntryAcrossScreenSwitchTimesOutInTeletext) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(1));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(200));
  set.press(tv::Key::kDigit3);     // pending channel digit
  set.press(tv::Key::kTeletext);   // switch before timeout
  sched.run_for(rt::sec(2));       // timeout elapses inside teletext
  // Real control discards incomplete entries while in teletext.
  EXPECT_EQ(set.displayed_channel(), 1);
}

TEST(EdgeTv, MuteAtZeroVolumeKeepsSilence) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(1));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  for (int i = 0; i < 10; ++i) set.press(tv::Key::kVolumeDown);
  EXPECT_EQ(set.sound_output(), 0);
  set.press(tv::Key::kMute);
  EXPECT_EQ(set.sound_output(), 0);
  set.press(tv::Key::kMute);
  EXPECT_EQ(set.sound_output(), 0);  // still zero volume underneath
}

TEST(EdgeTv, SleepTimerSurvivesScreenChanges) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(1));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  set.press(tv::Key::kSleep);  // 15 min
  set.press(tv::Key::kTeletext);
  set.press(tv::Key::kBack);
  sched.run_for(rt::sec(15 * 60 + 1));
  EXPECT_FALSE(set.control().powered());
  EXPECT_EQ(set.screen_output(), "off");
}

// ---------------------------------------------- run-time reconfiguration

TEST(EdgeMonitor, ObservableConfigChangesTakeEffectLive) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(1));
  tv::TvSystem set(sched, bus, injector);
  core::ObservableConfig oc;
  oc.name = "sound_level";
  oc.max_consecutive = 3;
  auto monitor = core::MonitorBuilder(sched, bus)
                     .model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
                     .comparison_period(rt::msec(20))
                     .startup_grace(rt::msec(100))
                     .observe(oc)
                     .build();
  set.start();
  monitor->start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(300));

  // Raise the threshold at run time: a one-step volume divergence is now
  // tolerated (adaptive monitoring — the §5 light/heavy flexibility).
  oc.threshold = 10.0;
  monitor->configuration().set_observable(oc);
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", sched.now(),
                                   rt::msec(50), 1.0, {}});
  set.press(tv::Key::kVolumeUp);  // lost: deviation 5 <= threshold 10
  sched.run_for(rt::sec(1));
  EXPECT_TRUE(monitor->errors().empty());

  // Tighten it again: the persisting divergence is now reported.
  oc.threshold = 0.0;
  monitor->configuration().set_observable(oc);
  sched.run_for(rt::sec(1));
  EXPECT_FALSE(monitor->errors().empty());
}

// ------------------------------------------------------------ recovery corners

TEST(EdgeRecovery, FailureDuringRestartIsIdempotent) {
  rt::Scheduler sched;
  rec::CommunicationManager comm(sched);
  rec::RecoveryManager mgr(sched, comm, rec::RecoveryPolicy::kRestartUnit);
  rec::RecoverableUnit u("u", rt::msec(100));
  u.checkpoint();
  comm.register_unit(&u);
  mgr.notify_failure("u", sched.now());
  sched.run_for(rt::msec(50));
  // A second failure notification while the first restart is pending.
  mgr.notify_failure("u", sched.now());
  sched.run_for(rt::msec(200));
  EXPECT_TRUE(u.running());
  EXPECT_GE(u.restarts(), 1u);
}

TEST(EdgeRecovery, QuarantineFlushStopsIfUnitDiesAgain) {
  rt::Scheduler sched;
  rec::CommunicationManager comm(sched);
  rec::RecoverableUnit u("u", rt::msec(10));
  int processed = 0;
  u.set_handler([&](rec::RecoverableUnit& self, const rt::Event&) {
    ++processed;
    if (processed == 1) self.kill(0);  // dies while draining the queue
  });
  u.checkpoint();
  comm.register_unit(&u);
  u.kill(0);
  rt::Event ev;
  comm.send("u", ev);
  comm.send("u", ev);
  comm.send("u", ev);
  u.complete_restart(10);
  comm.flush("u");
  EXPECT_EQ(processed, 1);
  EXPECT_EQ(comm.pending("u"), 2u);  // remaining messages still safe
}
