// Tests for the extension features: real-time response monitoring,
// monitor fleets, scenario record/replay, recovery escalation,
// component-level diagnosis, and DOT export — plus the full closed-loop
// integration (detect -> record -> replay+diagnose -> recover).
#include <gtest/gtest.h>

#include <memory>

#include "core/fleet.hpp"
#include "core/model_impl.hpp"
#include "detection/response_time.hpp"
#include "diagnosis/component_ranker.hpp"
#include "diagnosis/synthetic_program.hpp"
#include "faults/injector.hpp"
#include "observation/scenario.hpp"
#include "recovery/escalation.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/dot_export.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace rt = trader::runtime;
namespace sm = trader::statemachine;
namespace tv = trader::tv;
namespace core = trader::core;
namespace det = trader::detection;
namespace diag = trader::diagnosis;
namespace obs = trader::observation;
namespace rec = trader::recovery;
namespace flt = trader::faults;

// --------------------------------------------------------- ResponseTime (RT)

namespace {

struct RtFixture {
  RtFixture() : injector(rt::Rng(3)), set(sched, bus, injector), monitor(sched, bus, log) {
    for (auto& rule : det::tv_response_rules(rt::msec(150))) monitor.add_rule(rule);
    set.start();
    monitor.start();
    set.press(tv::Key::kPower);
    sched.run_for(rt::msec(300));
  }

  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector;
  tv::TvSystem set;
  det::DetectionLog log;
  det::ResponseTimeMonitor monitor{sched, bus, log};
};

}  // namespace

TEST(ResponseTime, HealthyTvMeetsAllDeadlines) {
  RtFixture f;
  for (tv::Key k : {tv::Key::kVolumeUp, tv::Key::kVolumeDown, tv::Key::kMute, tv::Key::kMute,
                    tv::Key::kTeletext, tv::Key::kTeletext}) {
    f.set.press(k);
    f.sched.run_for(rt::msec(300));
  }
  EXPECT_EQ(f.log.count("timeliness"), 0u);
  EXPECT_GE(f.monitor.stats("volume-key-response").responses, 4u);
}

TEST(ResponseTime, StuckAudioViolatesVolumeDeadline) {
  RtFixture f;
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "audio", f.sched.now(), 0,
                                     1.0, {}});
  f.set.press(tv::Key::kVolumeUp);
  f.sched.run_for(rt::msec(500));
  EXPECT_GE(f.log.count("timeliness"), 1u);
  EXPECT_EQ(f.log.all()[0].subject, "volume-key-response");
  EXPECT_GE(f.monitor.stats("volume-key-response").violations, 1u);
}

TEST(ResponseTime, CrashedTeletextViolatesScreenDeadline) {
  RtFixture f;
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "teletext", f.sched.now(), 0, 1.0,
                                     {}});
  f.sched.run_for(rt::msec(100));  // crash latches
  f.set.press(tv::Key::kTeletext);
  f.sched.run_for(rt::msec(500));
  // Control still flips its screen belief... but the engine never shows,
  // so the user-visible screen_state output never changes.
  EXPECT_GE(f.monitor.stats("teletext-key-response").violations, 1u);
}

TEST(ResponseTime, ResponseTimesAreRecorded) {
  RtFixture f;
  f.set.press(tv::Key::kVolumeUp);
  f.sched.run_for(rt::msec(300));
  ASSERT_GE(f.monitor.response_times().count(), 1u);
  EXPECT_LT(f.monitor.response_times().percentile(100), 150.0);
}

TEST(ResponseTime, StopSilencesMonitor) {
  RtFixture f;
  f.monitor.stop();
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "audio", f.sched.now(), 0,
                                     1.0, {}});
  f.set.press(tv::Key::kVolumeUp);
  f.sched.run_for(rt::msec(500));
  EXPECT_EQ(f.log.count("timeliness"), 0u);
}

TEST(ResponseTime, UnknownRuleStatsThrow) {
  rt::Scheduler sched;
  rt::EventBus bus;
  det::DetectionLog log;
  det::ResponseTimeMonitor monitor(sched, bus, log);
  EXPECT_THROW(monitor.stats("ghost"), std::out_of_range);
}

// -------------------------------------------------------------- MonitorFleet

namespace {

// Tiny aspect models: one watches only sound, one only screen state.
sm::StateMachineDef sound_aspect_model() {
  tv::TvSpecConfig cfg;
  return tv::build_tv_spec_model(cfg);  // reuse; configured observables select the aspect
}

core::MonitorBuilder aspect_monitor(const std::vector<const char*>& observables) {
  core::MonitorBuilder builder;
  builder.model(std::make_unique<core::InterpretedModel>(sound_aspect_model()))
      .comparison_period(rt::msec(20))
      .startup_grace(rt::msec(100));
  for (const char* name : observables) {
    builder.threshold(name, 0.0, /*max_consecutive=*/3);
  }
  return builder;
}

}  // namespace

TEST(Fleet, AspectsDetectTheirOwnFaults) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(3));
  tv::TvSystem set(sched, bus, injector);

  core::MonitorFleet fleet(sched, bus);
  fleet.add_monitor("sound", aspect_monitor({"sound_level"}));
  fleet.add_monitor("screen", aspect_monitor({"screen_state"}));
  EXPECT_EQ(fleet.size(), 2u);

  std::vector<std::string> recovered_aspects;
  fleet.set_recovery_handler([&](const core::AspectError& err) {
    recovered_aspects.push_back(err.aspect);
  });

  set.start();
  fleet.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(300));

  // Sound fault -> only the sound monitor fires.
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", sched.now(),
                                   rt::msec(50), 1.0, {}});
  set.press(tv::Key::kVolumeUp);
  sched.run_for(rt::sec(1));
  EXPECT_EQ(fleet.error_count("sound"), 1u);
  EXPECT_EQ(fleet.error_count("screen"), 0u);

  // Screen fault -> only the screen monitor fires.
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.teletext", sched.now(),
                                   rt::msec(50), 1.0, {}});
  set.press(tv::Key::kTeletext);  // show lost: screen stays video
  sched.run_for(rt::sec(1));
  EXPECT_EQ(fleet.error_count("screen"), 1u);
  EXPECT_EQ(fleet.error_count("sound"), 1u);

  ASSERT_EQ(recovered_aspects.size(), 2u);
  EXPECT_EQ(recovered_aspects[0], "sound");
  EXPECT_EQ(recovered_aspects[1], "screen");
}

TEST(Fleet, MonitorLookup) {
  rt::Scheduler sched;
  rt::EventBus bus;
  core::MonitorFleet fleet(sched, bus);
  fleet.add_monitor("a", aspect_monitor({"sound_level"}));
  EXPECT_NO_THROW(fleet.monitor("a"));
  EXPECT_THROW(fleet.monitor("zzz"), std::out_of_range);
}

// ----------------------------------------------------------- ScenarioRecorder

TEST(Scenario, RecordsOnlyWhileStarted) {
  rt::Scheduler sched;
  rt::EventBus bus;
  obs::ScenarioRecorder recorder(sched, bus, "tv.input");
  rt::Event ev;
  ev.topic = "tv.input";
  bus.publish(ev);  // before start: ignored
  recorder.start();
  bus.publish(ev);
  recorder.stop();
  bus.publish(ev);
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(Scenario, ReplayPreservesRelativeTiming) {
  rt::Scheduler sched;
  rt::EventBus bus;
  obs::ScenarioRecorder recorder(sched, bus, "t");
  recorder.start();
  rt::Event ev;
  ev.topic = "t";
  sched.run_until(100);
  ev.fields["n"] = std::int64_t{1};
  bus.publish(ev);
  sched.run_until(350);
  ev.fields["n"] = std::int64_t{2};
  bus.publish(ev);
  recorder.stop();

  rt::Scheduler replay_sched;
  std::vector<std::pair<std::int64_t, rt::SimTime>> seen;
  recorder.replay(replay_sched, [&](const rt::Event& e) {
    seen.emplace_back(e.int_field("n"), replay_sched.now());
  });
  replay_sched.run_all();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, 1);
  EXPECT_EQ(seen[1].second - seen[0].second, 250);  // original gap preserved
}

TEST(Scenario, ReplayedKeySessionReproducesTvState) {
  // Record a live session...
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(3));
  tv::TvSystem set(sched, bus, injector);
  obs::ScenarioRecorder recorder(sched, bus, "tv.input");
  recorder.start();
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(300));
  set.press(tv::Key::kVolumeUp);
  sched.run_for(rt::msec(300));
  set.enter_channel(17);
  sched.run_for(rt::msec(300));
  set.press(tv::Key::kTeletext);
  sched.run_for(rt::msec(300));
  recorder.stop();

  // ... and replay it into a fresh set: same user-visible end state.
  rt::Scheduler sched2;
  rt::EventBus bus2;
  flt::FaultInjector injector2(rt::Rng(3));
  tv::TvSystem set2(sched2, bus2, injector2);
  set2.start();
  recorder.replay(sched2, [&](const rt::Event& ev) {
    const auto key = tv::key_from_string(ev.str_field("key"));
    ASSERT_TRUE(key.has_value());
    set2.press(*key);
  });
  sched2.run_for(rt::sec(3));
  EXPECT_EQ(set2.screen_output(), set.screen_output());
  EXPECT_EQ(set2.sound_output(), set.sound_output());
  EXPECT_EQ(set2.displayed_channel(), set.displayed_channel());
}

// ---------------------------------------------------------- RecoveryEscalator

TEST(Escalation, ClimbsTheLadder) {
  rec::EscalationConfig cfg;
  cfg.failures_per_level = 2;
  cfg.window = rt::sec(100);
  rec::RecoveryEscalator esc(cfg);
  EXPECT_EQ(esc.next_action("u", rt::sec(1)), rec::RecoveryAction::kResync);
  EXPECT_EQ(esc.next_action("u", rt::sec(2)), rec::RecoveryAction::kResync);
  EXPECT_EQ(esc.next_action("u", rt::sec(3)), rec::RecoveryAction::kRestartUnit);
  EXPECT_EQ(esc.next_action("u", rt::sec(4)), rec::RecoveryAction::kRestartUnit);
  EXPECT_EQ(esc.next_action("u", rt::sec(5)), rec::RecoveryAction::kRestartDependents);
  EXPECT_EQ(esc.next_action("u", rt::sec(6)), rec::RecoveryAction::kRestartDependents);
  EXPECT_EQ(esc.next_action("u", rt::sec(7)), rec::RecoveryAction::kFullRestart);
  EXPECT_EQ(esc.next_action("u", rt::sec(8)), rec::RecoveryAction::kFullRestart);
  EXPECT_EQ(esc.next_action("u", rt::sec(9)), rec::RecoveryAction::kGiveUp);
  EXPECT_EQ(esc.give_ups(), 1u);
}

TEST(Escalation, WindowExpiryDecaysLevel) {
  rec::EscalationConfig cfg;
  cfg.failures_per_level = 1;
  cfg.window = rt::sec(10);
  rec::RecoveryEscalator esc(cfg);
  EXPECT_EQ(esc.next_action("u", rt::sec(1)), rec::RecoveryAction::kResync);
  EXPECT_EQ(esc.next_action("u", rt::sec(2)), rec::RecoveryAction::kRestartUnit);
  // Much later: old failures outside the window are forgotten.
  EXPECT_EQ(esc.next_action("u", rt::sec(60)), rec::RecoveryAction::kResync);
}

TEST(Escalation, SuccessResetsUnit) {
  rec::RecoveryEscalator esc;
  esc.next_action("u", rt::sec(1));
  esc.next_action("u", rt::sec(2));
  esc.report_success("u");
  EXPECT_EQ(esc.next_action("u", rt::sec(3)), rec::RecoveryAction::kResync);
}

TEST(Escalation, UnitsAreIndependent) {
  rec::EscalationConfig cfg;
  cfg.failures_per_level = 1;
  rec::RecoveryEscalator esc(cfg);
  EXPECT_EQ(esc.next_action("a", rt::sec(1)), rec::RecoveryAction::kResync);
  EXPECT_EQ(esc.next_action("a", rt::sec(2)), rec::RecoveryAction::kRestartUnit);
  EXPECT_EQ(esc.next_action("b", rt::sec(3)), rec::RecoveryAction::kResync);
}

TEST(Escalation, ActionNames) {
  EXPECT_STREQ(rec::to_string(rec::RecoveryAction::kResync), "resync");
  EXPECT_STREQ(rec::to_string(rec::RecoveryAction::kGiveUp), "give-up");
}

// --------------------------------------------------------- ComponentRanker

TEST(ComponentRanker, AggregatesToFaultyFeature) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = 6000;
  cfg.feature_count = 12;
  cfg.seed = 5;
  diag::SyntheticProgram prog(cfg);
  const std::size_t per_feature = prog.feature_end(0) - prog.feature_begin(0);
  prog.set_fault_in_feature(4, static_cast<std::size_t>(per_feature * 0.8));

  trader::observation::BlockCoverageRecorder cov(prog.block_count());
  std::vector<std::size_t> scenario;
  for (int i = 0; i < 30; ++i) scenario.push_back(static_cast<std::size_t>(i % 8));
  const auto errors = prog.run_scenario(scenario, cov);
  diag::SflRanker ranker;
  const auto report = ranker.rank(cov, errors);

  const auto components = diag::ComponentRanker::rank(
      report,
      [&prog](std::size_t block) {
        const std::size_t f = prog.feature_of(block);
        return f == static_cast<std::size_t>(-1) ? std::string("infra")
                                                 : "feature" + std::to_string(f);
      });
  ASSERT_FALSE(components.empty());
  EXPECT_EQ(components[0].component, "feature4");
  EXPECT_EQ(diag::ComponentRanker::rank_of(components, "feature4"), 1u);
  EXPECT_GT(diag::ComponentRanker::rank_of(components, "feature7"), 1u);
}

TEST(ComponentRanker, EmptyMappingSkipsBlocks) {
  diag::DiagnosisReport report;
  report.ranking = {{0, 0.9}, {1, 0.5}};
  const auto components = diag::ComponentRanker::rank(
      report, [](std::size_t block) { return block == 0 ? "c" : ""; });
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].component, "c");
  EXPECT_EQ(components[0].blocks, 1u);
}

TEST(ComponentRanker, RankOfAbsentComponent) {
  EXPECT_EQ(diag::ComponentRanker::rank_of({}, "x"), 1u);
}

// -------------------------------------------------------------------- to_dot

TEST(DotExport, RendersStatesTransitionsAndHierarchy) {
  auto def = tv::build_tv_spec_model();
  const std::string dot = sm::to_dot(def);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);  // composite On
  EXPECT_NE(dot.find("label=\"Teletext\""), std::string::npos);
  EXPECT_NE(dot.find("volume_up"), std::string::npos);
  EXPECT_NE(dot.find("after(1500ms)"), std::string::npos);  // digit timeout
  EXPECT_NE(dot.find("/internal"), std::string::npos);
}

TEST(DotExport, MarksGuardsAndCompletions) {
  sm::StateMachineDef def("g");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_completion(a, b, [](const sm::Context&, const sm::SmEvent&) { return true; });
  const std::string dot = sm::to_dot(def);
  EXPECT_NE(dot.find("<done> [g]"), std::string::npos);
}

// --------------------------------------------- closed-loop integration (Fig. 1)

TEST(ClosedLoop, DetectRecordReplayDiagnoseRecover) {
  // The complete Fig. 1 loop: an awareness monitor detects a failure
  // during live use; the recorded scenario is replayed against an
  // instrumented fresh instance to collect spectra; SFL + component
  // aggregation names the faulty feature; the recovery escalator decides
  // an action and the component is repaired.
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(3));
  tv::TvSystem set(sched, bus, injector);

  core::MonitorBuilder builder(sched, bus);
  builder.model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
      .comparison_period(rt::msec(20))
      .startup_grace(rt::msec(100));
  for (const char* name : {"sound_level", "screen_state"}) {
    builder.threshold(name, 0.0, /*max_consecutive=*/3);
  }
  auto monitor = builder.build();
  obs::ScenarioRecorder recorder(sched, bus, "tv.input");

  recorder.start();
  set.start();
  monitor->start();

  // Live use; the audio command channel is silently lossy (the fault).
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", rt::msec(600),
                                   rt::msec(300), 1.0, {}});
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(400));
  set.press(tv::Key::kChannelUp);
  sched.run_for(rt::msec(300));
  set.press(tv::Key::kVolumeUp);  // at ~0.9s: lost -> divergence
  sched.run_for(rt::msec(600));
  set.press(tv::Key::kMute);
  sched.run_for(rt::msec(600));
  recorder.stop();

  // 1. Detection happened.
  ASSERT_FALSE(monitor->errors().empty());
  EXPECT_EQ(monitor->errors()[0].observable, "sound_level");

  // 2. Replay the recorded scenario against a fresh instrumented set;
  //    per key press, record control-block coverage and whether the
  //    sound observable diverged (the error vector).
  rt::Scheduler sched2;
  rt::EventBus bus2;
  flt::FaultInjector injector2(rt::Rng(3));
  injector2.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", rt::msec(600),
                                    rt::msec(300), 1.0, {}});
  tv::TvSystem set2(sched2, bus2, injector2);
  trader::observation::BlockCoverageRecorder coverage(tv::kControlBlockCount);
  set2.control_mut().set_block_hook([&](int b) { coverage.hit(static_cast<std::size_t>(b)); });
  set2.start();

  std::vector<bool> errors;
  std::vector<rt::Event> inputs;
  for (const auto& rec_ev : recorder.events()) inputs.push_back(rec_ev.event);
  rt::SimTime at = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto key = tv::key_from_string(inputs[i].str_field("key"));
    ASSERT_TRUE(key.has_value());
    // Honour original timing so the time-windowed fault hits the same press.
    at = recorder.events()[i].at;
    sched2.run_until(at);
    set2.press(*key);
    sched2.run_for(rt::msec(150));
    coverage.end_step();
    errors.push_back(set2.control().expected_sound_level() != set2.sound_output());
  }
  ASSERT_EQ(errors.size(), 4u);
  EXPECT_TRUE(errors[2]);  // the lost volume press diverged

  // 3. Diagnose: block-level SFL then component aggregation.
  diag::SflRanker ranker;
  const auto report = ranker.rank(coverage, errors);
  auto component_of = [](std::size_t block) -> std::string {
    switch (block) {
      case tv::kBlkVolumeUp:
      case tv::kBlkVolumeDown:
      case tv::kBlkUnmuteOnVolume:
      case tv::kBlkMuteToggle:
        return "audio-path";
      case tv::kBlkTtxEnter:
      case tv::kBlkTtxExit:
        return "teletext-path";
      case tv::kBlkChannelUp:
      case tv::kBlkChannelDown:
      case tv::kBlkDigitCommit:
        return "tuner-path";
      default:
        return "infra";
    }
  };
  const auto components = diag::ComponentRanker::rank(report, component_of);
  ASSERT_FALSE(components.empty());
  EXPECT_EQ(components[0].component, "audio-path");

  // 4. Recover per the escalator's advice.
  rec::RecoveryEscalator escalator;
  const auto action = escalator.next_action("audio", sched.now());
  EXPECT_EQ(action, rec::RecoveryAction::kResync);
  set.restart_component("audio");  // resync implementation
  sched.run_for(rt::msec(100));
  EXPECT_EQ(set.sound_output(), set.control().expected_sound_level());
}
