// Tests for impact-aware recovery (Fig. 1: recovery decides "based on
// … the expected impact on the user") and multi-fault diagnosis.
#include <gtest/gtest.h>

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "diagnosis/spectrum.hpp"
#include "diagnosis/synthetic_program.hpp"
#include "faults/injector.hpp"
#include "observation/coverage.hpp"
#include "perception/impact.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace per = trader::perception;
namespace rt = trader::runtime;
namespace core = trader::core;
namespace tv = trader::tv;
namespace flt = trader::faults;
namespace diag = trader::diagnosis;
namespace obs = trader::observation;

namespace {

core::ErrorReport make_error(const std::string& observable, rt::Value expected,
                             rt::Value observed, double deviation,
                             rt::SimDuration episode = rt::sec(10)) {
  core::ErrorReport err;
  err.observable = observable;
  err.expected = std::move(expected);
  err.observed = std::move(observed);
  err.deviation = deviation;
  err.consecutive = 3;
  err.first_deviation_at = rt::sec(100);
  err.detected_at = rt::sec(100) + episode;
  return err;
}

}  // namespace

TEST(Impact, SoundLossIsImmediate) {
  auto assessor = per::tv_impact_assessor();
  // Expected 40, observed 0: the sound is gone — a large fraction of
  // full scale on a high-importance, product-attributed function.
  const auto a = assessor.assess(
      make_error("sound_level", rt::Value{std::int64_t{40}}, rt::Value{std::int64_t{0}}, 40.0));
  EXPECT_EQ(a.function, "audio");
  EXPECT_EQ(a.urgency, per::RepairUrgency::kImmediate);
  EXPECT_GT(a.irritation, 0.55);
}

TEST(Impact, SmallVolumeDriftIsNotImmediate) {
  auto assessor = per::tv_impact_assessor();
  const auto a = assessor.assess(
      make_error("sound_level", rt::Value{std::int64_t{40}}, rt::Value{std::int64_t{35}}, 5.0));
  EXPECT_EQ(a.function, "audio");
  EXPECT_NE(a.urgency, per::RepairUrgency::kImmediate);
}

TEST(Impact, CategoricalScreenMismatchIsSevere) {
  auto assessor = per::tv_impact_assessor();
  const auto a = assessor.assess(make_error("screen_state", rt::Value{std::string("teletext")},
                                            rt::Value{std::string("video")}, 1.0));
  EXPECT_EQ(a.function, "teletext");
  // Teletext matters less than audio, but a categorical failure of it is
  // at least a deferred repair, never cosmetic.
  EXPECT_NE(a.urgency, per::RepairUrgency::kCosmetic);
}

TEST(Impact, ExternallyAttributedFunctionsScoreLower) {
  auto assessor = per::tv_impact_assessor();
  // channel maps to image_quality, which users blame on the broadcast.
  const auto img = assessor.assess(
      make_error("channel", rt::Value{std::int64_t{5}}, rt::Value{std::int64_t{7}}, 2.0));
  const auto snd = assessor.assess(
      make_error("sound_level", rt::Value{std::int64_t{40}}, rt::Value{std::int64_t{0}}, 40.0));
  EXPECT_LT(img.irritation, snd.irritation);
  EXPECT_EQ(img.attribution, per::Attribution::kExternal);
}

TEST(Impact, LongerEpisodesIrritateMore) {
  auto assessor = per::tv_impact_assessor();
  const auto brief = assessor.assess(make_error("sound_level", rt::Value{std::int64_t{40}},
                                                rt::Value{std::int64_t{10}}, 30.0, rt::sec(5)));
  const auto lasting = assessor.assess(make_error("sound_level", rt::Value{std::int64_t{40}},
                                                  rt::Value{std::int64_t{10}}, 30.0,
                                                  rt::sec(120)));
  EXPECT_GE(lasting.irritation, brief.irritation);
}

TEST(Impact, UnmappedObservableFallsBack) {
  auto assessor = per::tv_impact_assessor();
  const auto a = assessor.assess(
      make_error("mystery", rt::Value{std::int64_t{1}}, rt::Value{std::int64_t{2}}, 1.0));
  EXPECT_EQ(a.function, "teletext");  // the configured fallback
}

TEST(Impact, UrgencyNames) {
  EXPECT_STREQ(per::to_string(per::RepairUrgency::kImmediate), "immediate");
  EXPECT_STREQ(per::to_string(per::RepairUrgency::kCosmetic), "cosmetic");
}

TEST(Impact, DrivesRecoveryDecisionsOnRealErrors) {
  // End-to-end: a lost mute command (sound stays on!) is repaired
  // immediately; the repair decision comes from the impact assessment.
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(5));
  tv::TvSystem set(sched, bus, injector);

  auto monitor = core::MonitorBuilder(sched, bus)
                     .model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
                     .comparison_period(rt::msec(20))
                     .startup_grace(rt::msec(100))
                     .threshold("sound_level", 0.0, /*max_consecutive=*/3)
                     .build();

  auto assessor = per::tv_impact_assessor();
  std::vector<per::RepairUrgency> decisions;
  monitor->set_recovery_handler([&](const core::ErrorReport& err) {
    const auto impact = assessor.assess(err);
    decisions.push_back(impact.urgency);
    if (impact.urgency == per::RepairUrgency::kImmediate) set.restart_component("audio");
  });

  set.start();
  monitor->start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(300));
  // Crank the volume up so the failed mute leaves a big deviation.
  for (int i = 0; i < 8; ++i) set.press(tv::Key::kVolumeUp);
  sched.run_for(rt::msec(300));
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", sched.now(),
                                   rt::msec(50), 1.0, {}});
  set.press(tv::Key::kMute);  // lost: expected 0, observed 70
  sched.run_for(rt::sec(1));

  ASSERT_FALSE(decisions.empty());
  EXPECT_EQ(decisions[0], per::RepairUrgency::kImmediate);
  EXPECT_EQ(set.sound_output(), 0);  // repaired: mute applied via resync
}

// ------------------------------------------------------- multi-fault SFL

TEST(MultiFault, BothFaultyFeaturesSurfaceInTopRanks) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = 8000;
  cfg.feature_count = 16;
  cfg.seed = 77;
  diag::SyntheticProgram prog_a(cfg);
  cfg.seed = 77;  // identical topology for the second program instance
  diag::SyntheticProgram prog_b(cfg);
  const std::size_t per_feature = prog_a.feature_end(0) - prog_a.feature_begin(0);
  prog_a.set_fault_in_feature(3, static_cast<std::size_t>(per_feature * 0.8));
  prog_b.set_fault_in_feature(9, static_cast<std::size_t>(per_feature * 0.75));

  obs::BlockCoverageRecorder cov(prog_a.block_count());
  std::vector<bool> errors;
  trader::runtime::Rng rng(5);
  for (int s = 0; s < 60; ++s) {
    const auto feature = static_cast<std::size_t>(rng.uniform_int(0, 15));
    // Run the step on both programs — identical topology and RNG would
    // diverge, so approximate a two-fault program by or-ing the error of
    // program A (fault in feature 3) with a direct hit test on B's fault.
    const bool err_a = prog_a.run_step(feature, cov);
    const bool err_b = feature == 9 && rng.bernoulli(0.85);
    cov.end_step();
    errors.push_back(err_a || err_b);
  }
  diag::SflRanker ranker;
  const auto report = ranker.rank(cov, errors, diag::Coefficient::kOchiai);
  // Both faults' home features must appear in the top of the ranking:
  // every top-20 block belongs to feature 3, feature 9, or shared infra.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 20 && i < report.ranking.size(); ++i) {
    const std::size_t f = prog_a.feature_of(report.ranking[i].block);
    if (f == 3 || f == 9) ++hits;
  }
  EXPECT_GE(hits, 10u);
  EXPECT_LE(report.rank_of(prog_a.fault_block()), 40u);
}
