// Tests for the reusable fault-tolerance library (§4.5), the teletext
// page-content model, and the decoder robustness modes (§2).
#include <gtest/gtest.h>

#include "faults/injector.hpp"
#include "recovery/ft_lib.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/components.hpp"
#include "tv/tv_system.hpp"

namespace rec = trader::recovery;
namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace flt = trader::faults;

// -------------------------------------------------------------- RetryExecutor

TEST(Retry, SucceedsImmediately) {
  rec::RetryExecutor retry(3);
  EXPECT_TRUE(retry.run([] { return true; }));
  EXPECT_EQ(retry.total_attempts(), 1u);
  EXPECT_EQ(retry.failures(), 0u);
}

TEST(Retry, RetriesUntilSuccess) {
  rec::RetryExecutor retry(5);
  int calls = 0;
  EXPECT_TRUE(retry.run([&] { return ++calls == 3; }));
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retry.total_attempts(), 3u);
}

TEST(Retry, GivesUpAfterMaxAttempts) {
  rec::RetryExecutor retry(4);
  int calls = 0;
  EXPECT_FALSE(retry.run([&] {
    ++calls;
    return false;
  }));
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retry.failures(), 1u);
}

// --------------------------------------------------------------- FallbackChain

TEST(Fallback, PrimaryServesWhenHealthy) {
  rec::FallbackChain chain;
  chain.add_level("hd", [] { return std::optional<rt::Value>(std::int64_t{1080}); });
  chain.add_level("sd", [] { return std::optional<rt::Value>(std::int64_t{576}); });
  auto v = chain.get();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*v), 1080);
  EXPECT_EQ(chain.last_level(), 0);
  EXPECT_EQ(chain.degradations(), 0u);
}

TEST(Fallback, DegradesWhenPrimaryFails) {
  rec::FallbackChain chain;
  bool hd_ok = false;
  chain.add_level("hd", [&]() -> std::optional<rt::Value> {
    if (hd_ok) return rt::Value{std::int64_t{1080}};
    return std::nullopt;
  });
  chain.add_level("sd", [] { return std::optional<rt::Value>(std::int64_t{576}); });
  auto v = chain.get();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*v), 576);
  EXPECT_EQ(chain.last_level(), 1);
  EXPECT_EQ(chain.level_name(1), "sd");
  EXPECT_EQ(chain.degradations(), 1u);
  hd_ok = true;
  chain.get();
  EXPECT_EQ(chain.last_level(), 0);  // heals back to primary
}

TEST(Fallback, OutageWhenAllFail) {
  rec::FallbackChain chain;
  chain.add_level("only", []() -> std::optional<rt::Value> { return std::nullopt; });
  EXPECT_FALSE(chain.get().has_value());
  EXPECT_EQ(chain.outages(), 1u);
  EXPECT_EQ(chain.last_level(), -1);
}

// -------------------------------------------------------------- SafeStateGuard

TEST(SafeGuard, AcceptsValidUpdates) {
  rec::SafeStateGuard guard(rt::Value{std::int64_t{30}}, [](const rt::Value& v) {
    const auto* i = std::get_if<std::int64_t>(&v);
    return i != nullptr && *i >= 0 && *i <= 100;
  });
  EXPECT_TRUE(guard.update(rt::Value{std::int64_t{55}}));
  EXPECT_EQ(std::get<std::int64_t>(guard.value()), 55);
  EXPECT_EQ(guard.accepted(), 1u);
}

TEST(SafeGuard, RejectsCorruptUpdatesKeepingLastGood) {
  rec::SafeStateGuard guard(rt::Value{std::int64_t{30}}, [](const rt::Value& v) {
    const auto* i = std::get_if<std::int64_t>(&v);
    return i != nullptr && *i >= 0 && *i <= 100;
  });
  EXPECT_FALSE(guard.update(rt::Value{std::int64_t{250}}));   // memory corruption
  EXPECT_FALSE(guard.update(rt::Value{std::string("boom")}));  // type confusion
  EXPECT_EQ(std::get<std::int64_t>(guard.value()), 30);
  EXPECT_EQ(guard.rejected(), 2u);
}

// --------------------------------------------------------------- NVersionVoter

TEST(NVersion, UnanimousAgreement) {
  rec::NVersionVoter voter;
  for (const char* name : {"a", "b", "c"}) {
    voter.add_variant(name, [] { return rt::Value{std::int64_t{7}}; });
  }
  const auto verdict = voter.vote();
  EXPECT_TRUE(verdict.agreed);
  EXPECT_EQ(std::get<std::int64_t>(verdict.value), 7);
  EXPECT_TRUE(verdict.dissenters.empty());
  EXPECT_EQ(voter.disagreements(), 0u);
}

TEST(NVersion, MajorityOutvotesFaultyVariant) {
  rec::NVersionVoter voter;
  voter.add_variant("good1", [] { return rt::Value{std::int64_t{7}}; });
  voter.add_variant("buggy", [] { return rt::Value{std::int64_t{9}}; });
  voter.add_variant("good2", [] { return rt::Value{std::int64_t{7}}; });
  const auto verdict = voter.vote();
  EXPECT_TRUE(verdict.agreed);
  EXPECT_EQ(std::get<std::int64_t>(verdict.value), 7);
  ASSERT_EQ(verdict.dissenters.size(), 1u);
  EXPECT_EQ(verdict.dissenters[0], "buggy");
  EXPECT_EQ(voter.disagreements(), 1u);
}

TEST(NVersion, NoMajorityIsFlagged) {
  rec::NVersionVoter voter;
  voter.add_variant("a", [] { return rt::Value{std::int64_t{1}}; });
  voter.add_variant("b", [] { return rt::Value{std::int64_t{2}}; });
  const auto verdict = voter.vote();
  EXPECT_FALSE(verdict.agreed);
}

TEST(NVersion, EmptyVoterIsBenign) {
  rec::NVersionVoter voter;
  const auto verdict = voter.vote();
  EXPECT_FALSE(verdict.agreed);
}

TEST(Fallback, RepeatedExhaustionCountsEveryOutageAndHealsDeepestFirst) {
  // Level exhaustion under a progressing outage: levels fail top-down,
  // the chain serves the deepest survivor, and once everything is gone
  // every get() is a counted outage — then service heals bottom-up.
  rec::FallbackChain chain;
  bool hd = true, sd = true, audio = true;
  chain.add_level("hd", [&]() -> std::optional<rt::Value> {
    if (hd) return rt::Value{std::int64_t{1080}};
    return std::nullopt;
  });
  chain.add_level("sd", [&]() -> std::optional<rt::Value> {
    if (sd) return rt::Value{std::int64_t{576}};
    return std::nullopt;
  });
  chain.add_level("audio-only", [&]() -> std::optional<rt::Value> {
    if (audio) return rt::Value{std::int64_t{0}};
    return std::nullopt;
  });

  hd = false;
  chain.get();
  EXPECT_EQ(chain.last_level(), 1);
  sd = false;
  chain.get();
  EXPECT_EQ(chain.last_level(), 2);
  EXPECT_EQ(chain.level_name(2), "audio-only");
  EXPECT_EQ(chain.degradations(), 2u);

  audio = false;  // full exhaustion: every level dark
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(chain.get().has_value()) << "outage get " << i;
    EXPECT_EQ(chain.last_level(), -1);
  }
  EXPECT_EQ(chain.outages(), 3u) << "every exhausted query is an outage";

  // Partial heal: the deepest level returning is enough to end the
  // outage (still a degradation, not primary service).
  audio = true;
  auto v = chain.get();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(chain.last_level(), 2);
  EXPECT_EQ(chain.degradations(), 3u);
  EXPECT_EQ(chain.outages(), 3u);

  hd = true;  // full heal: straight back to primary, no extra counts
  chain.get();
  EXPECT_EQ(chain.last_level(), 0);
  EXPECT_EQ(chain.degradations(), 3u);
}

TEST(SafeGuard, ReentryAfterFailedRecoveryKeepsLastGoodUntilAValidWrite) {
  // A failed recovery is exactly a re-entrant corrupt writer: the
  // restarted component comes back wrong and keeps writing garbage.
  // The guard must hold the last-good value through the whole failed
  // episode and accept the first valid write of the successful retry.
  rec::SafeStateGuard guard(rt::Value{std::int64_t{12}}, [](const rt::Value& v) {
    const auto* i = std::get_if<std::int64_t>(&v);
    return i != nullptr && *i >= 0 && *i <= 100;
  });
  ASSERT_TRUE(guard.update(rt::Value{std::int64_t{40}}));

  // First recovery attempt fails: the component re-enters with corrupt
  // state and hammers the guard.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(guard.update(rt::Value{std::int64_t{1000 + i}}));
    EXPECT_EQ(std::get<std::int64_t>(guard.value()), 40) << "last good held";
  }
  EXPECT_EQ(guard.rejected(), 5u);

  // Second recovery succeeds: the first valid write re-enters service.
  EXPECT_TRUE(guard.update(rt::Value{std::int64_t{41}}));
  EXPECT_EQ(std::get<std::int64_t>(guard.value()), 41);
  EXPECT_EQ(guard.accepted(), 2u);
  EXPECT_EQ(guard.rejected(), 5u) << "history survives the recovery";
}

TEST(NVersion, EvenSplitTieIsNotAMajority) {
  // 2-2 tie: no strict majority. The verdict must say so, expose the
  // first-seen camp's value (a deterministic, not a correct, choice)
  // and name the other camp as dissenters.
  rec::NVersionVoter voter;
  voter.add_variant("a1", [] { return rt::Value{std::int64_t{7}}; });
  voter.add_variant("b1", [] { return rt::Value{std::int64_t{9}}; });
  voter.add_variant("a2", [] { return rt::Value{std::int64_t{7}}; });
  voter.add_variant("b2", [] { return rt::Value{std::int64_t{9}}; });
  const auto verdict = voter.vote();
  EXPECT_FALSE(verdict.agreed);
  EXPECT_EQ(std::get<std::int64_t>(verdict.value), 7);  // first seen, flagged unagreed
  ASSERT_EQ(verdict.dissenters.size(), 2u);
  EXPECT_EQ(verdict.dissenters[0], "b1");
  EXPECT_EQ(verdict.dissenters[1], "b2");
  EXPECT_EQ(voter.disagreements(), 1u);

  // A tie among agreeing duplicates is still unanimous: two variants,
  // same value -> 2 of 2 IS a strict majority.
  rec::NVersionVoter pair;
  pair.add_variant("x", [] { return rt::Value{std::int64_t{5}}; });
  pair.add_variant("y", [] { return rt::Value{std::int64_t{5}}; });
  EXPECT_TRUE(pair.vote().agreed);
}

// ----------------------------------------------------- Teletext page content

TEST(TeletextContent, CarouselFillsCacheFromTunedChannel) {
  tv::TeletextEngine ttx;
  ttx.on_channel_change(5);
  ttx.show();
  for (int i = 0; i < 10; ++i) ttx.tick_acquisition(true, 5);
  EXPECT_EQ(ttx.page_source(100), 5);
  EXPECT_EQ(ttx.page_content(100), "ch5/p100");
  EXPECT_TRUE(ttx.displayed_page_current(5));
  EXPECT_DOUBLE_EQ(ttx.cache_staleness(5), 0.0);
}

TEST(TeletextContent, UncachedPageHasNoContent) {
  tv::TeletextEngine ttx;
  ttx.show();
  EXPECT_EQ(ttx.page_source(500), -1);
  EXPECT_EQ(ttx.page_content(500), "");
  EXPECT_FALSE(ttx.displayed_page_current(1));
}

TEST(TeletextContent, DesyncShowsStalePagesThatCarouselSlowlyRefreshes) {
  tv::TeletextEngine ttx;
  ttx.on_channel_change(1);
  ttx.show();
  for (int i = 0; i < 25; ++i) ttx.tick_acquisition(true, 1);  // 100 pages of ch1
  // The tuner moves to channel 2 but the engine never hears about it.
  EXPECT_GT(ttx.cache_staleness(2), 0.9);
  EXPECT_FALSE(ttx.displayed_page_current(2));  // stale page on screen
  // The carousel keeps delivering — now with channel-2 content — and the
  // stale fraction decays as pages are overwritten.
  const double before = ttx.cache_staleness(2);
  for (int i = 0; i < 15; ++i) ttx.tick_acquisition(true, 2);
  EXPECT_LT(ttx.cache_staleness(2), before);
}

TEST(TeletextContent, ChannelChangeClearsCache) {
  tv::TeletextEngine ttx;
  ttx.on_channel_change(1);
  ttx.show();
  for (int i = 0; i < 5; ++i) ttx.tick_acquisition(true, 1);
  EXPECT_GT(ttx.page_source(100), 0);
  ttx.on_channel_change(2);
  EXPECT_EQ(ttx.page_source(100), -1);
}

TEST(TeletextContent, TvSystemShowsStaleContentAfterLostChannelChange) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(3));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(200));
  set.press(tv::Key::kTeletext);
  sched.run_for(rt::sec(1));  // cache fills from channel 1
  EXPECT_TRUE(set.teletext().displayed_page_current(set.tuner().channel()));
  set.press(tv::Key::kBack);
  sched.run_for(rt::msec(100));
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.teletext", sched.now(),
                                   rt::msec(50), 1.0, {}});
  set.press(tv::Key::kChannelUp);
  sched.run_for(rt::msec(100));
  set.press(tv::Key::kTeletext);
  sched.run_for(rt::msec(100));
  // The user sees channel-1 pages while watching channel 2.
  EXPECT_FALSE(set.teletext().displayed_page_current(set.tuner().channel()));
  EXPECT_GT(set.teletext().cache_staleness(set.tuner().channel()), 0.5);
}

// --------------------------------------------------------- Decoder robustness

namespace {

double drop_rate_with(bool robust, double deviation_rate) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(3));
  tv::TvConfig config;
  config.robust_decoder = robust;
  tv::TvSystem set(sched, bus, injector, config);
  // Make channel 1's stream deviate often (a sloppy encoder upstream).
  const_cast<tv::ChannelInfo&>(set.lineup().info(1)).deviation_rate = deviation_rate;
  set.start();
  set.press(tv::Key::kPower);
  sched.run_until(rt::sec(20));
  EXPECT_GT(set.stats().coding_deviations, 0u);
  return set.stats().drop_rate();
}

}  // namespace

TEST(DecoderRobustness, StrictDecoderDropsFramesOnDeviations) {
  const double robust = drop_rate_with(true, 0.05);
  const double strict = drop_rate_with(false, 0.05);
  EXPECT_LT(robust, 0.02);            // tolerant path barely hiccups
  EXPECT_GT(strict, robust + 0.05);   // lost-sync glitches hurt
}

TEST(DecoderRobustness, CleanStreamsEqualizeTheModes) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(3));
  tv::TvConfig config;
  config.robust_decoder = false;
  tv::TvSystem set(sched, bus, injector, config);
  set.start();
  set.press(tv::Key::kPower);
  set.enter_channel(2);  // channel 2 has deviation_rate 0
  sched.run_until(rt::sec(10));
  EXPECT_LT(set.stats().drop_rate(), 0.05);
}
