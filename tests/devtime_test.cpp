// Tests for the development-time research line (§4.7): resource eaters,
// the stress harness, execution-likelihood warning prioritization, and
// software FMEA.
#include <gtest/gtest.h>

#include <set>

#include "devtime/eaters.hpp"
#include "devtime/fmea.hpp"
#include "devtime/priowarn.hpp"
#include "devtime/stress.hpp"
#include "tv/soc.hpp"

namespace dev = trader::devtime;
namespace tv = trader::tv;
namespace rt = trader::runtime;

// --------------------------------------------------------------------- Eaters

TEST(CpuEater, StealsCapacityFromLowerPriorityTasks) {
  tv::Processor cpu("p", 100.0);
  cpu.add_task("decoder", 80.0, 2);
  dev::CpuEater eater(cpu);
  eater.activate(50.0);
  cpu.service();
  EXPECT_DOUBLE_EQ(cpu.last_fraction("cpu_eater"), 1.0);  // eater wins
  EXPECT_LT(cpu.last_fraction("decoder"), 1.0);
  eater.deactivate();
  cpu.service();
  EXPECT_DOUBLE_EQ(cpu.last_fraction("decoder"), 1.0);
}

TEST(CpuEater, DeactivatesOnDestruction) {
  tv::Processor cpu("p", 100.0);
  {
    dev::CpuEater eater(cpu);
    eater.activate(50.0);
    EXPECT_TRUE(cpu.has_task("cpu_eater"));
  }
  EXPECT_FALSE(cpu.has_task("cpu_eater"));
}

TEST(BusEater, InjectsDemandPerTick) {
  tv::Bus bus(100.0);
  dev::BusEater eater(bus);
  eater.activate(60.0);
  eater.tick();
  bus.request("decoder", 80.0);
  bus.service();
  EXPECT_LT(bus.last_fraction("decoder"), 1.0);
  eater.deactivate();
  eater.tick();
  bus.request("decoder", 80.0);
  bus.service();
  EXPECT_DOUBLE_EQ(bus.last_fraction("decoder"), 1.0);
}

TEST(MemoryEater, RegistersOwnPort) {
  tv::MemoryArbiter arb(100.0);
  arb.add_port("video", 2);
  dev::MemoryEater eater(arb, /*priority=*/5);
  eater.activate(80.0);
  eater.tick();
  arb.request("video", 80.0);
  arb.service();
  EXPECT_LT(arb.last_fraction("video"), 1.0);  // eater outranks video
}

// ------------------------------------------------------------ Stress harness

TEST(Stress, BaselineRunIsHealthy) {
  dev::StressConfig cfg;
  cfg.duration = rt::sec(8);
  const auto point = dev::run_stress_point(0.0, cfg);
  EXPECT_LT(point.drop_rate, 0.05);
  EXPECT_GT(point.avg_quality, 0.6);
  EXPECT_EQ(point.migrations, 0);
}

TEST(Stress, HeavyEaterDegradesOutput) {
  dev::StressConfig cfg;
  cfg.duration = rt::sec(8);
  const auto healthy = dev::run_stress_point(0.0, cfg);
  const auto stressed = dev::run_stress_point(60.0, cfg);
  EXPECT_GT(stressed.drop_rate, healthy.drop_rate + 0.1);
  EXPECT_GT(stressed.cpu_load, healthy.cpu_load);
}

TEST(Stress, SweepIsMonotoneInLoad) {
  dev::StressConfig cfg;
  cfg.duration = rt::sec(6);
  const auto points = dev::stress_sweep({0.0, 30.0, 60.0, 90.0}, cfg);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].cpu_load, points[i - 1].cpu_load - 1e-9);
    EXPECT_GE(points[i].drop_rate, points[i - 1].drop_rate - 0.02);
  }
}

TEST(Stress, LoadBalancerActivatesUnderStress) {
  dev::StressConfig cfg;
  cfg.duration = rt::sec(10);
  cfg.with_load_balancer = true;
  const auto point = dev::run_stress_point(60.0, cfg);
  EXPECT_GE(point.migrations, 1);
  // The FT mechanism restores output after the spike (E9's observation
  // that stress testing exposes fault-tolerant mechanisms at work).
  dev::StressConfig no_ft = cfg;
  no_ft.with_load_balancer = false;
  const auto unprotected = dev::run_stress_point(60.0, no_ft);
  EXPECT_GT(point.quality_recovered, unprotected.quality_recovered);
}

// -------------------------------------------------------------- SyntheticCfg

TEST(Cfg, GeneratesRequestedSizeAndDag) {
  const auto cfg = dev::SyntheticCfg::generate(500, 1);
  EXPECT_EQ(cfg.size(), 500u);
  for (std::size_t i = 0; i < cfg.size(); ++i) {
    for (std::size_t s : cfg.nodes()[i].succs) {
      EXPECT_GT(s, i);  // forward edges only: acyclic by construction
      EXPECT_LT(s, cfg.size());
    }
  }
}

TEST(Cfg, LikelihoodEntryIsOneAndBounded) {
  const auto cfg = dev::SyntheticCfg::generate(500, 2);
  const auto like = cfg.execution_likelihood();
  EXPECT_DOUBLE_EQ(like[0], 1.0);
  for (double v : like) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Cfg, BranchingCreatesLikelihoodSpread) {
  const auto cfg = dev::SyntheticCfg::generate(1000, 3);
  const auto like = cfg.execution_likelihood();
  double lo = 1.0;
  for (double v : like) lo = std::min(lo, v);
  EXPECT_LT(lo, 0.5);  // some nodes are genuinely unlikely
}

TEST(Cfg, ProbabilitiesSumToOnePerNode) {
  const auto cfg = dev::SyntheticCfg::generate(300, 4);
  for (std::size_t i = 0; i + 1 < cfg.size(); ++i) {
    double sum = 0.0;
    for (double p : cfg.nodes()[i].probs) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

// ----------------------------------------------------------- Prioritization

TEST(Priowarn, GeneratedWarningsAreWellFormed) {
  const auto cfg = dev::SyntheticCfg::generate(400, 5);
  const auto warnings = dev::generate_warnings(cfg, 200, 0.2, 6);
  ASSERT_EQ(warnings.size(), 200u);
  for (const auto& w : warnings) {
    EXPECT_LT(w.node, cfg.size());
    EXPECT_GE(w.severity, 1);
    EXPECT_LE(w.severity, 9);
  }
}

TEST(Priowarn, TruePositivesCorrelateWithLikelihood) {
  const auto cfg = dev::SyntheticCfg::generate(2000, 7);
  const auto like = cfg.execution_likelihood();
  const auto warnings = dev::generate_warnings(cfg, 4000, 0.3, 8);
  double tp_like = 0.0;
  double fp_like = 0.0;
  int tp = 0;
  int fp = 0;
  for (const auto& w : warnings) {
    if (w.true_positive) {
      tp_like += like[w.node];
      ++tp;
    } else {
      fp_like += like[w.node];
      ++fp;
    }
  }
  ASSERT_GT(tp, 0);
  ASSERT_GT(fp, 0);
  EXPECT_GT(tp_like / tp, fp_like / fp);
}

TEST(Priowarn, OrderingsAreValidPermutations) {
  const auto cfg = dev::SyntheticCfg::generate(300, 9);
  const auto like = cfg.execution_likelihood();
  const auto warnings = dev::generate_warnings(cfg, 100, 0.2, 10);
  dev::WarningPrioritizer prio;
  for (auto order : {dev::WarningOrder::kReportOrder, dev::WarningOrder::kSeverity,
                     dev::WarningOrder::kLikelihood,
                     dev::WarningOrder::kSeverityTimesLikelihood}) {
    const auto idx = prio.prioritize(warnings, like, order);
    std::set<std::size_t> seen(idx.begin(), idx.end());
    EXPECT_EQ(seen.size(), warnings.size()) << dev::to_string(order);
  }
}

TEST(Priowarn, LikelihoodOrderingBeatsReportOrder) {
  const auto cfg = dev::SyntheticCfg::generate(2000, 11);
  const auto like = cfg.execution_likelihood();
  const auto warnings = dev::generate_warnings(cfg, 1000, 0.15, 12);
  dev::WarningPrioritizer prio;
  const auto by_like = prio.prioritize(warnings, like, dev::WarningOrder::kLikelihood);
  const auto by_report = prio.prioritize(warnings, like, dev::WarningOrder::kReportOrder);
  EXPECT_GT(dev::WarningPrioritizer::tp_auc(by_like, warnings),
            dev::WarningPrioritizer::tp_auc(by_report, warnings));
}

TEST(Priowarn, EffortToFirstTpMetric) {
  std::vector<dev::InspectionWarning> warnings(4);
  warnings[2].true_positive = true;
  const std::vector<std::size_t> order{0, 1, 2, 3};
  EXPECT_EQ(dev::WarningPrioritizer::effort_to_first_tp(order, warnings), 3u);
  const std::vector<std::size_t> reversed{3, 2, 1, 0};
  EXPECT_EQ(dev::WarningPrioritizer::effort_to_first_tp(reversed, warnings), 2u);
  std::vector<dev::InspectionWarning> none(4);
  EXPECT_EQ(dev::WarningPrioritizer::effort_to_first_tp(order, none), 5u);
}

TEST(Priowarn, AucBoundaries) {
  std::vector<dev::InspectionWarning> warnings(10);
  warnings[0].true_positive = true;
  std::vector<std::size_t> first{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<std::size_t> last{1, 2, 3, 4, 5, 6, 7, 8, 9, 0};
  EXPECT_GT(dev::WarningPrioritizer::tp_auc(first, warnings), 0.9);
  EXPECT_LT(dev::WarningPrioritizer::tp_auc(last, warnings), 0.1);
}

// ----------------------------------------------------------------------- FMEA

TEST(Fmea, RpnIsProductOfScores) {
  dev::FailureMode fm{"c", "m", "e", 7, 5, 4};
  EXPECT_EQ(fm.rpn(), 140);
}

TEST(Fmea, RankedSortsByRpn) {
  dev::FmeaAnalyzer fmea;
  fmea.add({"a", "m1", "e", 2, 2, 2});   // 8
  fmea.add({"b", "m2", "e", 9, 9, 9});   // 729
  fmea.add({"c", "m3", "e", 5, 5, 5});   // 125
  const auto ranked = fmea.ranked();
  EXPECT_EQ(ranked[0].component, "b");
  EXPECT_EQ(ranked[1].component, "c");
  EXPECT_EQ(ranked[2].component, "a");
  EXPECT_EQ(fmea.top(1).size(), 1u);
}

TEST(Fmea, ComponentRiskAggregates) {
  dev::FmeaAnalyzer fmea;
  fmea.add({"a", "m1", "e", 2, 2, 2});
  fmea.add({"a", "m2", "e", 3, 1, 1});
  fmea.add({"b", "m3", "e", 1, 1, 1});
  const auto risk = fmea.component_risk();
  EXPECT_EQ(risk.at("a"), 8 + 3);
  EXPECT_EQ(risk.at("b"), 1);
}

TEST(Fmea, DetectionImprovementLowersRpn) {
  dev::FmeaAnalyzer fmea;
  for (auto& fm : dev::tv_failure_modes()) fmea.add(fm);
  const int before = fmea.component_risk().at("teletext");
  // Adding an awareness monitor to teletext improves detectability.
  EXPECT_GT(fmea.apply_detection_improvement("teletext", 2), 0u);
  const int after = fmea.component_risk().at("teletext");
  EXPECT_LT(after, before);
  // Already-better detection scores are not made worse.
  EXPECT_EQ(fmea.apply_detection_improvement("teletext", 9), 0u);
}

TEST(Fmea, TvInventoryRanksDesyncDetectabilityHigh) {
  dev::FmeaAnalyzer fmea;
  for (auto& fm : dev::tv_failure_modes()) fmea.add(fm);
  // The teletext desync (hard to detect without a monitor) must appear
  // in the top-3 risks — the motivation for the §4.3 mode checker.
  const auto top = fmea.top(3);
  bool found = false;
  for (const auto& fm : top) {
    if (fm.component == "teletext" && fm.mode == "channel desync") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Fmea, SystemFailureRateWeightsUsage) {
  const std::map<std::string, double> rates{{"a", 0.01}, {"b", 0.10}};
  const std::map<std::string, double> usage{{"a", 1.0}, {"b", 0.1}};
  EXPECT_NEAR(dev::FmeaAnalyzer::system_failure_rate(rates, usage), 0.02, 1e-12);
  // Missing usage weight defaults to 1.
  EXPECT_NEAR(dev::FmeaAnalyzer::system_failure_rate(rates, {}), 0.11, 1e-12);
}
