// Tests for the awareness framework (Fig. 2): observers, model executor,
// comparator tolerance machinery, controller, and the full monitor
// against a scripted SUO and against the real TV simulator.
#include <gtest/gtest.h>

#include <memory>

#include "core/fleet.hpp"
#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace core = trader::core;
namespace sm = trader::statemachine;
namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace flt = trader::faults;

namespace {

// A trivial SUO: publishes input events and echo outputs.
struct EchoSuo {
  EchoSuo(rt::Scheduler& sched, rt::EventBus& bus) : sched_(sched), bus_(bus) {}

  void input(const std::string& key) {
    rt::Event ev;
    ev.topic = "suo.in";
    ev.name = "key";
    ev.fields["key"] = key;
    ev.timestamp = sched_.now();
    bus_.publish(ev);
  }

  void output(const std::string& name, rt::Value v) {
    rt::Event ev;
    ev.topic = "suo.out";
    ev.name = name;
    ev.fields["value"] = std::move(v);
    ev.timestamp = sched_.now();
    bus_.publish(ev);
  }

  rt::Scheduler& sched_;
  rt::EventBus& bus_;
};

// Spec model: counter increments on "inc"; emits expected count.
sm::StateMachineDef counter_model() {
  sm::StateMachineDef def("counter");
  const auto s = def.add_state("S");
  def.add_internal(s, "inc", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("n", env.vars.get_int("n") + 1);
    env.emit("count", {{"value", env.vars.get_int("n")}});
  });
  def.add_internal(s, "hush", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_bool("nocompare:count", true);
  });
  def.add_internal(s, "talk", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_bool("nocompare:count", false);
  });
  return def;
}

core::MonitorBuilder counter_builder(int max_consecutive = 1, double threshold = 0.0) {
  core::MonitorBuilder builder;
  builder.model(counter_model())
      .input_topic("suo.in")
      .output_topic("suo.out")
      .threshold("count", threshold, max_consecutive)
      .comparison_period(rt::msec(10))
      .startup_grace(rt::msec(5))
      .channel_latency(rt::usec(100));
  return builder;
}

}  // namespace

// ------------------------------------------------------------- Configuration

TEST(Configuration, LookupAndOverride) {
  core::AwarenessConfig cfg;
  cfg.observables.push_back(core::ObservableConfig{"a", 1.0, 2, true, true});
  core::Configuration config(cfg);
  ASSERT_TRUE(config.lookup("a").has_value());
  EXPECT_EQ(config.lookup("a")->max_consecutive, 2);
  EXPECT_FALSE(config.lookup("b").has_value());
  config.set_observable(core::ObservableConfig{"a", 5.0, 3, true, true});
  EXPECT_EQ(config.lookup("a")->max_consecutive, 3);
  config.set_observable(core::ObservableConfig{"b", 0.0, 1, true, true});
  EXPECT_EQ(config.observable_names().size(), 2u);
}

TEST(ErrorReport, DescribeMentionsEverything) {
  core::ErrorReport r{"obs", rt::Value{std::int64_t{3}}, rt::Value{std::int64_t{5}},
                      2.0,   4,                          100,
                      50};
  const auto d = r.describe();
  EXPECT_NE(d.find("obs"), std::string::npos);
  EXPECT_NE(d.find("3"), std::string::npos);
  EXPECT_NE(d.find("5"), std::string::npos);
}

// ------------------------------------------------------------------ Observers

TEST(Observers, DefaultInputMapperUsesKeyField) {
  rt::Event ev;
  ev.name = "key";
  ev.fields["key"] = std::string("volume_up");
  const auto sm_ev = core::default_input_mapper(ev);
  ASSERT_TRUE(sm_ev.has_value());
  EXPECT_EQ(sm_ev->name, "volume_up");
}

TEST(Observers, DefaultInputMapperFallsBackToEventName) {
  rt::Event ev;
  ev.name = "play";
  const auto sm_ev = core::default_input_mapper(ev);
  ASSERT_TRUE(sm_ev.has_value());
  EXPECT_EQ(sm_ev->name, "play");
}

TEST(Observers, DefaultOutputMapperNeedsValueField) {
  rt::Event ev;
  ev.name = "volume";
  EXPECT_FALSE(core::default_output_mapper(ev).has_value());
  ev.fields["value"] = std::int64_t{5};
  const auto mapped = core::default_output_mapper(ev);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->first, "volume");
}

TEST(Observers, InputObserverDeliversThroughLatency) {
  rt::Scheduler sched;
  rt::EventBus bus;
  std::vector<std::pair<std::string, rt::SimTime>> received;
  rt::ChannelConfig ch;
  ch.base_latency = rt::usec(500);
  core::InputObserver obs(sched, bus, "suo.in", ch, nullptr,
                          [&](const sm::SmEvent& ev, rt::SimTime now) {
                            received.emplace_back(ev.name, now);
                          });
  obs.start(0);
  EchoSuo suo(sched, bus);
  suo.input("go");
  sched.run_all();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, "go");
  EXPECT_EQ(received[0].second, 500);
  EXPECT_EQ(obs.observed_events(), 1u);
  obs.stop();
  suo.input("go");
  sched.run_all();
  EXPECT_EQ(received.size(), 1u);
}

TEST(Observers, OutputObserverKeepsLatestAndNotifies) {
  rt::Scheduler sched;
  rt::EventBus bus;
  rt::ChannelConfig ch;
  core::OutputObserver obs(sched, bus, {"suo.out"}, ch, nullptr);
  int fresh = 0;
  obs.on_fresh([&](const std::string&, rt::SimTime) { ++fresh; });
  obs.start(0);
  EchoSuo suo(sched, bus);
  suo.output("volume", std::int64_t{10});
  suo.output("volume", std::int64_t{20});
  sched.run_all();
  EXPECT_EQ(fresh, 2);
  const auto seen = obs.observed("volume");
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(std::get<std::int64_t>(seen->value), 20);
  EXPECT_FALSE(obs.observed("other").has_value());
}

// --------------------------------------------------------------- ModelExecutor

TEST(ModelExecutor, MaintainsExpectationTable) {
  auto def = counter_model();
  core::ModelExecutor exec(std::make_unique<core::InterpretedModel>(def));
  exec.start(0);
  EXPECT_FALSE(exec.expected("count").has_value());
  exec.on_input(sm::SmEvent::named("inc"), 10);
  auto e = exec.expected("count");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(std::get<std::int64_t>(e->value), 1);
  EXPECT_EQ(e->at, 10);
  exec.on_input(sm::SmEvent::named("inc"), 20);
  EXPECT_EQ(std::get<std::int64_t>(exec.expected("count")->value), 2);
  EXPECT_EQ(exec.inputs_processed(), 2u);
}

TEST(ModelExecutor, ComparisonEnableFollowsModelVars) {
  auto def = counter_model();
  core::ModelExecutor exec(std::make_unique<core::InterpretedModel>(def));
  exec.start(0);
  EXPECT_TRUE(exec.comparison_enabled("count"));
  exec.on_input(sm::SmEvent::named("hush"), 5);
  EXPECT_FALSE(exec.comparison_enabled("count"));
  exec.on_input(sm::SmEvent::named("talk"), 6);
  EXPECT_TRUE(exec.comparison_enabled("count"));
}

TEST(ModelExecutor, CompiledModelWorksToo) {
  auto def = counter_model();
  core::ModelExecutor exec(std::make_unique<core::CompiledModel>(def));
  exec.start(0);
  exec.on_input(sm::SmEvent::named("inc"), 1);
  EXPECT_EQ(std::get<std::int64_t>(exec.expected("count")->value), 1);
}

// -------------------------------------------------- Monitor with a scripted SUO

namespace {

struct MonitorFixture {
  explicit MonitorFixture(core::MonitorBuilder builder)
      : suo(sched, bus), monitor(builder.build(sched, bus)) {
    monitor->start();
  }

  rt::Scheduler sched;
  rt::EventBus bus;
  EchoSuo suo;
  std::unique_ptr<core::AwarenessMonitor> monitor;
};

}  // namespace

TEST(Monitor, NoErrorsWhenSystemMatchesModel) {
  MonitorFixture f(counter_builder());
  for (int i = 1; i <= 5; ++i) {
    f.suo.input("inc");
    f.suo.output("count", std::int64_t{i});
    f.sched.run_for(rt::msec(50));
  }
  EXPECT_TRUE(f.monitor->errors().empty());
  EXPECT_GT(f.monitor->stats().comparisons, 0u);
}

TEST(Monitor, DetectsPersistentDeviation) {
  MonitorFixture f(counter_builder(/*max_consecutive=*/3));
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{1});
  f.sched.run_for(rt::msec(50));
  EXPECT_TRUE(f.monitor->errors().empty());
  // SUO drops the second increment: model expects 2, system says 1.
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{1});
  f.sched.run_for(rt::msec(200));
  ASSERT_EQ(f.monitor->errors().size(), 1u);  // reported once per episode
  const auto& err = f.monitor->errors()[0];
  EXPECT_EQ(err.observable, "count");
  EXPECT_EQ(std::get<std::int64_t>(err.expected), 2);
  EXPECT_EQ(std::get<std::int64_t>(err.observed), 1);
  EXPECT_GE(err.consecutive, 3);
}

TEST(Monitor, ThresholdTolerance) {
  MonitorFixture f(counter_builder(/*max_consecutive=*/1, /*threshold=*/1.0));
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{2});  // off by one, within threshold
  f.sched.run_for(rt::msec(100));
  EXPECT_TRUE(f.monitor->errors().empty());
  f.suo.input("inc");                       // expected 2
  f.suo.output("count", std::int64_t{4});   // off by two, beyond threshold
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.monitor->errors().size(), 1u);
}

TEST(Monitor, ConsecutiveLimitSuppressesTransients) {
  MonitorFixture f(counter_builder(/*max_consecutive=*/5));
  // Single transient mismatch, then corrected: with limit 5 the episode
  // ends (event-based comparison agrees again) before an error fires.
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{0});  // transiently stale
  f.sched.run_for(rt::msec(20));
  f.suo.output("count", std::int64_t{1});  // caught up
  f.sched.run_for(rt::msec(200));
  EXPECT_TRUE(f.monitor->errors().empty());
  EXPECT_GT(f.monitor->stats().deviations, 0u);
}

TEST(Monitor, StartupGraceSuppressesEarlyComparisons) {
  auto builder = counter_builder();
  builder.startup_grace(rt::msec(500));
  MonitorFixture f(std::move(builder));
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{999});  // wild mismatch during grace
  f.sched.run_for(rt::msec(400));
  EXPECT_TRUE(f.monitor->errors().empty());
  f.sched.run_for(rt::msec(400));  // grace over; mismatch persists
  EXPECT_FALSE(f.monitor->errors().empty());
}

TEST(Monitor, EnableCompareWindowSuppresses) {
  MonitorFixture f(counter_builder());
  f.suo.input("hush");  // model disables comparison of "count"
  f.sched.run_for(rt::msec(20));
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{42});
  f.sched.run_for(rt::msec(200));
  EXPECT_TRUE(f.monitor->errors().empty());
  EXPECT_GT(f.monitor->stats().suppressed, 0u);
  f.suo.input("talk");
  f.sched.run_for(rt::msec(200));
  EXPECT_FALSE(f.monitor->errors().empty());
}

TEST(Monitor, RecoveryHandlerInvoked) {
  MonitorFixture f(counter_builder());
  int recoveries = 0;
  f.monitor->set_recovery_handler([&](const core::ErrorReport&) { ++recoveries; });
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{9});
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(recoveries, 1);
}

TEST(Monitor, ErrorsLoggedToTrace) {
  MonitorFixture f(counter_builder());
  rt::TraceLog trace;
  f.monitor->set_trace(&trace);
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{9});
  f.sched.run_for(rt::msec(100));
  EXPECT_GE(trace.count_at_least(rt::TraceLevel::kError), 1u);
}

TEST(Monitor, TimeBasedOnlyComparisonStillDetects) {
  auto builder = counter_builder(3);
  core::ObservableConfig oc;
  oc.name = "count";
  oc.max_consecutive = 3;
  oc.event_based = false;
  builder.observe(oc);  // replaces the entry counter_builder() added
  MonitorFixture f(std::move(builder));
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{7});
  f.sched.run_for(rt::msec(300));
  EXPECT_EQ(f.monitor->errors().size(), 1u);
}

TEST(Monitor, StopFreezesObservation) {
  MonitorFixture f(counter_builder());
  f.monitor->stop();
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{9});
  f.sched.run_for(rt::msec(100));
  EXPECT_TRUE(f.monitor->errors().empty());
}

TEST(Monitor, EpisodeResetAllowsNewReport) {
  MonitorFixture f(counter_builder());
  f.suo.input("inc");
  f.suo.output("count", std::int64_t{9});  // wrong -> error #1
  f.sched.run_for(rt::msec(100));
  f.suo.output("count", std::int64_t{1});  // agrees again
  f.sched.run_for(rt::msec(100));
  f.suo.output("count", std::int64_t{9});  // wrong again -> error #2
  f.sched.run_for(rt::msec(100));
  EXPECT_EQ(f.monitor->errors().size(), 2u);
}

// ----------------------------------------------- Monitor watching the real TV

namespace {

struct TvMonitorFixture {
  TvMonitorFixture()
      : injector(rt::Rng(7)),
        set(sched, bus, injector),
        spec_def(tv::build_tv_spec_model()) {
    core::MonitorBuilder builder(sched, bus);
    builder.model(std::make_unique<core::InterpretedModel>(spec_def))
        .input_topic("tv.input")
        .output_topic("tv.output")
        .comparison_period(rt::msec(20))
        .startup_grace(rt::msec(50))
        .channel_latency(rt::usec(200));
    for (const char* name : {"sound_level", "screen_state", "channel", "powered"}) {
      builder.threshold(name, 0.0, /*max_consecutive=*/3);
    }
    monitor = builder.build();
    set.start();
    monitor->start();
  }

  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector;
  tv::TvSystem set;
  sm::StateMachineDef spec_def;
  std::unique_ptr<core::AwarenessMonitor> monitor;
};

}  // namespace

TEST(TvMonitor, FaultFreeUsageProducesNoErrors) {
  TvMonitorFixture f;
  f.set.press(tv::Key::kPower);
  f.sched.run_for(rt::msec(300));
  for (tv::Key k : {tv::Key::kVolumeUp, tv::Key::kChannelUp, tv::Key::kMute, tv::Key::kTeletext,
                    tv::Key::kBack, tv::Key::kMenu, tv::Key::kMenu}) {
    f.set.press(k);
    f.sched.run_for(rt::msec(300));
  }
  EXPECT_TRUE(f.monitor->errors().empty())
      << (f.monitor->errors().empty() ? "" : f.monitor->errors()[0].describe());
}

TEST(TvMonitor, DetectsLostVolumeCommand) {
  TvMonitorFixture f;
  f.set.press(tv::Key::kPower);
  f.sched.run_for(rt::msec(300));
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", f.sched.now(),
                                     0, 1.0, {}});
  f.set.press(tv::Key::kVolumeUp);
  f.sched.run_for(rt::msec(500));
  ASSERT_FALSE(f.monitor->errors().empty());
  EXPECT_EQ(f.monitor->errors()[0].observable, "sound_level");
}

TEST(TvMonitor, DetectsStuckAudioOnMute) {
  TvMonitorFixture f;
  f.set.press(tv::Key::kPower);
  f.sched.run_for(rt::msec(300));
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "audio", f.sched.now(), 0,
                                     1.0, {}});
  f.set.press(tv::Key::kMute);
  f.sched.run_for(rt::msec(500));
  ASSERT_FALSE(f.monitor->errors().empty());
  EXPECT_EQ(f.monitor->errors()[0].observable, "sound_level");
}

TEST(TvMonitor, DetectionLatencyIsBoundedByComparatorSettings) {
  TvMonitorFixture f;
  f.set.press(tv::Key::kPower);
  f.sched.run_for(rt::msec(300));
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", f.sched.now(),
                                     0, 1.0, {}});
  f.set.press(tv::Key::kVolumeUp);
  const rt::SimTime injected = f.sched.now();
  f.sched.run_for(rt::sec(2));
  ASSERT_FALSE(f.monitor->errors().empty());
  const rt::SimTime detected = f.monitor->errors()[0].detected_at;
  // 3 consecutive deviations at a 20 ms compare period plus transport:
  // detection must land within ~200 ms of the fault manifesting.
  EXPECT_LE(detected - injected, rt::msec(200));
}

// ------------------------------------------ Builder-only construction surface

// What the deprecated Params-struct shim used to exercise, spelled as
// every call site must now spell it: a MonitorBuilder chain.
TEST(Monitor, BuilderReplacesDeprecatedParamsStruct) {
  rt::Scheduler sched;
  rt::EventBus bus;
  EchoSuo suo(sched, bus);
  auto monitor = core::MonitorBuilder(sched, bus)
                     .model(counter_model())
                     .input_topic("suo.in")
                     .output_topic("suo.out")
                     .threshold("count", 0.0, 1)
                     .comparison_period(rt::msec(10))
                     .startup_grace(rt::msec(5))
                     .build();
  monitor->start();
  suo.input("inc");
  suo.output("count", std::int64_t{9});
  sched.run_for(rt::msec(100));
  EXPECT_EQ(monitor->errors().size(), 1u);
}

// with_program without an arena: the legacy one-model-per-monitor path,
// reimplemented as a private batch of size 1.
TEST(Monitor, WithProgramBuildsStandaloneBatchOfOne) {
  rt::Scheduler sched;
  rt::EventBus bus;
  EchoSuo suo(sched, bus);
  auto program = core::compile_model(counter_model());
  auto monitor = core::MonitorBuilder(sched, bus)
                     .with_program(program)
                     .input_topic("suo.in")
                     .output_topic("suo.out")
                     .threshold("count", 0.0, 1)
                     .comparison_period(rt::msec(10))
                     .startup_grace(rt::msec(5))
                     .build();
  monitor->start();
  suo.input("inc");
  suo.output("count", std::int64_t{9});
  sched.run_for(rt::msec(100));
  EXPECT_EQ(monitor->errors().size(), 1u);
}

TEST(Monitor, BuildWithoutModelOrProgramThrows) {
  rt::Scheduler sched;
  rt::EventBus bus;
  EXPECT_THROW(core::MonitorBuilder(sched, bus).build(), std::logic_error);
}

// N monitors built from one ModelProgramPtr inside a fleet pack their
// state into one dense batch in the fleet's arena.
TEST(Monitor, FleetBatchesMonitorsSharingOneProgram) {
  rt::Scheduler sched;
  rt::EventBus bus;
  core::MonitorFleet fleet(sched, bus);
  auto program = core::compile_model(counter_model());
  for (int k = 0; k < 5; ++k) {
    core::MonitorBuilder builder;
    builder.with_program(program)
        .input_topic("suo.in")
        .output_topic("suo.out")
        .threshold("count", 0.0, 1)
        .comparison_period(rt::msec(10));
    fleet.add_monitor("aspect" + std::to_string(k), std::move(builder));
  }
  EXPECT_EQ(fleet.arena().batch_count(), 1u);
  EXPECT_EQ(fleet.arena().live_instances(), 5u);
  const auto* batch = fleet.arena().batch(program);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->slot_count(), 5u);
  fleet.start();
  EchoSuo suo(sched, bus);
  suo.input("inc");
  suo.output("count", std::int64_t{9});
  sched.run_for(rt::msec(100));
  // Every monitor watches the same topics, so each one reports.
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(fleet.error_count("aspect" + std::to_string(k)), 1u);
  }
}
