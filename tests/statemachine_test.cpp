// Tests for the timed hierarchical state machine engine: builder,
// interpreter, compiled executor (with an equivalence property suite),
// static checker and test scripts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "runtime/rng.hpp"
#include "statemachine/checker.hpp"
#include "statemachine/compiled.hpp"
#include "statemachine/definition.hpp"
#include "statemachine/machine.hpp"
#include "statemachine/test_script.hpp"

namespace sm = trader::statemachine;
namespace rt = trader::runtime;

namespace {

// A small traffic-light-ish machine used by several tests.
sm::StateMachineDef simple_machine() {
  sm::StateMachineDef def("simple");
  const auto red = def.add_state("Red");
  const auto green = def.add_state("Green");
  def.add_transition(red, green, "go");
  def.add_transition(green, red, "stop");
  return def;
}

}  // namespace

// ------------------------------------------------------------------- Builder

TEST(Definition, AddStateAssignsIdsAndPaths) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B", a);
  const auto c = def.add_state("C", b);
  EXPECT_EQ(def.path(c), "A.B.C");
  EXPECT_TRUE(def.is_ancestor(a, c));
  EXPECT_FALSE(def.is_ancestor(c, a));
  EXPECT_TRUE(def.is_ancestor(c, c));
}

TEST(Definition, FirstChildBecomesInitial) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B", a);
  def.add_state("C", a);
  EXPECT_EQ(def.state(a).initial_child, b);
}

TEST(Definition, SetInitialOverrides) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  def.add_state("B", a);
  const auto c = def.add_state("C", a);
  def.set_initial(a, c);
  EXPECT_EQ(def.state(a).initial_child, c);
}

TEST(Definition, SetInitialRejectsNonChild) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto x = def.add_state("X");
  EXPECT_THROW(def.set_initial(a, x), std::invalid_argument);
}

TEST(Definition, RejectsEmptyStateName) {
  sm::StateMachineDef def("m");
  EXPECT_THROW(def.add_state(""), std::invalid_argument);
}

TEST(Definition, RejectsInvalidStateIds) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  EXPECT_THROW(def.add_transition(a, 99, "e"), std::invalid_argument);
  EXPECT_THROW(def.on_entry(42, nullptr), std::invalid_argument);
}

TEST(Definition, RejectsEventlessAddTransition) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  EXPECT_THROW(def.add_transition(a, b, ""), std::invalid_argument);
}

TEST(Definition, RejectsNonPositiveTimedDelay) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  EXPECT_THROW(def.add_timed(a, b, 0), std::invalid_argument);
}

TEST(Definition, TopInitialMustBeTopLevel) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B", a);
  EXPECT_THROW(def.set_top_initial(b), std::invalid_argument);
}

TEST(Definition, FindStateByNameOrPath) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B", a);
  EXPECT_EQ(def.find_state("B"), b);
  EXPECT_EQ(def.find_state("A.B"), b);
  EXPECT_EQ(def.find_state("missing"), sm::kNoState);
}

// ---------------------------------------------------------------- Interpreter

TEST(Machine, StartEntersInitialConfiguration) {
  auto def = simple_machine();
  sm::StateMachine m(def);
  EXPECT_FALSE(m.started());
  m.start(0);
  EXPECT_TRUE(m.started());
  EXPECT_TRUE(m.in("Red"));
  EXPECT_EQ(m.active_leaf(), "Red");
}

TEST(Machine, DispatchFiresMatchingTransition) {
  auto def = simple_machine();
  sm::StateMachine m(def);
  m.start(0);
  EXPECT_TRUE(m.dispatch(sm::SmEvent::named("go"), 10));
  EXPECT_TRUE(m.in("Green"));
  EXPECT_FALSE(m.dispatch(sm::SmEvent::named("go"), 20));  // no transition
  EXPECT_TRUE(m.in("Green"));
}

TEST(Machine, HierarchicalEntryDrillsToLeaf) {
  sm::StateMachineDef def("m");
  const auto off = def.add_state("Off");
  const auto on = def.add_state("On");
  def.add_state("A", on);
  def.add_transition(off, on, "power");
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("power"), 1);
  EXPECT_TRUE(m.in("On"));
  EXPECT_TRUE(m.in("A"));
  EXPECT_EQ(m.active_leaf(), "On.A");
}

TEST(Machine, EntryExitActionOrder) {
  sm::StateMachineDef def("m");
  std::vector<std::string> trace;
  auto log = [&trace](const std::string& s) {
    return [&trace, s](sm::ActionEnv&) { trace.push_back(s); };
  };
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  const auto b1 = def.add_state("B1", b);
  def.on_entry(a, log("+A"));
  def.on_exit(a, log("-A"));
  def.on_entry(b, log("+B"));
  def.on_entry(b1, log("+B1"));
  def.add_transition(a, b, "e", nullptr, log("t"));
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("e"), 1);
  EXPECT_EQ(trace, (std::vector<std::string>{"+A", "-A", "t", "+B", "+B1"}));
}

TEST(Machine, InnermostHandlerWins) {
  sm::StateMachineDef def("m");
  const auto top = def.add_state("Top");
  const auto inner = def.add_state("Inner", top);
  const auto other = def.add_state("Other");
  const auto sibling = def.add_state("Sibling", top);
  def.add_transition(top, other, "e");
  def.add_transition(inner, sibling, "e");  // innermost takes priority
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("e"), 1);
  EXPECT_TRUE(m.in("Sibling"));
}

TEST(Machine, GuardBlocksTransition) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_transition(a, b, "e",
                     [](const sm::Context& c, const sm::SmEvent&) { return c.get_bool("ok"); });
  sm::StateMachine m(def);
  m.start(0);
  EXPECT_FALSE(m.dispatch(sm::SmEvent::named("e"), 1));
  m.vars().set_bool("ok", true);
  EXPECT_TRUE(m.dispatch(sm::SmEvent::named("e"), 2));
  EXPECT_TRUE(m.in("B"));
}

TEST(Machine, GuardedAlternativesPickFirstEnabled) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  const auto c = def.add_state("C");
  def.add_transition(a, b, "e",
                     [](const sm::Context& ctx, const sm::SmEvent&) { return ctx.get_bool("x"); });
  def.add_transition(a, c, "e");
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("e"), 1);
  EXPECT_TRUE(m.in("C"));
  m.reset();
  m.start(0);
  m.vars().set_bool("x", true);
  m.dispatch(sm::SmEvent::named("e"), 1);
  EXPECT_TRUE(m.in("B"));
}

TEST(Machine, InternalTransitionKeepsState) {
  sm::StateMachineDef def("m");
  int entries = 0;
  const auto a = def.add_state("A");
  def.on_entry(a, [&entries](sm::ActionEnv&) { ++entries; });
  def.add_internal(a, "e", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("n", env.vars.get_int("n") + 1);
  });
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("e"), 1);
  m.dispatch(sm::SmEvent::named("e"), 2);
  EXPECT_EQ(m.vars().get_int("n"), 2);
  EXPECT_EQ(entries, 1);  // never re-entered
}

TEST(Machine, SelfTransitionReExecutesEntry) {
  sm::StateMachineDef def("m");
  int entries = 0;
  const auto a = def.add_state("A");
  def.on_entry(a, [&entries](sm::ActionEnv&) { ++entries; });
  def.add_transition(a, a, "e");
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("e"), 1);
  EXPECT_EQ(entries, 2);
}

TEST(Machine, CompletionTransitionChains) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  const auto c = def.add_state("C");
  def.add_transition(a, b, "e");
  def.add_completion(b, c);  // fires immediately after entering B
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("e"), 1);
  EXPECT_TRUE(m.in("C"));
}

TEST(Machine, GuardedCompletionWaitsForCondition) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_completion(a, b,
                     [](const sm::Context& c, const sm::SmEvent&) { return c.get_bool("go"); });
  def.add_internal(a, "set", nullptr,
                   [](sm::ActionEnv& env) { env.vars.set_bool("go", true); });
  sm::StateMachine m(def);
  m.start(0);
  EXPECT_TRUE(m.in("A"));
  m.dispatch(sm::SmEvent::named("set"), 1);  // internal action then completion
  EXPECT_TRUE(m.in("B"));
}

TEST(Machine, CompletionLivelockIsDetectedNotInfinite) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_completion(a, b);
  def.add_completion(b, a);
  sm::StateMachine m(def);
  m.start(0);
  EXPECT_TRUE(m.livelock_detected());
}

TEST(Machine, HistoryRestoresLastChild) {
  sm::StateMachineDef def("m");
  const auto on = def.add_state("On");
  def.add_state("A", on);
  const auto bb = def.add_state("B", on);
  const auto off = def.add_state("Off");
  def.set_history(on, true);
  def.add_transition(def.find_state("A"), bb, "next");
  def.add_transition(on, off, "off");
  def.add_transition(off, on, "on");
  sm::StateMachine m(def);
  m.start(0);
  EXPECT_TRUE(m.in("A"));
  m.dispatch(sm::SmEvent::named("next"), 1);
  EXPECT_TRUE(m.in("B"));
  m.dispatch(sm::SmEvent::named("off"), 2);
  m.dispatch(sm::SmEvent::named("on"), 3);
  EXPECT_TRUE(m.in("B"));  // history, not initial child A
}

TEST(Machine, WithoutHistoryReentersInitial) {
  sm::StateMachineDef def("m");
  const auto on = def.add_state("On");
  def.add_state("A", on);
  const auto bb = def.add_state("B", on);
  const auto off = def.add_state("Off");
  def.add_transition(def.find_state("A"), bb, "next");
  def.add_transition(on, off, "off");
  def.add_transition(off, on, "on");
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("next"), 1);
  m.dispatch(sm::SmEvent::named("off"), 2);
  m.dispatch(sm::SmEvent::named("on"), 3);
  EXPECT_TRUE(m.in("A"));
}

TEST(Machine, TimedTransitionFiresAfterDwell) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_timed(a, b, 1000);
  sm::StateMachine m(def);
  m.start(0);
  EXPECT_EQ(m.advance_time(999), 0);
  EXPECT_TRUE(m.in("A"));
  EXPECT_EQ(m.advance_time(1000), 1);
  EXPECT_TRUE(m.in("B"));
}

TEST(Machine, NextDeadlineReportsEarliest) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_timed(a, b, 500);
  def.add_timed(a, b, 300);
  sm::StateMachine m(def);
  m.start(100);
  EXPECT_EQ(m.next_deadline(), 400);
}

TEST(Machine, NoDeadlineWithoutTimedTransitions) {
  auto def = simple_machine();
  sm::StateMachine m(def);
  m.start(0);
  EXPECT_EQ(m.next_deadline(), -1);
}

TEST(Machine, TimedChainFiresInDueOrder) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  const auto c = def.add_state("C");
  def.add_timed(a, b, 100);
  def.add_timed(b, c, 100);
  sm::StateMachine m(def);
  m.start(0);
  // One advance spanning both deadlines must fire both, at their
  // semantic instants (100 and 200).
  EXPECT_EQ(m.advance_time(250), 2);
  EXPECT_TRUE(m.in("C"));
}

TEST(Machine, SelfTransitionResetsDwellClock) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_timed(a, b, 1000);
  def.add_transition(a, a, "poke");
  sm::StateMachine m(def);
  m.start(0);
  m.advance_time(800);
  m.dispatch(sm::SmEvent::named("poke"), 800);  // re-enter A, reset clock
  EXPECT_EQ(m.advance_time(1500), 0);           // 800+1000 > 1500 ⇒ nothing
  EXPECT_TRUE(m.in("A"));
  EXPECT_EQ(m.advance_time(1800), 1);
  EXPECT_TRUE(m.in("B"));
}

TEST(Machine, TimedGuardEvaluatedAtFireTime) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_timed(a, b, 100,
                [](const sm::Context& c, const sm::SmEvent&) { return c.get_bool("armed"); });
  sm::StateMachine m(def);
  m.start(0);
  EXPECT_EQ(m.advance_time(500), 0);  // guard false: nothing fires
  m.vars().set_bool("armed", true);
  EXPECT_EQ(m.advance_time(500), 1);
  EXPECT_TRUE(m.in("B"));
}

TEST(Machine, EmitCollectsOutputs) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  def.on_entry(a, [](sm::ActionEnv& env) {
    env.emit("hello", {{"value", std::int64_t{1}}});
  });
  sm::StateMachine m(def);
  m.start(5);
  auto outs = m.drain_outputs();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].name, "hello");
  EXPECT_EQ(outs[0].time, 5);
  EXPECT_TRUE(m.drain_outputs().empty());  // drained
}

TEST(Machine, TransitionsFiredCounter) {
  auto def = simple_machine();
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("go"), 1);
  m.dispatch(sm::SmEvent::named("stop"), 2);
  EXPECT_EQ(m.transitions_fired(), 2u);
}

TEST(Machine, ResetClearsEverything) {
  auto def = simple_machine();
  sm::StateMachine m(def);
  m.start(0);
  m.vars().set_int("x", 3);
  m.dispatch(sm::SmEvent::named("go"), 1);
  m.reset();
  EXPECT_FALSE(m.started());
  EXPECT_FALSE(m.vars().has("x"));
  EXPECT_EQ(m.transitions_fired(), 0u);
}

TEST(Machine, DispatchBeforeStartIsNoop) {
  auto def = simple_machine();
  sm::StateMachine m(def);
  EXPECT_FALSE(m.dispatch(sm::SmEvent::named("go"), 0));
}

TEST(Machine, EventParamsReachGuardsAndActions) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_transition(
      a, b, "set",
      [](const sm::Context&, const sm::SmEvent& ev) {
        auto it = ev.params.find("n");
        return it != ev.params.end() && std::get<std::int64_t>(it->second) > 5;
      },
      [](sm::ActionEnv& env) {
        env.vars.set("n", env.event.params.at("n"));
      });
  sm::StateMachine m(def);
  m.start(0);
  sm::SmEvent low{"set", {{"n", std::int64_t{3}}}};
  EXPECT_FALSE(m.dispatch(low, 1));
  sm::SmEvent high{"set", {{"n", std::int64_t{9}}}};
  EXPECT_TRUE(m.dispatch(high, 2));
  EXPECT_EQ(m.vars().get_int("n"), 9);
}

// ------------------------------------------------------------------- Context

TEST(Context, TypedAccessorsAndDefaults) {
  sm::Context c;
  EXPECT_EQ(c.get_int("x", 7), 7);
  c.set_int("x", 3);
  c.set_num("d", 2.5);
  c.set_bool("b", true);
  c.set_str("s", "v");
  EXPECT_EQ(c.get_int("x"), 3);
  EXPECT_DOUBLE_EQ(c.get_num("d"), 2.5);
  EXPECT_DOUBLE_EQ(c.get_num("x"), 3.0);  // widening
  EXPECT_TRUE(c.get_bool("b"));
  EXPECT_TRUE(c.get_bool("x"));  // nonzero int is truthy
  EXPECT_EQ(c.get_str("s"), "v");
  EXPECT_EQ(c.get_str("x", "no"), "no");
  EXPECT_TRUE(c.has("x"));
  c.clear();
  EXPECT_FALSE(c.has("x"));
}

// ------------------------------------------------------------------ Compiled

TEST(Compiled, RejectsHistory) {
  sm::StateMachineDef def("m");
  const auto on = def.add_state("On");
  def.add_state("A", on);
  def.set_history(on, true);
  EXPECT_THROW(sm::CompiledMachine{def}, sm::CompileError);
}

TEST(Compiled, LeafCountMatchesDefinition) {
  sm::StateMachineDef def("m");
  const auto on = def.add_state("On");
  def.add_state("A", on);
  def.add_state("B", on);
  def.add_state("Off");
  sm::CompiledMachine cm(def);
  EXPECT_EQ(cm.leaf_count(), 3u);  // A, B, Off
}

TEST(Compiled, BasicDispatchMatchesInterpreter) {
  auto def = simple_machine();
  sm::CompiledMachine cm(def);
  cm.start(0);
  EXPECT_TRUE(cm.in("Red"));
  EXPECT_TRUE(cm.dispatch(sm::SmEvent::named("go"), 1));
  EXPECT_TRUE(cm.in("Green"));
}

// Equivalence property: random hierarchical machines (no history) driven
// by random event sequences behave identically under both executors.
namespace {

struct RandomMachine {
  std::unique_ptr<sm::StateMachineDef> def;
  std::vector<std::string> alphabet;
};

RandomMachine make_random_machine(std::uint64_t seed) {
  rt::Rng rng(seed);
  auto def = std::make_unique<sm::StateMachineDef>("rand");
  std::vector<sm::StateId> states;
  const int tops = static_cast<int>(rng.uniform_int(2, 4));
  for (int t = 0; t < tops; ++t) {
    const auto top = def->add_state("T" + std::to_string(t));
    states.push_back(top);
    const int kids = static_cast<int>(rng.uniform_int(0, 3));
    for (int k = 0; k < kids; ++k) {
      const auto kid = def->add_state("T" + std::to_string(t) + "K" + std::to_string(k), top);
      states.push_back(kid);
    }
  }
  std::vector<std::string> alphabet = {"a", "b", "c", "d"};
  const int transitions = static_cast<int>(rng.uniform_int(4, 14));
  for (int i = 0; i < transitions; ++i) {
    const auto src = states[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(states.size() - 1)))];
    const auto dst = states[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(states.size() - 1)))];
    const auto& ev = alphabet[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    sm::Guard guard = nullptr;
    if (rng.bernoulli(0.3)) {
      guard = [](const sm::Context& c, const sm::SmEvent&) { return c.get_int("ctr") % 2 == 0; };
    }
    sm::Action action = [](sm::ActionEnv& env) {
      env.vars.set_int("ctr", env.vars.get_int("ctr") + 1);
      env.emit("out", {{"value", env.vars.get_int("ctr")}});
    };
    def->add_transition(src, dst, ev, guard, action);
  }
  // A couple of timed transitions.
  const int timed = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < timed; ++i) {
    const auto src = states[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(states.size() - 1)))];
    const auto dst = states[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(states.size() - 1)))];
    def->add_timed(src, dst, rng.uniform_int(50, 500));
  }
  return RandomMachine{std::move(def), std::move(alphabet)};
}

}  // namespace

class ExecutorEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorEquivalence, InterpreterAndCompiledAgree) {
  const std::uint64_t seed = GetParam();
  RandomMachine rm = make_random_machine(seed);
  sm::StateMachine interp(*rm.def);
  sm::CompiledMachine compiled(*rm.def);
  interp.start(0);
  compiled.start(0);
  ASSERT_EQ(interp.active_leaf(), compiled.active_leaf());

  rt::Rng rng(seed ^ 0xABCD);
  rt::SimTime now = 0;
  for (int step = 0; step < 200; ++step) {
    if (rng.bernoulli(0.3)) {
      now += rng.uniform_int(10, 300);
      interp.advance_time(now);
      compiled.advance_time(now);
    } else {
      const auto& name =
          rm.alphabet[static_cast<std::size_t>(rng.uniform_int(0, 3))];
      const bool ri = interp.dispatch(sm::SmEvent::named(name), now);
      const bool rc = compiled.dispatch(sm::SmEvent::named(name), now);
      ASSERT_EQ(ri, rc) << "step " << step << " event " << name;
    }
    ASSERT_EQ(interp.active_leaf(), compiled.active_leaf()) << "step " << step;
    ASSERT_EQ(interp.vars().get_int("ctr"), compiled.vars().get_int("ctr")) << "step " << step;
    const auto oi = interp.drain_outputs();
    const auto oc = compiled.drain_outputs();
    ASSERT_EQ(oi.size(), oc.size()) << "step " << step;
    for (std::size_t k = 0; k < oi.size(); ++k) {
      EXPECT_EQ(oi[k].name, oc[k].name);
      EXPECT_EQ(rt::deviation(oi[k].fields.at("value"), oc[k].fields.at("value")), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMachines, ExecutorEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
                                           17, 18, 19, 20));

// -------------------------------------------------------------------- Checker

TEST(Checker, CleanMachineHasNoIssues) {
  auto def = simple_machine();
  sm::ModelChecker checker;
  const auto report = checker.check(def);
  EXPECT_TRUE(report.clean()) << report.issues.size();
}

TEST(Checker, DetectsUnreachableState) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_state("Island");
  def.add_transition(a, b, "e");
  def.add_transition(b, a, "f");
  sm::ModelChecker checker;
  const auto report = checker.check(def);
  EXPECT_TRUE(report.has(sm::IssueKind::kUnreachableState));
  EXPECT_GE(report.error_count(), 1u);
}

TEST(Checker, ReachabilityFollowsInitialChain) {
  sm::StateMachineDef def("m");
  const auto top = def.add_state("Top");
  def.add_state("Kid", top);
  sm::ModelChecker checker;
  const auto reach = checker.reachable_states(def);
  EXPECT_EQ(reach.size(), 2u);
}

TEST(Checker, DetectsNondeterministicPair) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  const auto c = def.add_state("C");
  def.add_transition(a, b, "e");
  def.add_transition(a, c, "e");  // competes, both unguarded
  def.add_transition(b, a, "x");
  def.add_transition(c, a, "x");
  sm::ModelChecker checker;
  EXPECT_TRUE(checker.check(def).has(sm::IssueKind::kNondeterministicChoice));
}

TEST(Checker, GuardedPairIsNotFlagged) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  const auto c = def.add_state("C");
  def.add_transition(a, b, "e",
                     [](const sm::Context&, const sm::SmEvent&) { return true; });
  def.add_transition(a, c, "e");
  def.add_transition(b, a, "x");
  def.add_transition(c, a, "x");
  sm::ModelChecker checker;
  EXPECT_FALSE(checker.check(def).has(sm::IssueKind::kNondeterministicChoice));
}

TEST(Checker, DetectsCompletionLivelockCycle) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_completion(a, b);
  def.add_completion(b, a);
  sm::ModelChecker checker;
  EXPECT_TRUE(checker.check(def).has(sm::IssueKind::kCompletionLivelock));
}

TEST(Checker, DetectsSinkState) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto sink = def.add_state("Sink");
  def.add_transition(a, sink, "e");
  sm::ModelChecker checker;
  const auto report = checker.check(def);
  EXPECT_TRUE(report.has(sm::IssueKind::kSinkState));
}

TEST(Checker, AncestorHandlerPreventsSinkFlag) {
  sm::StateMachineDef def("m");
  const auto on = def.add_state("On");
  def.add_state("Leaf", on);
  const auto off = def.add_state("Off");
  def.add_transition(on, off, "off");
  def.add_transition(off, on, "on");
  sm::ModelChecker checker;
  EXPECT_FALSE(checker.check(def).has(sm::IssueKind::kSinkState));
}

TEST(Checker, DetectsFullyShadowedTransition) {
  sm::StateMachineDef def("m");
  const auto top = def.add_state("Top");
  const auto leaf = def.add_state("Leaf", top);
  const auto other = def.add_state("Other");
  def.add_transition(top, other, "e");   // shadowed from every leaf
  def.add_transition(leaf, leaf, "e");   // closer unguarded handler
  def.add_transition(other, top, "x");
  sm::ModelChecker checker;
  EXPECT_TRUE(checker.check(def).has(sm::IssueKind::kShadowedTransition));
}

TEST(Checker, IssueKindNames) {
  EXPECT_STREQ(sm::to_string(sm::IssueKind::kUnreachableState), "unreachable-state");
  EXPECT_STREQ(sm::to_string(sm::IssueKind::kCompletionLivelock), "completion-livelock");
}

// ----------------------------------------------------------------- TestScript

TEST(TestScript, PassingScenario) {
  auto def = simple_machine();
  sm::StateMachine m(def);
  sm::TestScript script("basic");
  script.inject("go").expect_state("Green").inject("stop").expect_state("Red");
  const auto result = script.run(m);
  EXPECT_TRUE(result.passed());
}

TEST(TestScript, FailureIsReportedWithStepIndex) {
  auto def = simple_machine();
  sm::StateMachine m(def);
  sm::TestScript script("wrong");
  script.inject("go").expect_state("Red");
  const auto result = script.run(m);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].step_index, 1u);
}

TEST(TestScript, AdvanceDrivesTimedTransitions) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_timed(a, b, 1000);
  sm::StateMachine m(def);
  sm::TestScript script("timed");
  script.advance(999).expect_state("A").advance(1).expect_state("B");
  EXPECT_TRUE(script.run(m).passed());
}

TEST(TestScript, ExpectVarAndOutput) {
  sm::StateMachineDef def("m");
  const auto a = def.add_state("A");
  def.add_internal(a, "e", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("x", 5);
    env.emit("ping", {});
  });
  sm::StateMachine m(def);
  sm::TestScript script("vars");
  script.inject("e").expect_var("x", std::int64_t{5}).expect_output("ping");
  EXPECT_TRUE(script.run(m).passed());
}

TEST(TestScript, ExpectNotState) {
  auto def = simple_machine();
  sm::StateMachine m(def);
  sm::TestScript script("not");
  script.expect_not_state("Green").inject("go").expect_not_state("Red");
  EXPECT_TRUE(script.run(m).passed());
}

TEST(TestScript, RunsAgainstCompiledExecutorToo) {
  auto def = simple_machine();
  sm::CompiledMachine cm(def);
  sm::TestScript script("compiled");
  script.inject("go").expect_state("Green");
  EXPECT_TRUE(script.run(cm).passed());
}

TEST(TestScript, MissingVarFails) {
  auto def = simple_machine();
  sm::StateMachine m(def);
  sm::TestScript script("missing");
  script.expect_var("nope", std::int64_t{1});
  EXPECT_FALSE(script.run(m).passed());
}
