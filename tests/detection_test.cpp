// Tests for the auxiliary detectors (§4.3): range checking, watchdog,
// deadlock detection, and mode-consistency checking — including the
// paper's teletext desync case against the real TV simulator.
#include <gtest/gtest.h>

#include "detection/detectors.hpp"
#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/tv_system.hpp"

namespace det = trader::detection;
namespace rt = trader::runtime;
namespace obs = trader::observation;
namespace tv = trader::tv;
namespace flt = trader::faults;

// --------------------------------------------------------------- DetectionLog

TEST(DetectionLog, CountsAndFirstTimes) {
  det::DetectionLog log;
  log.add(det::Detection{"mode", "rule-a", "m", 100});
  log.add(det::Detection{"mode", "rule-a", "m", 200});
  log.add(det::Detection{"range", "p", "m", 50});
  EXPECT_EQ(log.count("mode"), 2u);
  EXPECT_EQ(log.count("range"), 1u);
  EXPECT_EQ(log.first("mode", "rule-a"), 100);
  EXPECT_EQ(log.first("mode", "missing"), -1);
  log.clear();
  EXPECT_TRUE(log.all().empty());
}

// --------------------------------------------------------------- RangeChecker

TEST(RangeChecker, DrainsViolationsOnce) {
  obs::ProbeRegistry probes;
  probes.set_range("v", 0, 10);
  det::DetectionLog log;
  det::RangeChecker checker(probes);
  probes.update("v", 15.0, 100);
  EXPECT_EQ(checker.poll(log), 1u);
  EXPECT_EQ(checker.poll(log), 0u);  // idempotent
  probes.update("v", 20.0, 200);
  EXPECT_EQ(checker.poll(log), 1u);
  EXPECT_EQ(log.count("range"), 2u);
  EXPECT_EQ(log.first("range", "v"), 100);
}

TEST(RangeChecker, InRangeValuesAreQuiet) {
  obs::ProbeRegistry probes;
  probes.set_range("v", 0, 10);
  det::DetectionLog log;
  det::RangeChecker checker(probes);
  for (int i = 0; i <= 10; ++i) probes.update("v", static_cast<double>(i), i);
  EXPECT_EQ(checker.poll(log), 0u);
}

// ------------------------------------------------------------------- Watchdog

TEST(Watchdog, FiresOnMissedHeartbeat) {
  det::Watchdog dog;
  det::DetectionLog log;
  dog.register_component("decoder", rt::msec(100));
  dog.kick("decoder", 0);
  EXPECT_EQ(dog.check(rt::msec(100), log), 0u);
  EXPECT_EQ(dog.check(rt::msec(101), log), 1u);
  EXPECT_TRUE(dog.expired("decoder"));
  // Only reported once until the next kick.
  EXPECT_EQ(dog.check(rt::msec(500), log), 0u);
  dog.kick("decoder", rt::msec(500));
  EXPECT_FALSE(dog.expired("decoder"));
  EXPECT_EQ(dog.check(rt::msec(700), log), 1u);
}

TEST(Watchdog, UnknownKickIgnored) {
  det::Watchdog dog;
  dog.kick("ghost", 10);  // must not crash or register
  det::DetectionLog log;
  EXPECT_EQ(dog.check(1000, log), 0u);
}

// ----------------------------------------------------------- DeadlockDetector

TEST(Deadlock, DetectsTwoCycle) {
  det::DeadlockDetector dd;
  det::DetectionLog log;
  const std::vector<std::pair<std::string, std::string>> edges = {{"a", "b"}, {"b", "a"}};
  EXPECT_EQ(dd.check(edges, 10, log), 1u);
  ASSERT_EQ(log.all().size(), 1u);
  EXPECT_EQ(log.all()[0].detector, "deadlock");
}

TEST(Deadlock, NoCycleNoReport) {
  det::DeadlockDetector dd;
  det::DetectionLog log;
  EXPECT_EQ(dd.check({{"a", "b"}, {"b", "c"}}, 10, log), 0u);
  EXPECT_EQ(dd.check({}, 20, log), 0u);
}

TEST(Deadlock, SameCycleReportedOnceThenRearms) {
  det::DeadlockDetector dd;
  det::DetectionLog log;
  const std::vector<std::pair<std::string, std::string>> edges = {{"a", "b"}, {"b", "a"}};
  EXPECT_EQ(dd.check(edges, 10, log), 1u);
  EXPECT_EQ(dd.check(edges, 20, log), 0u);  // still the same deadlock
  EXPECT_EQ(dd.check({}, 30, log), 0u);     // resolved
  EXPECT_EQ(dd.check(edges, 40, log), 1u);  // new occurrence
}

TEST(Deadlock, DetectsLongerCycleAmongChains) {
  det::DeadlockDetector dd;
  det::DetectionLog log;
  const std::vector<std::pair<std::string, std::string>> edges = {
      {"x", "a"}, {"a", "b"}, {"b", "c"}, {"c", "a"}};
  EXPECT_EQ(dd.check(edges, 10, log), 1u);
  EXPECT_NE(log.all()[0].subject.find("a"), std::string::npos);
}

// ---------------------------------------------------- ModeConsistencyChecker

TEST(ModeChecker, DebouncesTransientInconsistency) {
  det::ModeConsistencyChecker checker;
  checker.add_rule(det::ModeRule{
      "pair", "x must equal y",
      [](const std::map<std::string, rt::Value>& m) {
        return rt::deviation(m.at("x"), m.at("y")) == 0.0;
      },
      3});
  det::DetectionLog log;
  std::map<std::string, rt::Value> bad{{"x", std::int64_t{1}}, {"y", std::int64_t{2}}};
  std::map<std::string, rt::Value> good{{"x", std::int64_t{1}}, {"y", std::int64_t{1}}};
  EXPECT_EQ(checker.check(bad, 1, log), 0u);
  EXPECT_EQ(checker.check(bad, 2, log), 0u);
  EXPECT_EQ(checker.check(good, 3, log), 0u);  // debounce reset
  EXPECT_EQ(checker.check(bad, 4, log), 0u);
  EXPECT_EQ(checker.check(bad, 5, log), 0u);
  EXPECT_EQ(checker.check(bad, 6, log), 1u);   // third consecutive
  EXPECT_EQ(checker.check(bad, 7, log), 0u);   // episode already reported
}

TEST(ModeChecker, TvRulesAcceptHealthySnapshot) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(5));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(300));
  det::ModeConsistencyChecker checker;
  for (auto& rule : det::tv_mode_rules()) checker.add_rule(rule);
  det::DetectionLog log;
  for (int i = 0; i < 10; ++i) {
    sched.run_for(rt::msec(20));
    checker.check(set.mode_snapshot(), sched.now(), log);
  }
  EXPECT_TRUE(log.all().empty());
}

TEST(ModeChecker, DetectsTeletextDesyncOnRealTv) {
  // The paper's §4.3 success story: a mode-consistency check catches
  // teletext problems caused by a lost synchronization message.
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(5));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(200));
  set.press(tv::Key::kTeletext);
  sched.run_for(rt::msec(200));

  det::ModeConsistencyChecker checker;
  for (auto& rule : det::tv_mode_rules()) checker.add_rule(rule);
  det::DetectionLog log;

  injector.schedule(flt::FaultSpec{flt::FaultKind::kModeDesync, "teletext", sched.now(), 0, 1.0,
                                   {}});
  for (int i = 0; i < 20; ++i) {
    sched.run_for(rt::msec(20));
    checker.check(set.mode_snapshot(), sched.now(), log);
  }
  EXPECT_GE(log.count("mode"), 1u);
  EXPECT_GE(log.first("mode", "ttx-channel-sync"), 0);
}

TEST(ModeChecker, DetectsVolumeBeliefDivergence) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(5));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(200));
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", sched.now(), 0,
                                   1.0, {}});
  set.press(tv::Key::kVolumeUp);

  det::ModeConsistencyChecker checker;
  for (auto& rule : det::tv_mode_rules()) checker.add_rule(rule);
  det::DetectionLog log;
  for (int i = 0; i < 10; ++i) {
    sched.run_for(rt::msec(20));
    checker.check(set.mode_snapshot(), sched.now(), log);
  }
  EXPECT_GE(log.first("mode", "control-audio-volume"), 0);
}

TEST(ModeChecker, DeadlockFaultOnTvIsDetected) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(5));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(200));
  injector.schedule(flt::FaultSpec{flt::FaultKind::kDeadlock, "av", sched.now(), 0, 1.0, {}});
  sched.run_for(rt::msec(100));
  det::DeadlockDetector dd;
  det::DetectionLog log;
  EXPECT_EQ(dd.check(set.wait_edges(), sched.now(), log), 1u);
}

TEST(RangeChecker, CatchesCorruptedVolumeProbeOnTv) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector(rt::Rng(5));
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(200));
  // Memory corruption writes an out-of-range volume into the probe.
  set.probes().update("audio.volume", std::int64_t{250}, sched.now());
  det::DetectionLog log;
  det::RangeChecker checker(set.probes());
  EXPECT_GE(checker.poll(log), 1u);
}
