// Tests for the sharded fleet runtime and the metrics layer: instrument
// semantics, snapshot merging, deterministic mailbox drain order,
// MonitorBuilder contract checks, cross-shard delivery, the IControl
// idempotency guarantees, and — the load-bearing property — identical
// error reports for the same seed across 1, 2 and 8 shards.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/monitor_builder.hpp"
#include "core/sharded_fleet.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/metrics.hpp"
#include "testkit/golden_trace.hpp"

namespace core = trader::core;
namespace rt = trader::runtime;
namespace sm = trader::statemachine;
namespace tk = trader::testkit;

// ------------------------------------------------------------------- Metrics

TEST(Metrics, CounterAndGaugeBasics) {
  rt::MetricsRegistry reg;
  auto& c = reg.counter("hits");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&reg.counter("hits"), &c);  // same instrument on re-lookup
  reg.gauge("depth").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 2.5);
}

TEST(Metrics, HistogramBucketsAndQuantile) {
  rt::Histogram h({10.0, 100.0, 1000.0});
  for (double v : {1.0, 5.0, 50.0, 500.0, 5000.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 5556.0);
  EXPECT_EQ(h.bucket(0), 2u);  // <= 10
  EXPECT_EQ(h.bucket(1), 1u);  // <= 100
  EXPECT_EQ(h.bucket(2), 1u);  // <= 1000
  EXPECT_EQ(h.bucket(3), 1u);  // overflow
  rt::MetricsRegistry reg;
  auto& lat = reg.histogram("lat", {10.0, 100.0, 1000.0});
  for (double v : {1.0, 5.0, 50.0, 500.0, 5000.0}) lat.record(v);
  const auto snap = reg.snapshot().histograms.at("lat");
  EXPECT_LE(snap.quantile(0.1), snap.quantile(0.9));
  EXPECT_DOUBLE_EQ(snap.mean(), 5556.0 / 5.0);
}

TEST(Metrics, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const auto bounds = rt::Histogram::default_latency_bounds();
  ASSERT_GE(bounds.size(), 4u);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(Metrics, SnapshotMergeAddsAcrossRegistries) {
  rt::MetricsRegistry a;
  rt::MetricsRegistry b;
  a.counter("ticks").inc(3);
  b.counter("ticks").inc(4);
  b.counter("only_b").inc(1);
  a.gauge("monitors").set(2.0);
  b.gauge("monitors").set(5.0);
  a.histogram("lat", {10.0}).record(1.0);
  b.histogram("lat", {10.0}).record(100.0);

  auto merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counter("ticks"), 7u);
  EXPECT_EQ(merged.counter("only_b"), 1u);
  EXPECT_EQ(merged.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("monitors"), 7.0);
  const auto& lat = merged.histograms.at("lat");
  EXPECT_EQ(lat.count, 2u);
  EXPECT_EQ(lat.buckets[0], 1u);  // <= 10
  EXPECT_EQ(lat.buckets[1], 1u);  // overflow
}

TEST(Metrics, JsonExportMentionsEveryInstrument) {
  rt::MetricsRegistry reg;
  reg.counter("fleet.epochs").inc(12);
  reg.gauge("fleet.shards").set(4.0);
  reg.histogram("tick_ns", {100.0}).record(50.0);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("fleet.epochs"), std::string::npos);
  EXPECT_NE(json.find("12"), std::string::npos);
  EXPECT_NE(json.find("fleet.shards"), std::string::npos);
  EXPECT_NE(json.find("tick_ns"), std::string::npos);
}

// ------------------------------------------------------------------- Mailbox

TEST(Mailbox, DrainsInSendTimeSourceSequenceOrder) {
  rt::Mailbox box;
  auto entry = [](rt::SimTime at, std::uint32_t source, std::uint64_t seq) {
    rt::Event ev;
    ev.name = std::to_string(at) + "/" + std::to_string(source) + "/" + std::to_string(seq);
    return rt::MailboxEntry{ev, at, source, seq};
  };
  // Push deliberately out of order, as racing producers would.
  box.push(entry(20, 1, 0));
  box.push(entry(10, 2, 5));
  box.push(entry(10, 0, 9));
  box.push(entry(10, 0, 3));
  box.push(entry(20, 0, 1));
  const auto drained = box.drain();
  ASSERT_EQ(drained.size(), 5u);
  EXPECT_EQ(drained[0].event.name, "10/0/3");
  EXPECT_EQ(drained[1].event.name, "10/0/9");
  EXPECT_EQ(drained[2].event.name, "10/2/5");
  EXPECT_EQ(drained[3].event.name, "20/0/1");
  EXPECT_EQ(drained[4].event.name, "20/1/0");
  EXPECT_TRUE(box.drain().empty());  // drain empties the box
}

// ------------------------------------------------------------ MonitorBuilder

namespace {

// The familiar counter spec model: increments on "inc", emits "count".
sm::StateMachineDef counter_model() {
  sm::StateMachineDef def("counter");
  const auto s = def.add_state("S");
  def.add_internal(s, "inc", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("n", env.vars.get_int("n") + 1);
    env.emit("count", {{"value", env.vars.get_int("n")}});
  });
  return def;
}

core::MonitorBuilder counter_monitor(const std::string& in, const std::string& out) {
  core::MonitorBuilder builder;
  builder.model(counter_model())
      .input_topic(in)
      .output_topic(out)
      .threshold("count", 0.0, /*max_consecutive=*/2)
      .comparison_period(rt::msec(10))
      .startup_grace(rt::msec(5));
  return builder;
}

}  // namespace

TEST(Builder, BuildWithoutRuntimeThrows) {
  core::MonitorBuilder unbound;
  unbound.model(counter_model());
  EXPECT_THROW(unbound.build(), std::logic_error);
}

TEST(Builder, BuildWithoutModelThrows) {
  rt::Scheduler sched;
  rt::EventBus bus;
  core::MonitorBuilder builder(sched, bus);
  EXPECT_THROW(builder.build(), std::logic_error);
}

TEST(Builder, FirstOutputTopicReplacesDefault) {
  core::MonitorBuilder builder;
  ASSERT_EQ(builder.output_topics().size(), 1u);
  EXPECT_EQ(builder.output_topics()[0], "tv.output");
  builder.output_topic("a").output_topic("b");
  ASSERT_EQ(builder.output_topics().size(), 2u);
  EXPECT_EQ(builder.output_topics()[0], "a");
  EXPECT_EQ(builder.output_topics()[1], "b");
}

// ------------------------------------------------ ShardedFleet: determinism

namespace {

// One scripted multi-monitor session: drive `monitors` counter monitors
// via the external publish path, dropping one command's effect on odd
// monitors (the fault). Returns the golden trace of all reported errors.
tk::GoldenTrace run_session(std::size_t shards, int monitors = 6) {
  core::ShardedFleetConfig cfg;
  cfg.shards = shards;
  cfg.epoch = rt::msec(5);
  cfg.seed = 42;
  core::ShardedFleet fleet(cfg);
  for (int m = 0; m < monitors; ++m) {
    fleet.add_monitor("aspect" + std::to_string(m),
                      counter_monitor("in." + std::to_string(m), "out." + std::to_string(m)));
  }
  fleet.start();

  std::vector<std::int64_t> system_count(static_cast<std::size_t>(monitors), 0);
  for (int step = 0; step < 12; ++step) {
    for (int m = 0; m < monitors; ++m) {
      rt::Event in;
      in.topic = "in." + std::to_string(m);
      in.name = "key";
      in.fields["key"] = std::string("inc");
      fleet.publish(in);
      // Odd monitors silently drop the effect of command #4: the model
      // expects the increment, the system output stays behind.
      if (!(m % 2 == 1 && step == 4)) ++system_count[static_cast<std::size_t>(m)];
      rt::Event out;
      out.topic = "out." + std::to_string(m);
      out.name = "count";
      out.fields["value"] = system_count[static_cast<std::size_t>(m)];
      fleet.publish(out);
    }
    fleet.run_for(rt::msec(20));
  }
  fleet.run_for(rt::msec(100));
  fleet.stop();

  tk::GoldenTrace trace;
  trace.capture_errors(fleet.errors());
  return trace;
}

}  // namespace

TEST(ShardedFleet, SameSeedSameErrorsAcrossShardCounts) {
  const auto one = run_session(1);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one.lines().size(), 3u);  // aspects 1, 3, 5 diverge
  const auto d2 = tk::GoldenTrace::diff(one, run_session(2));
  EXPECT_TRUE(d2.identical) << d2.describe();
  const auto d8 = tk::GoldenTrace::diff(one, run_session(8));
  EXPECT_TRUE(d8.identical) << d8.describe();
}

TEST(ShardedFleet, RepeatedRunsAreIdentical) {
  EXPECT_EQ(run_session(4).fingerprint(), run_session(4).fingerprint());
}

// ------------------------------------------- ShardedFleet: delivery + routes

TEST(ShardedFleet, ExternalEventsArriveAtNextEpochBoundary) {
  core::ShardedFleetConfig cfg;
  cfg.shards = 4;
  cfg.epoch = rt::msec(10);
  core::ShardedFleet fleet(cfg);
  fleet.add_route("ping", 2);
  std::vector<rt::SimTime> arrivals;
  fleet.shard(2).bus().subscribe("ping", [&](const rt::Event& ev) {
    arrivals.push_back(ev.timestamp);
  });
  rt::Event ev;
  ev.topic = "ping";
  ev.name = "hello";
  fleet.publish(ev);  // sent at t=0
  fleet.run_for(rt::msec(25));
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 0);  // drained before the first epoch runs
  EXPECT_GE(fleet.metrics().counter("fleet.external_events"), 1u);
}

TEST(ShardedFleet, ShardPublishCrossesShards) {
  core::ShardedFleetConfig cfg;
  cfg.shards = 4;
  cfg.epoch = rt::msec(10);
  core::ShardedFleet fleet(cfg);
  fleet.add_route("pong", 3);
  std::vector<rt::SimTime> arrivals;
  fleet.shard(3).bus().subscribe("pong", [&](const rt::Event& ev) {
    arrivals.push_back(ev.timestamp);
  });
  // A task inside shard 0 publishes mid-epoch; shard 3 must see it at
  // the next boundary, not mid-flight.
  fleet.shard(0).sched().schedule_at(rt::msec(12), [&fleet] {
    rt::Event ev;
    ev.topic = "pong";
    ev.name = "from_shard0";
    fleet.shard(0).publish(ev);
  });
  fleet.run_for(rt::msec(40));
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], rt::msec(20));  // sent in (10,20] -> delivered at 20
  EXPECT_GE(fleet.metrics().counter("fleet.cross_shard_out"), 1u);
}

TEST(ShardedFleet, UnroutedEventsAreCountedNotDelivered) {
  core::ShardedFleet fleet({2, rt::msec(10), 7});
  rt::Event ev;
  ev.topic = "nobody.listens";
  fleet.publish(ev);
  EXPECT_EQ(fleet.metrics().counter("fleet.unrouted_events"), 1u);
}

TEST(ShardedFleet, PlacementIsStableAndAddWhileRunningThrows) {
  core::ShardedFleetConfig cfg;
  cfg.shards = 8;
  core::ShardedFleet fleet(cfg);
  const auto s = fleet.shard_of("sound");
  EXPECT_EQ(fleet.shard_of("sound"), s);  // same run
  core::ShardedFleet other(cfg);
  EXPECT_EQ(other.shard_of("sound"), s);  // different fleet instance
  fleet.add_monitor("sound", counter_monitor("in.s", "out.s"));
  EXPECT_EQ(&fleet.monitor("sound"), &fleet.monitor("sound"));
  EXPECT_THROW(fleet.monitor("ghost"), std::out_of_range);
  fleet.start();
  EXPECT_THROW(fleet.add_monitor("late", counter_monitor("in.l", "out.l")), std::logic_error);
  fleet.stop();
}

// -------------------------------------------- IControl lifecycle idempotency

TEST(Lifecycle, DoubleStartDoesNotDoubleTick) {
  rt::Scheduler sched;
  rt::EventBus bus;
  rt::MetricsRegistry metrics;
  auto monitor = counter_monitor("in.x", "out.x").metrics(&metrics).build(sched, bus);
  monitor->start();
  monitor->start();  // must be a no-op, not a second periodic tick
  sched.run_until(rt::msec(100));
  const auto ticks = metrics.snapshot().counter("controller.ticks");
  EXPECT_GT(ticks, 0u);
  // 10 ms period over 100 ms: ~10 ticks if single-scheduled, ~20 if the
  // second start() registered another periodic task.
  EXPECT_LE(ticks, 12u);
}

TEST(Lifecycle, StopIsIdempotentAndRestartWorks) {
  rt::Scheduler sched;
  rt::EventBus bus;
  auto monitor = counter_monitor("in.x", "out.x").build(sched, bus);
  EXPECT_FALSE(monitor->running());
  monitor->start();
  EXPECT_TRUE(monitor->running());
  monitor->stop();
  monitor->stop();  // second stop is a no-op
  EXPECT_FALSE(monitor->running());
  monitor->start();  // restart after stop is supported
  EXPECT_TRUE(monitor->running());
  sched.run_until(rt::msec(50));
  monitor->stop();
}

TEST(Lifecycle, FleetStartStopIdempotent) {
  core::ShardedFleet fleet({2, rt::msec(10), 1});
  fleet.add_monitor("a", counter_monitor("in.a", "out.a"));
  EXPECT_FALSE(fleet.running());
  fleet.start();
  fleet.start();  // no-op
  EXPECT_TRUE(fleet.running());
  fleet.run_for(rt::msec(50));
  fleet.stop();
  fleet.stop();  // no-op
  EXPECT_FALSE(fleet.running());
  fleet.start();  // restart
  fleet.run_for(rt::msec(50));
  EXPECT_TRUE(fleet.running());
}

// ------------------------------------------------- metrics wired end to end

TEST(ShardedFleet, MetricsCoverTheWholeLoop) {
  core::ShardedFleetConfig cfg;
  cfg.shards = 2;
  cfg.epoch = rt::msec(5);
  core::ShardedFleet fleet(cfg);
  for (int m = 0; m < 4; ++m) {
    fleet.add_monitor("aspect" + std::to_string(m),
                      counter_monitor("in." + std::to_string(m), "out." + std::to_string(m)));
  }
  fleet.start();
  for (int m = 0; m < 4; ++m) {
    rt::Event in;
    in.topic = "in." + std::to_string(m);
    in.name = "key";
    in.fields["key"] = std::string("inc");
    fleet.publish(in);
    rt::Event out;
    out.topic = "out." + std::to_string(m);
    out.name = "count";
    out.fields["value"] = std::int64_t{0};  // all four diverge
    fleet.publish(out);
  }
  fleet.run_for(rt::msec(200));
  fleet.stop();

  const auto snap = fleet.metrics();
  EXPECT_GT(snap.counter("fleet.epochs"), 0u);
  EXPECT_GT(snap.counter("fleet.external_events"), 0u);
  EXPECT_GT(snap.counter("controller.ticks"), 0u);
  EXPECT_GT(snap.counter("comparator.comparisons"), 0u);
  EXPECT_GT(snap.counter("comparator.deviations"), 0u);
  EXPECT_EQ(snap.counter("comparator.errors"), 4u);
  EXPECT_GT(snap.counter("model.inputs"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("fleet.shards"), 2.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("fleet.monitors"), 4.0);
  const auto& lat = snap.histograms.at("controller.tick_latency_ns");
  EXPECT_GT(lat.count, 0u);
  EXPECT_GT(lat.mean(), 0.0);
  // The whole snapshot exports as JSON for the bench trajectories.
  EXPECT_NE(snap.to_json().find("comparator.comparisons"), std::string::npos);
}
