// Tests for the TV simulator: keys, signal model, SoC resources,
// components, the control unit, and the integrated TvSystem with fault
// injection.
#include <gtest/gtest.h>

#include <set>

#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/components.hpp"
#include "tv/control.hpp"
#include "tv/keys.hpp"
#include "tv/signal.hpp"
#include "tv/soc.hpp"
#include "tv/tv_system.hpp"

namespace tv = trader::tv;
namespace rt = trader::runtime;
namespace flt = trader::faults;

// ----------------------------------------------------------------------- Keys

TEST(Keys, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(tv::Key::kSource); ++i) {
    const auto k = static_cast<tv::Key>(i);
    const auto parsed = tv::key_from_string(tv::to_string(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(tv::key_from_string("bogus").has_value());
}

TEST(Keys, DigitHelpers) {
  EXPECT_EQ(tv::digit_of(tv::Key::kDigit0), 0);
  EXPECT_EQ(tv::digit_of(tv::Key::kDigit9), 9);
  EXPECT_FALSE(tv::digit_of(tv::Key::kMute).has_value());
  EXPECT_EQ(tv::digit_key(4), tv::Key::kDigit4);
}

// --------------------------------------------------------------------- Signal

TEST(Signal, StandardLineupProperties) {
  auto lineup = tv::ChannelLineup::standard_lineup(40);
  EXPECT_EQ(lineup.count(), 40);
  EXPECT_TRUE(lineup.valid(1));
  EXPECT_TRUE(lineup.valid(40));
  EXPECT_FALSE(lineup.valid(0));
  EXPECT_FALSE(lineup.valid(41));
}

TEST(Signal, NextWrapsAround) {
  auto lineup = tv::ChannelLineup::standard_lineup(5);
  EXPECT_EQ(lineup.next(1, +1), 2);
  EXPECT_EQ(lineup.next(5, +1), 1);
  EXPECT_EQ(lineup.next(1, -1), 5);
  EXPECT_EQ(lineup.next(3, -1), 2);
}

TEST(Signal, NextFromUnknownChannelGoesToFirst) {
  auto lineup = tv::ChannelLineup::standard_lineup(5);
  EXPECT_EQ(lineup.next(99, +1), 1);
  EXPECT_EQ(lineup.next(99, -1), 1);
}

TEST(Signal, SampleQualityClampedAndPenalized) {
  auto lineup = tv::ChannelLineup::standard_lineup(10);
  for (int i = 0; i < 50; ++i) {
    const auto unit = lineup.sample(1, i);
    EXPECT_GE(unit.quality, 0.0);
    EXPECT_LE(unit.quality, 1.0);
  }
  const auto degraded = lineup.sample(1, 100, 0.9);
  EXPECT_LT(degraded.quality, 0.2);
}

TEST(Signal, InvalidChannelHasZeroQuality) {
  auto lineup = tv::ChannelLineup::standard_lineup(10);
  EXPECT_DOUBLE_EQ(lineup.sample(99, 0).quality, 0.0);
}

TEST(Signal, DecodeCostOrdering) {
  EXPECT_LT(tv::decode_cost_factor(tv::CodingStandard::kAnalog),
            tv::decode_cost_factor(tv::CodingStandard::kMpeg2));
  EXPECT_LT(tv::decode_cost_factor(tv::CodingStandard::kMpeg2),
            tv::decode_cost_factor(tv::CodingStandard::kH264));
}

// ------------------------------------------------------------------ Processor

TEST(Processor, UnderloadServesEverythingFully) {
  tv::Processor cpu("p", 100.0);
  cpu.add_task("a", 30.0, 1);
  cpu.add_task("b", 40.0, 2);
  cpu.service();
  EXPECT_DOUBLE_EQ(cpu.last_fraction("a"), 1.0);
  EXPECT_DOUBLE_EQ(cpu.last_fraction("b"), 1.0);
  EXPECT_DOUBLE_EQ(cpu.load(), 0.7);
}

TEST(Processor, OverloadHitsLowPriorityFirst) {
  tv::Processor cpu("p", 100.0);
  cpu.add_task("high", 80.0, 5);
  cpu.add_task("low", 60.0, 1);
  cpu.service();
  EXPECT_DOUBLE_EQ(cpu.last_fraction("high"), 1.0);
  EXPECT_NEAR(cpu.last_fraction("low"), 20.0 / 60.0, 1e-9);
}

TEST(Processor, EqualPrioritySharesFairly) {
  tv::Processor cpu("p", 100.0);
  cpu.add_task("a", 100.0, 1);
  cpu.add_task("b", 100.0, 1);
  cpu.service();
  EXPECT_NEAR(cpu.last_fraction("a"), 0.5, 1e-9);
  EXPECT_NEAR(cpu.last_fraction("b"), 0.5, 1e-9);
}

TEST(Processor, RemoveAndRetune) {
  tv::Processor cpu("p", 100.0);
  cpu.add_task("a", 50.0, 1);
  EXPECT_TRUE(cpu.has_task("a"));
  cpu.set_task_cost("a", 70.0);
  EXPECT_DOUBLE_EQ(cpu.task_cost("a"), 70.0);
  cpu.remove_task("a");
  EXPECT_FALSE(cpu.has_task("a"));
  EXPECT_DOUBLE_EQ(cpu.load(), 0.0);
}

// ------------------------------------------------------------------------ Bus

TEST(Bus, ProportionalUnderOverload) {
  tv::Bus bus(100.0);
  bus.request("a", 150.0);
  bus.request("b", 50.0);
  auto grants = bus.service();
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_NEAR(bus.last_fraction("a"), 0.5, 1e-9);
  EXPECT_NEAR(bus.last_fraction("b"), 0.5, 1e-9);
}

TEST(Bus, DemandsAccumulateAndClear) {
  tv::Bus bus(100.0);
  bus.request("a", 30.0);
  bus.request("a", 30.0);
  EXPECT_DOUBLE_EQ(bus.demand(), 60.0);
  bus.service();
  EXPECT_DOUBLE_EQ(bus.demand(), 0.0);
}

// -------------------------------------------------------------- MemoryArbiter

TEST(Arbiter, StrictPriorityAllocation) {
  tv::MemoryArbiter arb(100.0);
  arb.add_port("video", 3);
  arb.add_port("gfx", 1);
  arb.request("video", 80.0);
  arb.request("gfx", 80.0);
  arb.service();
  EXPECT_DOUBLE_EQ(arb.last_fraction("video"), 1.0);
  EXPECT_NEAR(arb.last_fraction("gfx"), 20.0 / 80.0, 1e-9);
}

TEST(Arbiter, StarvationCountsConsecutiveTicks) {
  tv::MemoryArbiter arb(100.0);
  arb.add_port("video", 3);
  arb.add_port("gfx", 1);
  for (int i = 0; i < 4; ++i) {
    arb.request("video", 100.0);
    arb.request("gfx", 50.0);
    arb.service();
  }
  EXPECT_EQ(arb.starvation_ticks("gfx"), 4);
  EXPECT_EQ(arb.starvation_ticks("video"), 0);
  // Relief resets the counter.
  arb.request("gfx", 50.0);
  arb.service();
  EXPECT_EQ(arb.starvation_ticks("gfx"), 0);
}

TEST(Arbiter, RuntimePriorityChange) {
  tv::MemoryArbiter arb(100.0);
  arb.add_port("a", 1);
  arb.add_port("b", 2);
  arb.set_priority("a", 5);
  EXPECT_EQ(arb.priority("a"), 5);
  arb.request("a", 100.0);
  arb.request("b", 100.0);
  arb.service();
  EXPECT_DOUBLE_EQ(arb.last_fraction("a"), 1.0);
  EXPECT_DOUBLE_EQ(arb.last_fraction("b"), 0.0);
}

TEST(Arbiter, UnknownPortThrows) {
  tv::MemoryArbiter arb(100.0);
  EXPECT_THROW(arb.request("nope", 1.0), std::out_of_range);
  EXPECT_THROW(arb.set_priority("nope", 1), std::out_of_range);
}

// --------------------------------------------------------------- StreamBuffer

TEST(StreamBuffer, PushPopAndCounters) {
  tv::StreamBuffer buf("b", 4.0);
  EXPECT_DOUBLE_EQ(buf.push(3.0), 3.0);
  EXPECT_DOUBLE_EQ(buf.push(2.0), 1.0);  // only 1 fits
  EXPECT_EQ(buf.overflows(), 1u);
  EXPECT_DOUBLE_EQ(buf.level(), 4.0);
  EXPECT_DOUBLE_EQ(buf.pop(3.0), 3.0);
  EXPECT_DOUBLE_EQ(buf.pop(3.0), 1.0);  // underflow
  EXPECT_EQ(buf.underflows(), 1u);
  buf.reset();
  EXPECT_DOUBLE_EQ(buf.level(), 0.0);
  EXPECT_EQ(buf.overflows(), 0u);
}

// ----------------------------------------------------------------- Components

TEST(Components, TunerLocksOnValidChannels) {
  auto lineup = tv::ChannelLineup::standard_lineup(10);
  tv::Tuner tuner;
  tuner.set_channel(5, lineup);
  EXPECT_EQ(tuner.channel(), 5);
  EXPECT_TRUE(tuner.locked());
  tuner.set_channel(77, lineup);
  EXPECT_EQ(tuner.channel(), 77);
  EXPECT_FALSE(tuner.locked());
}

TEST(Components, AudioVolumeClampsAndMutes) {
  tv::AudioPipeline audio;
  audio.set_volume(150);
  EXPECT_EQ(audio.volume(), 100);
  audio.adjust(-300);
  EXPECT_EQ(audio.volume(), 0);
  audio.set_volume(40);
  EXPECT_EQ(audio.sound_level(), 40);
  audio.set_mute(true);
  EXPECT_EQ(audio.sound_level(), 0);
  EXPECT_EQ(audio.volume(), 40);  // volume preserved behind mute
  audio.toggle_mute();
  EXPECT_EQ(audio.sound_level(), 40);
}

TEST(Components, TeletextChannelChangeInvalidatesCache) {
  tv::TeletextEngine ttx;
  ttx.show();
  for (int i = 0; i < 10; ++i) ttx.tick_acquisition(true);
  EXPECT_GT(ttx.acquired_pages(), 0);
  ttx.on_channel_change(7);
  EXPECT_EQ(ttx.acquired_pages(), 0);
  EXPECT_EQ(ttx.synced_channel(), 7);
  EXPECT_EQ(ttx.current_page(), 100);
}

TEST(Components, TeletextSameChannelKeepsCache) {
  tv::TeletextEngine ttx;
  ttx.on_channel_change(3);
  ttx.show();
  for (int i = 0; i < 5; ++i) ttx.tick_acquisition(true);
  const int pages = ttx.acquired_pages();
  ttx.on_channel_change(3);
  EXPECT_EQ(ttx.acquired_pages(), pages);
}

TEST(Components, TeletextNoAcquisitionWhenOffOrNoService) {
  tv::TeletextEngine ttx;
  ttx.tick_acquisition(true);  // mode off
  EXPECT_EQ(ttx.acquired_pages(), 0);
  ttx.show();
  ttx.tick_acquisition(false);  // channel has no teletext
  EXPECT_EQ(ttx.acquired_pages(), 0);
}

TEST(Components, TeletextPageNavigationClamps) {
  tv::TeletextEngine ttx;
  ttx.select_page(50);
  EXPECT_EQ(ttx.current_page(), 100);
  ttx.select_page(950);
  EXPECT_EQ(ttx.current_page(), 899);
  ttx.select_page(200);
  ttx.page_up();
  EXPECT_EQ(ttx.current_page(), 201);
  ttx.page_down();
  ttx.page_down();
  EXPECT_EQ(ttx.current_page(), 199);
}

TEST(Components, OsdVolumeExpires) {
  tv::OsdManager osd;
  osd.show_volume(0);
  EXPECT_EQ(osd.active(), tv::OsdManager::Osd::kVolume);
  osd.tick(tv::OsdManager::kVolumeOsdDuration - 1);
  EXPECT_EQ(osd.active(), tv::OsdManager::Osd::kVolume);
  osd.tick(tv::OsdManager::kVolumeOsdDuration);
  EXPECT_EQ(osd.active(), tv::OsdManager::Osd::kNone);
}

TEST(Components, OsdMenuDominatesAndPersists) {
  tv::OsdManager osd;
  osd.show_menu();
  osd.show_volume(0);  // ignored under menu
  EXPECT_EQ(osd.active(), tv::OsdManager::Osd::kMenu);
  osd.tick(10'000'000);
  EXPECT_EQ(osd.active(), tv::OsdManager::Osd::kMenu);
  osd.hide_menu();
  EXPECT_EQ(osd.active(), tv::OsdManager::Osd::kNone);
}

TEST(Components, OsdBannerDoesNotStealVolume) {
  tv::OsdManager osd;
  osd.show_volume(0);
  osd.show_banner(100);  // volume still fresh
  EXPECT_EQ(osd.active(), tv::OsdManager::Osd::kVolume);
}

TEST(Components, SwivelMovesTowardTargetOverTime) {
  tv::Swivel swivel;
  swivel.rotate(15);
  EXPECT_EQ(swivel.target(), 15);
  EXPECT_TRUE(swivel.moving());
  // 10 deg/s → 1.5 s to cover 15 degrees.
  for (int i = 0; i < 75; ++i) swivel.tick(rt::msec(20), false);
  EXPECT_EQ(swivel.position(), 15);
  EXPECT_FALSE(swivel.moving());
}

TEST(Components, SwivelClampsTarget) {
  tv::Swivel swivel;
  swivel.rotate(100);
  EXPECT_EQ(swivel.target(), tv::Swivel::kMaxAngle);
  swivel.rotate(-200);
  EXPECT_EQ(swivel.target(), -tv::Swivel::kMaxAngle);
}

TEST(Components, StuckSwivelDoesNotMove) {
  tv::Swivel swivel;
  swivel.rotate(15);
  for (int i = 0; i < 100; ++i) swivel.tick(rt::msec(20), true);
  EXPECT_EQ(swivel.position(), 0);
}

// -------------------------------------------------------------------- Control

class ControlTest : public ::testing::Test {
 protected:
  ControlTest() : lineup_(tv::ChannelLineup::standard_lineup(40)), control_(lineup_) {}

  std::vector<tv::Command> press(tv::Key k, rt::SimTime now = 0) {
    return control_.handle_key(k, now);
  }

  static bool has_cmd(const std::vector<tv::Command>& cmds, const std::string& component,
                      const std::string& action) {
    for (const auto& c : cmds) {
      if (c.component == component && c.action == action) return true;
    }
    return false;
  }

  tv::ChannelLineup lineup_;
  tv::TvControl control_;
};

TEST_F(ControlTest, StartsOffAndIgnoresKeys) {
  EXPECT_FALSE(control_.powered());
  EXPECT_EQ(control_.screen(), tv::Screen::kOff);
  EXPECT_TRUE(press(tv::Key::kVolumeUp).empty());
}

TEST_F(ControlTest, PowerOnRestoresSettings) {
  auto cmds = press(tv::Key::kPower);
  EXPECT_TRUE(control_.powered());
  EXPECT_EQ(control_.screen(), tv::Screen::kVideo);
  EXPECT_TRUE(has_cmd(cmds, "tuner", "set_channel"));
  EXPECT_TRUE(has_cmd(cmds, "audio", "set_volume"));
  EXPECT_TRUE(has_cmd(cmds, "audio", "set_mute"));
}

TEST_F(ControlTest, PowerOffResetsScreenAndTimers) {
  press(tv::Key::kPower);
  press(tv::Key::kSleep);
  EXPECT_GT(control_.sleep_minutes(0), 0);
  auto cmds = press(tv::Key::kPower);
  EXPECT_FALSE(control_.powered());
  EXPECT_EQ(control_.sleep_minutes(0), 0);
  EXPECT_TRUE(has_cmd(cmds, "osd", "clear"));
}

TEST_F(ControlTest, VolumeStepsAndClamps) {
  press(tv::Key::kPower);
  const int v0 = control_.volume();
  press(tv::Key::kVolumeUp);
  EXPECT_EQ(control_.volume(), v0 + 5);
  for (int i = 0; i < 40; ++i) press(tv::Key::kVolumeUp);
  EXPECT_EQ(control_.volume(), 100);
  for (int i = 0; i < 40; ++i) press(tv::Key::kVolumeDown);
  EXPECT_EQ(control_.volume(), 0);
}

TEST_F(ControlTest, VolumeKeyUnmutes) {
  press(tv::Key::kPower);
  press(tv::Key::kMute);
  EXPECT_TRUE(control_.muted());
  auto cmds = press(tv::Key::kVolumeUp);
  EXPECT_FALSE(control_.muted());
  EXPECT_TRUE(has_cmd(cmds, "audio", "set_mute"));
  EXPECT_TRUE(has_cmd(cmds, "audio", "set_volume"));
}

TEST_F(ControlTest, MuteToggles) {
  press(tv::Key::kPower);
  press(tv::Key::kMute);
  EXPECT_TRUE(control_.muted());
  EXPECT_EQ(control_.expected_sound_level(), 0);
  press(tv::Key::kMute);
  EXPECT_FALSE(control_.muted());
}

TEST_F(ControlTest, TwoDigitChannelCommitsImmediately) {
  press(tv::Key::kPower);
  press(tv::Key::kDigit1);
  EXPECT_EQ(control_.channel(), 1);  // not yet
  auto cmds = press(tv::Key::kDigit7);
  EXPECT_EQ(control_.channel(), 17);
  EXPECT_TRUE(has_cmd(cmds, "tuner", "set_channel"));
  EXPECT_TRUE(has_cmd(cmds, "teletext", "channel_change"));
}

TEST_F(ControlTest, SingleDigitCommitsOnTimeout) {
  press(tv::Key::kPower);
  press(tv::Key::kDigit5, 1000);
  EXPECT_EQ(control_.channel(), 1);
  auto cmds = control_.tick(1000 + rt::msec(1500));
  EXPECT_EQ(control_.channel(), 5);
  EXPECT_TRUE(has_cmd(cmds, "tuner", "set_channel"));
}

TEST_F(ControlTest, ChannelUpDownWrap) {
  press(tv::Key::kPower);
  press(tv::Key::kChannelDown);
  EXPECT_EQ(control_.channel(), 40);
  press(tv::Key::kChannelUp);
  EXPECT_EQ(control_.channel(), 1);
}

TEST_F(ControlTest, ChildLockBlocksAdultChannels) {
  press(tv::Key::kPower);
  press(tv::Key::kChildLock);
  EXPECT_TRUE(control_.child_lock());
  press(tv::Key::kDigit3);
  auto cmds = press(tv::Key::kDigit5);  // 35 >= threshold 30
  EXPECT_EQ(control_.channel(), 1);     // blocked
  EXPECT_FALSE(has_cmd(cmds, "tuner", "set_channel"));
  press(tv::Key::kDigit1);
  press(tv::Key::kDigit2);  // 12 < 30 allowed
  EXPECT_EQ(control_.channel(), 12);
  press(tv::Key::kChildLock);
  EXPECT_FALSE(control_.child_lock());
}

TEST_F(ControlTest, TeletextTogglesScreen) {
  press(tv::Key::kPower);
  auto cmds = press(tv::Key::kTeletext);
  EXPECT_EQ(control_.screen(), tv::Screen::kTeletext);
  EXPECT_TRUE(has_cmd(cmds, "teletext", "show"));
  cmds = press(tv::Key::kTeletext);
  EXPECT_EQ(control_.screen(), tv::Screen::kVideo);
  EXPECT_TRUE(has_cmd(cmds, "teletext", "hide"));
}

TEST_F(ControlTest, TeletextDigitsSelectPage) {
  press(tv::Key::kPower);
  press(tv::Key::kTeletext);
  press(tv::Key::kDigit2);
  press(tv::Key::kDigit3);
  auto cmds = press(tv::Key::kDigit4);
  EXPECT_EQ(control_.teletext_page(), 234);
  EXPECT_TRUE(has_cmd(cmds, "teletext", "select_page"));
  EXPECT_EQ(control_.channel(), 1);  // channel untouched
}

TEST_F(ControlTest, TeletextChannelKeysTurnPages) {
  press(tv::Key::kPower);
  press(tv::Key::kTeletext);
  press(tv::Key::kChannelUp);
  EXPECT_EQ(control_.teletext_page(), 101);
  press(tv::Key::kChannelDown);
  press(tv::Key::kChannelDown);
  EXPECT_EQ(control_.teletext_page(), 99 + 1);  // clamped at 100
}

TEST_F(ControlTest, DualScreenInteractsWithTeletext) {
  press(tv::Key::kPower);
  press(tv::Key::kDualScreen);
  EXPECT_EQ(control_.screen(), tv::Screen::kDual);
  EXPECT_EQ(control_.dual_channel(), 2);
  auto cmds = press(tv::Key::kTeletext);  // teletext suppresses dual
  EXPECT_EQ(control_.screen(), tv::Screen::kTeletext);
  cmds = press(tv::Key::kDualScreen);  // dual suppresses teletext
  EXPECT_EQ(control_.screen(), tv::Screen::kDual);
  EXPECT_TRUE(has_cmd(cmds, "teletext", "hide"));
}

TEST_F(ControlTest, MenuSwallowsNavigationKeysButNotVolume) {
  press(tv::Key::kPower);
  press(tv::Key::kMenu);
  EXPECT_EQ(control_.screen(), tv::Screen::kMenu);
  press(tv::Key::kChannelUp);
  EXPECT_EQ(control_.channel(), 1);  // swallowed
  press(tv::Key::kTeletext);
  EXPECT_EQ(control_.screen(), tv::Screen::kMenu);  // swallowed
  const int v0 = control_.volume();
  press(tv::Key::kVolumeUp);
  EXPECT_EQ(control_.volume(), v0 + 5);  // volume group works
  press(tv::Key::kMenu);
  EXPECT_EQ(control_.screen(), tv::Screen::kVideo);
}

TEST_F(ControlTest, BackLeavesTeletextAndMenu) {
  press(tv::Key::kPower);
  press(tv::Key::kTeletext);
  press(tv::Key::kBack);
  EXPECT_EQ(control_.screen(), tv::Screen::kVideo);
  press(tv::Key::kMenu);
  press(tv::Key::kBack);
  EXPECT_EQ(control_.screen(), tv::Screen::kVideo);
}

TEST_F(ControlTest, SleepCyclesThroughDurations) {
  press(tv::Key::kPower);
  press(tv::Key::kSleep, 0);
  EXPECT_EQ(control_.sleep_minutes(0), 15);
  press(tv::Key::kSleep, 0);
  EXPECT_EQ(control_.sleep_minutes(0), 30);
  press(tv::Key::kSleep, 0);
  EXPECT_EQ(control_.sleep_minutes(0), 60);
  press(tv::Key::kSleep, 0);
  EXPECT_EQ(control_.sleep_minutes(0), 0);
}

TEST_F(ControlTest, SleepExpiryPowersOff) {
  press(tv::Key::kPower);
  press(tv::Key::kSleep, 0);  // 15 minutes
  control_.tick(rt::sec(15 * 60 - 1));
  EXPECT_TRUE(control_.powered());
  control_.tick(rt::sec(15 * 60));
  EXPECT_FALSE(control_.powered());
}

TEST_F(ControlTest, SwivelKeysEmitRotateCommands) {
  press(tv::Key::kPower);
  auto cmds = press(tv::Key::kSwivelLeft);
  ASSERT_TRUE(has_cmd(cmds, "swivel", "rotate"));
  cmds = press(tv::Key::kSwivelRight);
  ASSERT_TRUE(has_cmd(cmds, "swivel", "rotate"));
}

TEST_F(ControlTest, BlockHookSeesHandlers) {
  std::set<int> blocks;
  control_.set_block_hook([&](int b) { blocks.insert(b); });
  press(tv::Key::kPower);
  press(tv::Key::kVolumeUp);
  press(tv::Key::kTeletext);
  EXPECT_TRUE(blocks.count(tv::kBlkPowerOn));
  EXPECT_TRUE(blocks.count(tv::kBlkVolumeUp));
  EXPECT_TRUE(blocks.count(tv::kBlkTtxEnter));
  EXPECT_FALSE(blocks.count(tv::kBlkTtxExit));
}

// -------------------------------------------------------------------- System

class TvSystemTest : public ::testing::Test {
 protected:
  TvSystemTest() : injector_(rt::Rng(77)), set_(sched_, bus_, injector_) {
    set_.start();
  }

  void power_on_and_settle() {
    set_.press(tv::Key::kPower);
    sched_.run_for(rt::msec(200));
  }

  rt::Scheduler sched_;
  rt::EventBus bus_;
  flt::FaultInjector injector_;
  tv::TvSystem set_;
};

TEST_F(TvSystemTest, OffProducesNoSoundAndOffScreen) {
  sched_.run_for(rt::msec(100));
  EXPECT_EQ(set_.screen_output(), "off");
  EXPECT_EQ(set_.sound_output(), 0);
}

TEST_F(TvSystemTest, PowerOnProducesVideoAndSound) {
  power_on_and_settle();
  EXPECT_EQ(set_.screen_output(), "video");
  EXPECT_EQ(set_.sound_output(), 30);
  EXPECT_GT(set_.stats().frames_total, 0u);
  EXPECT_GT(set_.recent_quality(), 0.5);
}

TEST_F(TvSystemTest, PublishesInputAndOutputEvents) {
  int inputs = 0;
  int outputs = 0;
  bus_.subscribe("tv.input", [&](const rt::Event&) { ++inputs; });
  bus_.subscribe("tv.output", [&](const rt::Event&) { ++outputs; });
  power_on_and_settle();
  set_.press(tv::Key::kVolumeUp);
  EXPECT_GE(inputs, 2);
  EXPECT_GT(outputs, 0);
}

TEST_F(TvSystemTest, EnterChannelPressesDigits) {
  power_on_and_settle();
  set_.enter_channel(23);
  sched_.run_for(rt::msec(100));
  EXPECT_EQ(set_.displayed_channel(), 23);
  EXPECT_TRUE(set_.tuner().locked());
}

TEST_F(TvSystemTest, LostAudioCommandCausesBeliefDivergence) {
  power_on_and_settle();
  injector_.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", sched_.now(), 0,
                                    1.0, {}});
  set_.press(tv::Key::kVolumeUp);
  sched_.run_for(rt::msec(100));
  EXPECT_EQ(set_.control().volume(), 35);
  EXPECT_EQ(set_.audio().volume(), 30);  // command lost
  EXPECT_EQ(set_.sound_output(), 30);
}

TEST_F(TvSystemTest, LostTeletextChannelChangeDesyncs) {
  power_on_and_settle();
  set_.press(tv::Key::kTeletext);
  sched_.run_for(rt::msec(100));
  EXPECT_TRUE(set_.teletext_content_ok());
  set_.press(tv::Key::kBack);  // back to video (hide delivered pre-fault)
  sched_.run_for(rt::msec(100));
  // Now the channel-change notification to the engine gets lost.
  injector_.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.teletext", sched_.now(),
                                    0, 1.0, {}});
  set_.press(tv::Key::kChannelUp);
  sched_.run_for(rt::msec(100));
  EXPECT_EQ(set_.tuner().channel(), 2);
  EXPECT_EQ(set_.teletext().synced_channel(), 1);  // missed the change
  injector_.clear_plan();
  set_.press(tv::Key::kTeletext);  // user opens teletext again
  sched_.run_for(rt::msec(100));
  // The engine serves pages of the old channel: the paper's failure.
  EXPECT_FALSE(set_.teletext_content_ok());
}

TEST_F(TvSystemTest, ModeDesyncFaultFlipsTeletextBelief) {
  power_on_and_settle();
  set_.press(tv::Key::kTeletext);
  sched_.run_for(rt::msec(100));
  injector_.schedule(flt::FaultSpec{flt::FaultKind::kModeDesync, "teletext", sched_.now(), 0,
                                    1.0, {}});
  sched_.run_for(rt::msec(100));
  EXPECT_FALSE(set_.teletext_content_ok());
}

TEST_F(TvSystemTest, BadSignalDegradesQuality) {
  power_on_and_settle();
  const double good = set_.recent_quality();
  injector_.schedule(flt::FaultSpec{flt::FaultKind::kBadSignal, "tuner", sched_.now(), 0, 0.6,
                                    {}});
  sched_.run_for(rt::sec(2));
  EXPECT_LT(set_.recent_quality(), good - 0.2);
}

TEST_F(TvSystemTest, CrashedTeletextIgnoresCommandsUntilRestart) {
  power_on_and_settle();
  injector_.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "teletext", sched_.now(), 0, 1.0,
                                    {}});
  sched_.run_for(rt::msec(100));
  EXPECT_TRUE(set_.crashed().count("teletext"));
  set_.press(tv::Key::kTeletext);
  sched_.run_for(rt::msec(100));
  EXPECT_EQ(set_.teletext().mode(), tv::TeletextEngine::Mode::kOff);  // dead
  injector_.clear_plan();  // fault removed; restart is now effective
  set_.restart_component("teletext");
  EXPECT_FALSE(set_.crashed().count("teletext"));
  // The restart replayed the control belief (screen = teletext).
  EXPECT_EQ(set_.teletext().mode(), tv::TeletextEngine::Mode::kVisible);
}

TEST_F(TvSystemTest, DeadlockFaultStallsFramesAndExposesEdges) {
  power_on_and_settle();
  const auto before = set_.stats().frames_dropped;
  injector_.schedule(flt::FaultSpec{flt::FaultKind::kDeadlock, "av", sched_.now(), 0, 1.0, {}});
  sched_.run_for(rt::sec(1));
  EXPECT_GT(set_.stats().frames_dropped, before + 20);
  const auto edges = set_.wait_edges();
  ASSERT_EQ(edges.size(), 2u);
}

TEST_F(TvSystemTest, DecoderMigrationMovesLoad) {
  power_on_and_settle();
  EXPECT_GT(set_.cpu(0).task_cost("decoder"), 0.0);
  set_.set_decoder_cpu(1);
  sched_.run_for(rt::msec(100));
  EXPECT_FALSE(set_.cpu(0).has_task("decoder"));
  EXPECT_GT(set_.cpu(1).task_cost("decoder"), 0.0);
}

TEST_F(TvSystemTest, TaskOverrunRaisesCpuLoad) {
  power_on_and_settle();
  const double before = set_.cpu(0).load();
  injector_.schedule(flt::FaultSpec{flt::FaultKind::kTaskOverrun, "decoder", sched_.now(), 0,
                                    1.0, {}});
  sched_.run_for(rt::msec(200));
  EXPECT_GT(set_.cpu(0).load(), before * 1.5);
}

TEST_F(TvSystemTest, StuckSwivelFaultFreezesPosition) {
  power_on_and_settle();
  injector_.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "swivel", sched_.now(), 0,
                                    1.0, {}});
  set_.press(tv::Key::kSwivelRight);
  sched_.run_for(rt::sec(3));
  EXPECT_EQ(set_.swivel().position(), 0);
  // But the command was accepted: target moved (motor is stuck, not the
  // command path) — wait: stuck component ignores commands entirely.
  EXPECT_EQ(set_.swivel().target(), 0);
}

TEST_F(TvSystemTest, ModeSnapshotContainsConsistencyKeys) {
  power_on_and_settle();
  const auto snap = set_.mode_snapshot();
  EXPECT_TRUE(snap.count("tuner.channel"));
  EXPECT_TRUE(snap.count("teletext.synced_channel"));
  EXPECT_TRUE(snap.count("control.volume"));
  EXPECT_TRUE(snap.count("audio.muted"));
  EXPECT_TRUE(snap.count("osd.active"));
}

TEST_F(TvSystemTest, OsdBannerAppearsOnChannelChangeAndExpires) {
  power_on_and_settle();
  set_.press(tv::Key::kChannelUp);
  EXPECT_EQ(set_.osd().active(), tv::OsdManager::Osd::kBanner);
  sched_.run_for(tv::OsdManager::kBannerOsdDuration + rt::msec(50));
  EXPECT_EQ(set_.osd().active(), tv::OsdManager::Osd::kNone);
}

TEST_F(TvSystemTest, MessageCorruptionPerturbsVolume) {
  power_on_and_settle();
  injector_.schedule(flt::FaultSpec{flt::FaultKind::kMessageCorruption, "cmd.audio",
                                    sched_.now(), 0, 1.0, {}});
  set_.press(tv::Key::kVolumeUp);  // control: 35, corrupted en route
  sched_.run_for(rt::msec(50));
  EXPECT_NE(set_.audio().volume(), 35);
}

TEST_F(TvSystemTest, DualScreenCostsMoreCpu) {
  power_on_and_settle();
  sched_.run_for(rt::msec(200));
  const double single = set_.cpu(0).task_cost("decoder");
  set_.press(tv::Key::kDualScreen);
  sched_.run_for(rt::msec(200));
  EXPECT_GT(set_.cpu(0).task_cost("decoder"), single);
}

TEST_F(TvSystemTest, FaultActivationGroundTruthIsRecorded) {
  power_on_and_settle();
  injector_.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", sched_.now(), 0,
                                    1.0, {}});
  set_.press(tv::Key::kVolumeUp);
  sched_.run_for(rt::msec(50));
  EXPECT_GE(injector_.activations().size(), 1u);
  EXPECT_GE(injector_.first_activation("cmd.audio"), 0);
}
