// Tests for the printer/copier SUO (§5, Octopus): engine behaviour, the
// event-driven spec model, awareness integration, and the timeliness
// rules that catch silent stalls.
#include <gtest/gtest.h>

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "detection/detectors.hpp"
#include "detection/response_time.hpp"
#include "faults/injector.hpp"
#include "printer/printer.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/checker.hpp"
#include "statemachine/test_script.hpp"

namespace pr = trader::printer;
namespace rt = trader::runtime;
namespace core = trader::core;
namespace det = trader::detection;
namespace flt = trader::faults;
namespace sm = trader::statemachine;

namespace {

struct PrinterFixture {
  PrinterFixture() : injector(rt::Rng(4)), printer(sched, bus, injector) { printer.start(); }

  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector;
  pr::PrinterSystem printer;
};

}  // namespace

TEST(Printer, StartsIdleAndCold) {
  PrinterFixture f;
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kIdle);
  f.sched.run_for(rt::sec(2));
  EXPECT_NEAR(f.printer.temperature(), 60.0, 1.0);
  EXPECT_EQ(f.printer.pages_printed_total(), 0u);
}

TEST(Printer, JobWarmsUpPrintsAndFinishes) {
  PrinterFixture f;
  f.printer.submit_job(10);
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kWarming);
  f.sched.run_for(rt::sec(4));  // warmup: (180-60)/4 °C per 100 ms = 3 s
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kPrinting);
  EXPECT_GE(f.printer.temperature(), 179.0);
  f.sched.run_for(rt::sec(6));  // 10 pages at 0.5 s/page
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kIdle);
  EXPECT_EQ(f.printer.pages_printed_total(), 10u);
  EXPECT_EQ(f.printer.paper_level(), 90);
}

TEST(Printer, QueuedJobsRunBackToBack) {
  PrinterFixture f;
  f.printer.submit_job(4);
  f.printer.submit_job(6);
  EXPECT_EQ(f.printer.queue_length(), 2);
  f.sched.run_for(rt::sec(12));
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kIdle);
  EXPECT_EQ(f.printer.pages_printed_total(), 10u);
}

TEST(Printer, PauseHoldsProgressResumeContinues) {
  PrinterFixture f;
  f.printer.submit_job(20);
  f.sched.run_for(rt::sec(5));
  ASSERT_EQ(f.printer.state(), pr::PrinterState::kPrinting);
  const auto printed = f.printer.pages_printed_total();
  f.printer.pause();
  f.sched.run_for(rt::sec(3));
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kPaused);
  EXPECT_EQ(f.printer.pages_printed_total(), printed);
  f.printer.resume();
  f.sched.run_for(rt::sec(2));
  EXPECT_GT(f.printer.pages_printed_total(), printed);
}

TEST(Printer, CancelClearsQueue) {
  PrinterFixture f;
  f.printer.submit_job(50);
  f.sched.run_for(rt::sec(5));
  f.printer.cancel();
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kIdle);
  EXPECT_EQ(f.printer.queue_length(), 0);
}

TEST(Printer, RunsOutOfPaperAndRecoversAfterService) {
  PrinterFixture f;  // 100 sheets loaded
  f.printer.submit_job(150);
  f.sched.run_for(rt::sec(60));
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kError);
  EXPECT_EQ(f.printer.error_reason(), "out_of_paper");
  EXPECT_EQ(f.printer.paper_level(), 0);
  f.printer.load_paper(200);
  f.printer.clear_error();
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kIdle);
  f.printer.submit_job(5);
  f.sched.run_for(rt::sec(7));
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kIdle);
  EXPECT_EQ(f.printer.pages_printed_total(), 105u);
}

TEST(Printer, JamRaisesError) {
  PrinterFixture f;
  f.printer.submit_job(30);
  f.sched.run_for(rt::sec(5));
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "feeder", f.sched.now(), 0, 1.0,
                                     {}});
  f.sched.run_for(rt::sec(1));
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kError);
  EXPECT_EQ(f.printer.error_reason(), "paper_jam");
}

TEST(Printer, OverheatCaughtByRangeProbe) {
  PrinterFixture f;
  f.printer.submit_job(40);
  f.sched.run_for(rt::sec(5));
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kMemoryCorruption, "fuser", f.sched.now(),
                                     0, 1.0, {}});
  f.sched.run_for(rt::sec(5));
  det::DetectionLog log;
  det::RangeChecker checker(f.printer.probes());
  checker.poll(log);
  EXPECT_GE(log.count("range"), 1u);
  EXPECT_GT(f.printer.temperature(), 195.0);
}

// ----------------------------------------------------------------- spec model

TEST(PrinterSpec, PassesStaticChecks) {
  auto def = pr::build_printer_spec_model();
  sm::ModelChecker checker;
  const auto report = checker.check(def);
  for (const auto& issue : report.issues) {
    ADD_FAILURE() << sm::to_string(issue.kind) << " " << issue.subject << ": " << issue.message;
  }
}

TEST(PrinterSpec, JobLifecycleScript) {
  auto def = pr::build_printer_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("lifecycle");
  script.expect_state("Idle")
      .inject("submit")
      .expect_state("Warming")
      .inject("engine_ready")
      .expect_state("Printing")
      .inject("page_printed")
      .expect_state("Printing")
      .inject("job_done")
      .expect_state("Idle");
  EXPECT_TRUE(script.run(m).passed());
}

TEST(PrinterSpec, QueuedJobContinuesPrinting) {
  auto def = pr::build_printer_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("queue");
  script.inject("submit")
      .inject("submit")  // second job queued
      .inject("engine_ready")
      .inject("job_done")  // first done, one remains
      .expect_state("Printing")
      .inject("job_done")
      .expect_state("Idle");
  EXPECT_TRUE(script.run(m).passed());
}

TEST(PrinterSpec, ErrorPathsScript) {
  auto def = pr::build_printer_spec_model();
  sm::StateMachine m(def);
  sm::TestScript script("errors");
  script.inject("submit")
      .inject("engine_ready")
      .inject("jam")
      .expect_state("Error")
      .inject("clear_error")
      .expect_state("Idle")
      .inject("submit")
      .inject("engine_ready")
      .inject("paper_out")
      .expect_state("Error");
  EXPECT_TRUE(script.run(m).passed());
}

// --------------------------------------------------------- awareness monitor

namespace {

core::MonitorBuilder printer_monitor() {
  core::MonitorBuilder builder;
  builder.model(std::make_unique<core::InterpretedModel>(pr::build_printer_spec_model()))
      .input_topic("pr.input")
      .output_topic("pr.output")
      .input_mapper([](const rt::Event& ev) -> std::optional<sm::SmEvent> {
        const std::string cmd = ev.str_field("cmd");
        if (cmd.empty()) return std::nullopt;
        sm::SmEvent sm_ev = sm::SmEvent::named(cmd);
        sm_ev.params = ev.fields;
        return sm_ev;
      })
      .threshold("state", 0.0, /*max_consecutive=*/4)
      .comparison_period(rt::msec(50))
      .startup_grace(rt::msec(100));
  return builder;
}

}  // namespace

TEST(PrinterMonitor, CleanJobsProduceNoErrors) {
  PrinterFixture f;
  auto monitor = printer_monitor().build(f.sched, f.bus);
  monitor->start();
  f.printer.submit_job(6);
  f.sched.run_for(rt::sec(10));
  f.printer.submit_job(4);
  f.sched.run_for(rt::sec(4));
  f.printer.pause();
  f.sched.run_for(rt::sec(1));
  f.printer.resume();
  f.sched.run_for(rt::sec(5));
  EXPECT_TRUE(monitor->errors().empty())
      << (monitor->errors().empty() ? "" : monitor->errors()[0].describe());
  EXPECT_EQ(f.printer.pages_printed_total(), 10u);
}

TEST(PrinterMonitor, LostPauseActuationDetected) {
  // The operator presses pause but the engine keeps printing (actuation
  // lost): the model expects "paused" while the printer reports
  // "printing" — caught by the comparator.
  PrinterFixture f;
  auto monitor = printer_monitor().build(f.sched, f.bus);
  monitor->start();
  f.printer.submit_job(40);
  f.sched.run_for(rt::sec(5));
  ASSERT_EQ(f.printer.state(), pr::PrinterState::kPrinting);
  // Simulate the lost actuation: publish the pause *command* without the
  // engine acting on it (the command path is the fault).
  rt::Event ev;
  ev.topic = "pr.input";
  ev.name = "command";
  ev.fields["cmd"] = std::string("pause");
  ev.timestamp = f.sched.now();
  f.bus.publish(ev);
  f.sched.run_for(rt::sec(2));
  ASSERT_FALSE(monitor->errors().empty());
  EXPECT_EQ(monitor->errors()[0].observable, "state");
  EXPECT_EQ(rt::to_string(monitor->errors()[0].expected), "paused");
}

TEST(PrinterTimeliness, SilentFeederStallCaughtByPageCadence) {
  PrinterFixture f;
  det::DetectionLog log;
  det::ResponseTimeMonitor response(f.sched, f.bus, log);
  for (auto& rule : pr::printer_response_rules()) response.add_rule(rule);
  response.start();
  f.printer.submit_job(40);
  f.sched.run_for(rt::sec(6));
  ASSERT_EQ(f.printer.state(), pr::PrinterState::kPrinting);
  // The silent failure: feeder stops, no error is raised by the engine.
  f.injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "feeder", f.sched.now(),
                                     0, 1.0, {}});
  f.sched.run_for(rt::sec(3));
  EXPECT_EQ(f.printer.state(), pr::PrinterState::kPrinting);  // still "printing"!
  EXPECT_GE(log.count("timeliness"), 1u);                      // but caught
  EXPECT_EQ(log.all()[0].subject, "page-cadence");
}

TEST(PrinterTimeliness, CleanJobsKeepCadence) {
  PrinterFixture f;
  det::DetectionLog log;
  det::ResponseTimeMonitor response(f.sched, f.bus, log);
  for (auto& rule : pr::printer_response_rules()) response.add_rule(rule);
  response.start();
  f.printer.submit_job(8);
  f.sched.run_for(rt::sec(12));
  f.printer.submit_job(3);
  f.sched.run_for(rt::sec(8));
  EXPECT_EQ(log.count("timeliness"), 0u);
}
