// Long-soak system test: the whole stack (TV + monitor + mode checker +
// timeliness monitor + recovery) over a randomized session with a
// scheduled fault campaign. Asserts the Fig. 1 promise end to end:
// no false alarms while healthy, every injected fault class caught, and
// health restored after recovery.
#include <gtest/gtest.h>

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "core/sharded_fleet.hpp"
#include "detection/detectors.hpp"
#include "detection/response_time.hpp"
#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace core = trader::core;
namespace det = trader::detection;
namespace flt = trader::faults;

namespace {

struct SoakRig {
  explicit SoakRig(std::uint64_t seed) : injector(rt::Rng(seed)), set(sched, bus, injector) {
    core::MonitorBuilder builder(sched, bus);
    builder.model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
        .comparison_period(rt::msec(20))
        .startup_grace(rt::msec(100));
    for (const char* name : {"sound_level", "screen_state", "channel", "powered", "source"}) {
      builder.threshold(name, 0.0, /*max_consecutive=*/3);
    }
    monitor = builder.build();
    for (auto& rule : det::tv_mode_rules()) modes.add_rule(rule);
    sched.schedule_every(rt::msec(40), [this] {
      modes.check(set.mode_snapshot(), sched.now(), detections);
    });

    // Recovery: resync the component named by the observable.
    monitor->set_recovery_handler([this](const core::ErrorReport& err) {
      ++recoveries;
      if (err.observable == "sound_level") set.restart_component("audio");
      if (err.observable == "screen_state") set.restart_component("teletext");
      if (err.observable == "source") set.restart_component("avswitch");
    });

    set.start();
    monitor->start();
    set.press(tv::Key::kPower);
    sched.run_for(rt::msec(300));
  }

  // Press keys randomly but *meaningfully*: waits long enough between
  // presses for episodes to settle.
  void random_usage(rt::Rng& rng, int presses) {
    const std::vector<tv::Key> keys = {
        tv::Key::kVolumeUp,  tv::Key::kVolumeDown, tv::Key::kMute,      tv::Key::kChannelUp,
        tv::Key::kChannelDown, tv::Key::kTeletext, tv::Key::kDualScreen, tv::Key::kMenu,
        tv::Key::kBack,      tv::Key::kSource,     tv::Key::kDigit2,    tv::Key::kDigit4,
    };
    for (int i = 0; i < presses; ++i) {
      set.press(keys[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(keys.size() - 1)))]);
      sched.run_for(rt::msec(1700));
    }
  }

  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector;
  tv::TvSystem set;
  std::unique_ptr<core::AwarenessMonitor> monitor;
  det::ModeConsistencyChecker modes;
  det::DetectionLog detections;
  int recoveries = 0;
};

}  // namespace

class SystemSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemSoak, CleanPhaseQuietFaultsCaughtHealthRestored) {
  SoakRig rig(GetParam());
  rt::Rng rng(GetParam() ^ 0xBEEF);

  // --- Phase 1: healthy usage, nothing may fire --------------------------
  rig.random_usage(rng, 25);
  EXPECT_TRUE(rig.monitor->errors().empty())
      << rig.monitor->errors()[0].describe();
  EXPECT_TRUE(rig.detections.all().empty());

  // --- Phase 2: fault campaign -------------------------------------------
  // One transient fault of each major class, separated in time.
  const rt::SimTime t0 = rig.sched.now();
  rig.injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", t0,
                                       rt::msec(100), 1.0, {}});
  rig.set.press(tv::Key::kVolumeUp);
  rig.sched.run_for(rt::sec(3));

  // Bring the set into teletext viewing (the desync rule is only armed
  // while the engine serves pages): leave any menu first (the menu
  // swallows the source key!), then cycle back to antenna.
  rig.set.press(tv::Key::kBack);
  rig.sched.run_for(rt::msec(300));
  for (int i = 0; i < 2 && rig.set.av_switch().source() != tv::AvSource::kAntenna; ++i) {
    rig.set.press(tv::Key::kSource);
    rig.sched.run_for(rt::msec(300));
  }
  ASSERT_EQ(rig.set.av_switch().source(), tv::AvSource::kAntenna);
  if (rig.set.screen_output() != "teletext") {
    rig.set.press(tv::Key::kTeletext);
    rig.sched.run_for(rt::msec(300));
  }
  ASSERT_EQ(rig.set.screen_output(), "teletext");

  const rt::SimTime t1 = rig.sched.now();
  rig.injector.schedule(flt::FaultSpec{flt::FaultKind::kModeDesync, "teletext", t1,
                                       rt::msec(100), 1.0, {}});
  rig.sched.run_for(rt::sec(3));

  const std::size_t errors_after_campaign = rig.monitor->errors().size();
  EXPECT_GE(errors_after_campaign, 1u);                          // comparator fired
  EXPECT_GE(rig.detections.count("mode"), 1u);                   // mode checker fired
  EXPECT_GE(rig.recoveries, 1);

  // --- Phase 3: recovered — back to quiet under continued usage -----------
  // Repair any residual desync the campaign left behind.
  rig.set.restart_component("teletext");
  rig.set.restart_component("audio");
  rig.sched.run_for(rt::sec(1));
  const std::size_t errors_before = rig.monitor->errors().size();
  const std::size_t detections_before = rig.detections.all().size();
  rig.random_usage(rng, 20);
  EXPECT_EQ(rig.monitor->errors().size(), errors_before)
      << rig.monitor->errors().back().describe();
  EXPECT_EQ(rig.detections.all().size(), detections_before);

  // The set is fully functional at the end.
  EXPECT_EQ(rig.set.sound_output(), rig.set.control().expected_sound_level());
  EXPECT_TRUE(rig.set.teletext_content_ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemSoak, ::testing::Values(101, 202, 303, 404, 505));

// Sharded-fleet soak: many monitors spread over worker threads under
// sustained traffic and induced faults. Primarily a ThreadSanitizer
// target (cmake -B build-tsan -S . -DTRADER_SANITIZE=thread) — it keeps
// the mailbox, barrier and recovery-handler paths hot — but the
// determinism assertion makes it a functional test everywhere.
TEST(SystemSoak, ShardedFleetSoakIsRaceFreeAndDeterministic) {
  auto session = [](std::size_t shards) {
    core::ShardedFleetConfig cfg;
    cfg.shards = shards;
    cfg.epoch = rt::msec(5);
    cfg.seed = 0x50AC;
    core::ShardedFleet fleet(cfg);
    const int kMonitors = 12;
    for (int m = 0; m < kMonitors; ++m) {
      core::MonitorBuilder builder;
      builder.model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
          .input_topic("tv.input." + std::to_string(m))
          .output_topic("tv.output." + std::to_string(m))
          .comparison_period(rt::msec(10))
          .startup_grace(rt::msec(20))
          .threshold("sound_level", 0.0, /*max_consecutive=*/2);
      fleet.add_monitor("aspect" + std::to_string(m), std::move(builder));
    }
    int handler_calls = 0;
    fleet.set_recovery_handler([&](const core::AspectError&) { ++handler_calls; });
    fleet.start();

    std::vector<std::int64_t> volume(12, 30);
    for (int step = 0; step < 40; ++step) {
      for (int m = 0; m < kMonitors; ++m) {
        rt::Event in;
        in.topic = "tv.input." + std::to_string(m);
        in.name = "key";
        in.fields["key"] = std::string("power");
        // Every monitor's SUO powers on at step 0; from then on the
        // observed sound level tracks the model except for monitors
        // where a command is "lost" at step 20.
        if (step == 0) {
          fleet.publish(in);
        }
        rt::Event out;
        out.topic = "tv.output." + std::to_string(m);
        out.name = "sound_level";
        if (step >= 1) {
          if (!(m % 3 == 0 && step == 20)) {
            // tracks the model's belief (constant 30 after power-on)
          } else {
            volume[static_cast<std::size_t>(m)] = 0;  // fault: muted SUO
          }
          out.fields["value"] = volume[static_cast<std::size_t>(m)];
          fleet.publish(out);
        }
      }
      fleet.run_for(rt::msec(15));
    }
    fleet.run_for(rt::msec(200));
    fleet.stop();
    std::string fingerprint;
    for (const auto& e : fleet.errors()) {
      fingerprint += e.aspect + "@" + std::to_string(e.report.detected_at) + ";";
    }
    EXPECT_EQ(static_cast<std::size_t>(handler_calls), fleet.errors().size());
    return fingerprint;
  };
  const auto base = session(1);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(session(3), base);
  EXPECT_EQ(session(8), base);
}

TEST(SystemSoak, TimelinessMonitorStaysQuietAcrossLongCleanSession) {
  SoakRig rig(77);
  det::DetectionLog rt_log;
  det::ResponseTimeMonitor response(rig.sched, rig.bus, rt_log);
  for (auto& rule : det::tv_response_rules(rt::msec(200))) response.add_rule(rule);
  response.start();
  rt::Rng rng(0x1CEB00DA);
  // Volume keys away from the rails, power cycles, teletext toggles.
  for (int i = 0; i < 30; ++i) {
    const int pick = static_cast<int>(rng.uniform_int(0, 3));
    if (pick == 0) rig.set.press(tv::Key::kVolumeUp);
    if (pick == 1) rig.set.press(tv::Key::kVolumeDown);
    if (pick == 2) rig.set.press(tv::Key::kTeletext);
    if (pick == 3) rig.set.press(tv::Key::kMute);
    rig.sched.run_for(rt::msec(700));
  }
  EXPECT_EQ(rt_log.count("timeliness"), 0u);
  EXPECT_GT(response.response_times().count(), 10u);
}
