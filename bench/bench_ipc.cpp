// E16: the cost of the process boundary (src/ipc).
//
// The paper's awareness framework observes the SUO "with minimal
// probe effect"; moving the SUO out of process trades shared-memory
// observation for a wire. This bench quantifies that trade on the two
// transports the repo ships:
//   (a) frame throughput — how many observable-update frames per
//       second one link carries (encode -> kernel stream -> decode);
//   (b) lockstep round-trip time — the p50/p99 latency of one
//       heartbeat exchange against a live SuoServer, the same exchange
//       the RemoteSuoClient uses to advance virtual time.
// Results land in BENCH_ipc.json for scripts/check.sh.
#include "bench_common.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "ipc/remote_suo.hpp"
#include "ipc/suo_server.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "testkit/campaign.hpp"

namespace rt = trader::runtime;
namespace ipc = trader::ipc;
namespace tk = trader::testkit;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

double now_ms() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ipc::Frame sample_output_frame() {
  ipc::Frame f;
  f.type = ipc::FrameType::kOutputEvent;
  f.time = rt::msec(20);
  f.event.topic = "tv.output";
  f.event.name = "sound_level";
  f.event.fields["value"] = std::int64_t{35};
  f.event.fields["quality"] = 0.97;
  return f;
}

/// Make one connected FramedSocket pair on the requested transport.
/// Transports are named by the campaign backend registry
/// (testkit::to_string), so BENCH_ipc.json rows and campaign reports
/// can never label the same wire differently.
std::pair<ipc::FramedSocket, ipc::FramedSocket> make_pair_on(tk::IpcMode transport) {
  if (transport == tk::IpcMode::kSocketpair) return ipc::socketpair_transport();
  const std::string path = "@trader-bench-ipc-" + std::to_string(::getpid());
  const int listener = ipc::listen_unix(path);
  const int client = ipc::connect_unix_retry(path, 2000);
  const int server = ipc::accept_unix(listener, 2000);
  ::close(listener);
  return {ipc::FramedSocket(server), ipc::FramedSocket(client)};
}

struct ThroughputRun {
  double frames_per_sec = 0.0;
  double mb_per_sec = 0.0;
};

/// One writer thread floods frames; the main thread drains and counts.
ThroughputRun run_throughput(tk::IpcMode transport, int frames) {
  auto [rx, tx] = make_pair_on(transport);
  const auto encoded_size = ipc::encode_frame(sample_output_frame()).size();

  std::thread writer([&tx = tx, frames]() {
    const ipc::Frame f = sample_output_frame();
    for (int i = 0; i < frames; ++i) {
      if (!tx.send(f)) break;
    }
    tx.close();
  });

  int received = 0;
  const double start = now_ms();
  ipc::Frame in;
  while (rx.recv(in, 2000) == ipc::FramedSocket::RecvStatus::kFrame) ++received;
  const double wall_ms = now_ms() - start;
  writer.join();

  ThroughputRun run;
  run.frames_per_sec = received / (wall_ms / 1000.0);
  run.mb_per_sec =
      static_cast<double>(received) * static_cast<double>(encoded_size) / 1e6 / (wall_ms / 1000.0);
  return run;
}

struct RttRun {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

/// Heartbeat round-trips against a live SuoServer on a worker thread —
/// the exact exchange that paces lockstep virtual-time advancement.
RttRun run_rtt(tk::IpcMode transport, int rounds) {
  auto [server_sock, client_sock] = make_pair_on(transport);
  ipc::SuoServer server;
  std::thread host([&server, s = std::move(server_sock)]() mutable { server.serve(s); });

  rt::Scheduler sched;
  rt::EventBus bus;
  ipc::RemoteSuoClient client(sched, bus,
                              [fd = client_sock.release(), used = std::make_shared<bool>(false)]() {
                                if (*used) return -1;
                                *used = true;
                                return fd;
                              });
  client.initialize();
  client.start(sched.now());

  std::vector<double> samples_us;
  samples_us.reserve(static_cast<std::size_t>(rounds));
  for (int i = 0; i < rounds; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    client.heartbeat();
    const auto t1 = std::chrono::steady_clock::now();
    samples_us.push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(t1 - t0).count());
  }
  client.shutdown_remote();
  host.join();

  std::sort(samples_us.begin(), samples_us.end());
  RttRun run;
  run.p50_us = samples_us[samples_us.size() / 2];
  run.p99_us = samples_us[samples_us.size() * 99 / 100];
  double sum = 0.0;
  for (const double s : samples_us) sum += s;
  run.mean_us = sum / static_cast<double>(samples_us.size());
  return run;
}

void report() {
  banner("E16", "the cost of the process boundary (out-of-process SUO)");

  const int frames = 200000;
  const int rounds = 2000;
  const std::vector<tk::IpcMode> transports{tk::IpcMode::kSocketpair, tk::IpcMode::kUnix};

  std::vector<ThroughputRun> tputs;
  std::vector<RttRun> rtts;
  for (const auto& t : transports) {
    tputs.push_back(run_throughput(t, frames));
    rtts.push_back(run_rtt(t, rounds));
  }

  Table t({"transport", "frames/sec", "MB/sec", "rtt p50 us", "rtt p99 us", "rtt mean us"});
  for (std::size_t i = 0; i < transports.size(); ++i) {
    t.row({tk::to_string(transports[i]), fmt(tputs[i].frames_per_sec, 0),
           fmt(tputs[i].mb_per_sec, 1),
           fmt(rtts[i].p50_us, 1), fmt(rtts[i].p99_us, 1), fmt(rtts[i].mean_us, 1)});
  }
  t.print();
  std::printf("every observable update crosses this wire once; a 50 Hz TV emitting ~10\n"
              "observables needs ~500 frames/sec — orders of magnitude under either\n"
              "transport's ceiling, so the process boundary does not throttle awareness.\n\n");

  std::ofstream json("BENCH_ipc.json");
  json << "{\n  \"experiment\": \"bench_ipc\",\n";
  json << "  \"frames\": " << frames << ",\n  \"rtt_rounds\": " << rounds << ",\n";
  json << "  \"transports\": [\n";
  for (std::size_t i = 0; i < transports.size(); ++i) {
    json << "    {\"transport\": \"" << tk::to_string(transports[i]) << "\""
         << ", \"frames_per_sec\": " << fmt(tputs[i].frames_per_sec, 0)
         << ", \"mb_per_sec\": " << fmt(tputs[i].mb_per_sec, 2)
         << ", \"rtt_p50_us\": " << fmt(rtts[i].p50_us, 2)
         << ", \"rtt_p99_us\": " << fmt(rtts[i].p99_us, 2)
         << ", \"rtt_mean_us\": " << fmt(rtts[i].mean_us, 2) << "}"
         << (i + 1 < transports.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_ipc.json (throughput + RTT per transport)\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_EncodeOutputEvent(benchmark::State& state) {
  const ipc::Frame f = sample_output_frame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ipc::encode_frame(f));
  }
}
BENCHMARK(BM_EncodeOutputEvent);

void BM_DecodeOutputEvent(benchmark::State& state) {
  const auto bytes = ipc::encode_frame(sample_output_frame());
  for (auto _ : state) {
    ipc::FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    ipc::Frame out;
    benchmark::DoNotOptimize(decoder.next(out));
  }
}
BENCHMARK(BM_DecodeOutputEvent);

void BM_SocketpairRoundTrip(benchmark::State& state) {
  auto [a, b] = ipc::socketpair_transport();
  const ipc::Frame f = sample_output_frame();
  for (auto _ : state) {
    a.send(f);
    ipc::Frame echo;
    b.recv(echo, 1000);
    b.send(echo);
    ipc::Frame back;
    a.recv(back, 1000);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_SocketpairRoundTrip);

}  // namespace

TRADER_BENCH_MAIN(report)
