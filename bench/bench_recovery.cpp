// E5 (§4.5): partial recovery of recoverable units "without large
// overhead".
//
// A pipeline of recoverable units exchanges messages at a fixed rate;
// one unit crashes mid-run. We compare the recovery policies (partial
// restart vs dependent-closure restart vs classic full restart) on
// downtime, message loss, and service delivered — and quantify the
// communication manager's steady-state routing overhead.
#include "bench_common.hpp"

#include <chrono>

#include "recovery/managers.hpp"
#include "recovery/recoverable_unit.hpp"
#include "runtime/scheduler.hpp"

namespace rec = trader::recovery;
namespace rt = trader::runtime;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

constexpr int kUnits = 6;
constexpr rt::SimDuration kRunTime = rt::sec(20);
constexpr rt::SimDuration kMsgPeriod = rt::msec(5);
constexpr rt::SimTime kCrashAt = rt::sec(8);

struct PolicyResult {
  rt::SimDuration total_downtime = 0;
  std::uint64_t units_restarted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t dropped = 0;
  std::uint64_t processed_total = 0;
};

PolicyResult run_policy(rec::RecoveryPolicy policy) {
  rt::Scheduler sched;
  rec::CommunicationManager comm(sched, /*quarantine_cap=*/100000);
  rec::RecoveryManager mgr(sched, comm, policy);

  std::vector<std::unique_ptr<rec::RecoverableUnit>> units;
  for (int i = 0; i < kUnits; ++i) {
    auto u = std::make_unique<rec::RecoverableUnit>("u" + std::to_string(i), rt::msec(250));
    u->set_handler([](rec::RecoverableUnit& self, const rt::Event&) {
      self.set_var("count", self.var_int("count") + 1);
    });
    u->checkpoint();
    comm.register_unit(u.get());
    units.push_back(std::move(u));
  }
  // Pipeline dependencies: u_{i+1} depends on u_i.
  for (int i = 0; i + 1 < kUnits; ++i) {
    mgr.add_dependency("u" + std::to_string(i + 1), "u" + std::to_string(i));
  }

  // Traffic: every unit periodically messages its successor.
  rt::Event msg;
  msg.topic = "work";
  msg.name = "item";
  sched.schedule_every(kMsgPeriod, [&] {
    for (int i = 0; i < kUnits; ++i) {
      comm.send("u" + std::to_string((i + 1) % kUnits), msg);
    }
  });

  // Crash u2; the watchdog-equivalent notices immediately.
  sched.schedule_at(kCrashAt, [&] { mgr.notify_failure("u2", sched.now()); });

  sched.run_until(kRunTime);

  PolicyResult result;
  for (const auto& u : units) {
    result.total_downtime += u->total_downtime();
    result.processed_total += static_cast<std::uint64_t>(u->var_int("count"));
  }
  result.units_restarted = mgr.units_restarted();
  result.delivered = comm.delivered();
  result.quarantined = comm.quarantined();
  result.dropped = comm.dropped();
  return result;
}

void report() {
  banner("E5", "partial recovery of recoverable units (paper §4.5, Twente framework)");

  Table t({"policy", "units restarted", "unit-downtime ms", "quarantined", "dropped",
           "messages delivered"});
  for (auto policy : {rec::RecoveryPolicy::kRestartUnit, rec::RecoveryPolicy::kRestartDependents,
                      rec::RecoveryPolicy::kFullRestart}) {
    const auto r = run_policy(policy);
    t.row({rec::to_string(policy), fmt_int(static_cast<std::int64_t>(r.units_restarted)),
           fmt(rt::to_ms(r.total_downtime), 0), fmt_int(static_cast<std::int64_t>(r.quarantined)),
           fmt_int(static_cast<std::int64_t>(r.dropped)),
           fmt_int(static_cast<std::int64_t>(r.delivered))});
  }
  t.print();
  std::printf("paper claim: \"independent recovery of parts of the system is possible\n"
              "without large overhead\" -- partial restart confines downtime to one unit\n"
              "and loses no messages (quarantine + flush), while full restart multiplies\n"
              "downtime by the unit count.\n\n");

  // Steady-state overhead of routing through the communication manager.
  banner("E5b", "communication-manager steady-state overhead");
  constexpr int kMessages = 200000;
  rt::Scheduler sched;
  rec::CommunicationManager comm(sched);
  rec::RecoverableUnit unit("u", rt::msec(10));
  std::uint64_t sink = 0;
  unit.set_handler([&sink](rec::RecoverableUnit&, const rt::Event&) { ++sink; });
  comm.register_unit(&unit);
  rt::Event msg;

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kMessages; ++i) comm.send("u", msg);
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kMessages; ++i) unit.deliver(msg);
  const auto t2 = std::chrono::steady_clock::now();

  const double managed_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kMessages;
  const double direct_ns =
      std::chrono::duration<double, std::nano>(t2 - t1).count() / kMessages;
  Table o({"path", "ns/message", "overhead"});
  o.row({"direct delivery", fmt(direct_ns, 1), "-"});
  o.row({"via communication manager", fmt(managed_ns, 1),
         fmt((managed_ns - direct_ns) / std::max(direct_ns, 1.0) * 100.0, 1) + " %"});
  o.print();
}

// ------------------------------------------------------- microbenchmarks

void BM_CommSend(benchmark::State& state) {
  rt::Scheduler sched;
  rec::CommunicationManager comm(sched);
  rec::RecoverableUnit unit("u", rt::msec(10));
  unit.set_handler([](rec::RecoverableUnit&, const rt::Event&) {});
  comm.register_unit(&unit);
  rt::Event msg;
  for (auto _ : state) {
    comm.send("u", msg);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommSend);

void BM_RecoveryCycle(benchmark::State& state) {
  rt::Scheduler sched;
  rec::CommunicationManager comm(sched);
  rec::RecoveryManager mgr(sched, comm, rec::RecoveryPolicy::kRestartUnit);
  rec::RecoverableUnit unit("u", rt::msec(1));
  unit.checkpoint();
  comm.register_unit(&unit);
  for (auto _ : state) {
    mgr.notify_failure("u", sched.now());
    sched.run_for(rt::msec(2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecoveryCycle);

void BM_CheckpointRestore(benchmark::State& state) {
  rec::RecoverableUnit unit("u", rt::msec(1));
  for (int i = 0; i < state.range(0); ++i) {
    unit.set_var("k" + std::to_string(i), std::int64_t{i});
  }
  unit.checkpoint();
  for (auto _ : state) {
    unit.kill(0);
    unit.complete_restart(1);
    benchmark::DoNotOptimize(unit.var_int("k0"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckpointRestore)->Arg(8)->Arg(128);

}  // namespace

TRADER_BENCH_MAIN(report)
