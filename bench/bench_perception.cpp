// E8 (§4.6): user-perceived failure severity and the attribution effect.
//
// Paper: "users, when asked, rank both image quality and a motorized
// swivel … as important. Under observation, however, users often turn
// out to be very tolerant concerning bad image quality (which is
// attributed to external sources), but get irritated if the swivel does
// not work correctly."
#include "bench_common.hpp"

#include "perception/impact.hpp"
#include "perception/perception.hpp"

namespace per = trader::perception;
namespace rt = trader::runtime;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

void report() {
  banner("E8", "stated importance vs observed irritation (paper §4.6, DTI)");

  per::UserPanel panel(400, 11);
  const auto result = panel.run(per::tv_functions(), per::tv_failure_stimuli());

  Table t({"function", "stated importance", "stated rank", "observed irritation",
           "observed rank", "typical attribution"});
  for (const auto& fn : per::tv_functions()) {
    const auto& o = result.of(fn.name);
    t.row({fn.name, fmt(o.stated_importance, 3), fmt_int(static_cast<std::int64_t>(o.stated_rank)),
           fmt(o.observed_irritation, 3), fmt_int(static_cast<std::int64_t>(o.observed_rank)),
           per::to_string(fn.typical_attribution)});
  }
  t.print();

  const auto& iq = result.of("image_quality");
  const auto& sw = result.of("swivel");
  std::printf("paper claim check: stated ranks of image_quality (%zu) and swivel (%zu) are\n"
              "adjacent at the top, while observed irritation inverts them: swivel %.3f vs\n"
              "image_quality %.3f (ratio %.2fx).\n\n",
              iq.stated_rank, sw.stated_rank, sw.observed_irritation, iq.observed_irritation,
              sw.observed_irritation / std::max(iq.observed_irritation, 1e-9));

  // Ablation: remove the attribution mechanism -> the inversion vanishes.
  banner("E8b", "ablation: attribution discount removed");
  per::IrritationParams no_att;
  no_att.external_discount = 1.0;
  per::UserPanel flat_panel(400, 11, per::IrritationModel(no_att));
  const auto flat = flat_panel.run(per::tv_functions(), per::tv_failure_stimuli());
  Table t2({"function", "observed irritation (with attribution)",
            "observed irritation (ablated)"});
  for (const char* name : {"image_quality", "swivel", "audio"}) {
    t2.row({name, fmt(result.of(name).observed_irritation, 3),
            fmt(flat.of(name).observed_irritation, 3)});
  }
  t2.print();
  std::printf("without the attribution mechanism image-quality failures would be the most\n"
              "irritating -- the inversion is attributable to attribution, as §4.6 found.\n");

  // User-group sensitivity (paper: 'the impact of characteristics such
  // as product usage, user group, and function importance').
  banner("E8c", "per-group sensitivity");
  per::IrritationModel model;
  per::FailureStimulus stim{"swivel", 0.8, rt::sec(10)};
  const auto fn = per::tv_functions()[1];  // swivel
  Table t3({"user group", "irritation (swivel failure)"});
  for (auto g : {per::UserGroup::kCasual, per::UserGroup::kEnthusiast, per::UserGroup::kSenior}) {
    t3.row({per::to_string(g),
            fmt(model.irritation(fn, stim, g, per::Attribution::kProduct), 3)});
  }
  t3.print();

  // E8d: the perception model feeding recovery (Fig. 1: recovery acts on
  // "the expected impact on the user").
  banner("E8d", "impact-aware repair urgency for typical comparator errors");
  auto assessor = per::tv_impact_assessor();
  struct Case {
    const char* label;
    trader::core::ErrorReport error;
  };
  auto err = [](const char* obs, trader::runtime::Value exp, trader::runtime::Value got,
                double dev) {
    trader::core::ErrorReport e;
    e.observable = obs;
    e.expected = std::move(exp);
    e.observed = std::move(got);
    e.deviation = dev;
    e.first_deviation_at = trader::runtime::sec(10);
    e.detected_at = trader::runtime::sec(10) + trader::runtime::sec(15);
    return e;
  };
  const std::vector<Case> cases = {
      {"sound gone (40 -> 0)",
       err("sound_level", trader::runtime::Value{std::int64_t{40}},
           trader::runtime::Value{std::int64_t{0}}, 40.0)},
      {"volume drift (40 -> 35)",
       err("sound_level", trader::runtime::Value{std::int64_t{40}},
           trader::runtime::Value{std::int64_t{35}}, 5.0)},
      {"wrong screen (teletext vs video)",
       err("screen_state", trader::runtime::Value{std::string("teletext")},
           trader::runtime::Value{std::string("video")}, 1.0)},
      {"wrong channel (5 vs 7)",
       err("channel", trader::runtime::Value{std::int64_t{5}},
           trader::runtime::Value{std::int64_t{7}}, 2.0)},
  };
  Table t4({"comparator error", "function", "impact score", "repair urgency"});
  for (const auto& c : cases) {
    const auto a = assessor.assess(c.error);
    t4.row({c.label, a.function, fmt(a.irritation, 3), per::to_string(a.urgency)});
  }
  t4.print();
}

// ------------------------------------------------------- microbenchmarks

void BM_IrritationScore(benchmark::State& state) {
  per::IrritationModel model;
  const auto fns = per::tv_functions();
  const auto stims = per::tv_failure_stimuli();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.irritation(fns[0], stims[0], per::UserGroup::kCasual,
                                              per::Attribution::kExternal));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IrritationScore);

void BM_PanelRun(benchmark::State& state) {
  const auto fns = per::tv_functions();
  const auto stims = per::tv_failure_stimuli();
  for (auto _ : state) {
    per::UserPanel panel(static_cast<std::size_t>(state.range(0)), 42);
    benchmark::DoNotOptimize(panel.run(fns, stims).outcomes.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PanelRun)->Arg(100)->Arg(1000);

}  // namespace

TRADER_BENCH_MAIN(report)
