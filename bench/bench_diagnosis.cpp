// E2 (§4.4): spectrum-based diagnosis of an injected teletext fault.
//
// Paper: NXP TV software instrumented into 60 000 blocks; a scenario of
// 27 key presses executed 13 796 blocks; the block containing the
// injected teletext fault ranked FIRST by spectrum similarity.
//
// Here: the synthetic 60 000-block program (DESIGN.md substitution
// table) with the fault seeded into the teletext feature; every
// similarity coefficient is reported, Ochiai being the reference.
#include "bench_common.hpp"

#include "diagnosis/component_ranker.hpp"
#include "diagnosis/spectrum.hpp"
#include "diagnosis/synthetic_program.hpp"
#include "observation/coverage.hpp"

namespace diag = trader::diagnosis;
namespace obs = trader::observation;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

struct Experiment {
  diag::SyntheticProgram program;
  obs::BlockCoverageRecorder coverage;
  std::vector<bool> errors;

  static Experiment run(std::uint64_t seed) {
    diag::SyntheticProgramConfig cfg;
    cfg.total_blocks = 60000;
    cfg.feature_count = 24;
    // Calibrated so a 27-press scenario touching 4 features executes
    // close to the paper's 13 796 of 60 000 blocks.
    cfg.common_fraction = 0.03;
    cfg.shared_fraction = 0.08;
    cfg.shared_cover = 0.05;
    cfg.seed = seed;
    diag::SyntheticProgram prog(cfg);
    // The teletext feature is index 2; fault at 80% handler depth so it
    // only triggers on deep activations (page interaction paths).
    const std::size_t per_feature = prog.feature_end(0) - prog.feature_begin(0);
    prog.set_fault_in_feature(2, static_cast<std::size_t>(per_feature * 0.8));

    obs::BlockCoverageRecorder cov(prog.block_count());
    // The 27-key-press scenario: teletext usage interleaved with zapping
    // and volume (features 0..3 stand for the distinct key handlers).
    const std::vector<std::size_t> scenario = {0, 2, 1, 2, 3, 2, 0, 2, 1, 2, 3, 2, 0, 2,
                                               1, 2, 3, 2, 0, 2, 1, 2, 3, 2, 0, 2, 1};
    auto errors = prog.run_scenario(scenario, cov);
    return Experiment{std::move(prog), std::move(cov), std::move(errors)};
  }
};

void report() {
  banner("E2", "spectrum-based diagnosis of an injected teletext fault (paper §4.4)");

  Experiment exp = Experiment::run(1234);
  int error_steps = 0;
  for (bool e : exp.errors) error_steps += e ? 1 : 0;

  Table setup({"quantity", "paper", "measured"});
  setup.row({"total blocks", "60000", fmt_int(static_cast<std::int64_t>(exp.program.block_count()))})
      .row({"scenario key presses", "27", fmt_int(static_cast<std::int64_t>(exp.errors.size()))})
      .row({"blocks executed", "13796",
            fmt_int(static_cast<std::int64_t>(exp.coverage.blocks_touched()))})
      .row({"erroneous steps", "(some)", fmt_int(error_steps)});
  setup.print();

  diag::SflRanker ranker;
  Table ranks({"coefficient", "rank of faulty block", "worst rank (ties)", "wasted effort"});
  for (auto c : diag::all_coefficients()) {
    const auto report = ranker.rank(exp.coverage, exp.errors, c);
    ranks.row({diag::to_string(c),
               fmt_int(static_cast<std::int64_t>(report.rank_of(exp.program.fault_block()))),
               fmt_int(static_cast<std::int64_t>(report.worst_rank_of(exp.program.fault_block()))),
               fmt(report.wasted_effort(exp.program.fault_block()), 5)});
  }
  ranks.print();
  std::printf("paper claim: \"the block which contains the fault appeared on the first place"
              " in the ranking\" -- reproduced when the Ochiai rank above is 1.\n");

  // Robustness across seeds (the paper reports 'also in other case
  // studies the results are encouraging').
  Table seeds({"seed", "ochiai rank", "blocks executed"});
  for (std::uint64_t seed : {7ull, 99ull, 2024ull, 4242ull}) {
    Experiment e = Experiment::run(seed);
    const auto rep = ranker.rank(e.coverage, e.errors, diag::Coefficient::kOchiai);
    seeds.row({fmt_int(static_cast<std::int64_t>(seed)),
               fmt_int(static_cast<std::int64_t>(rep.rank_of(e.program.fault_block()))),
               fmt_int(static_cast<std::int64_t>(e.coverage.blocks_touched()))});
  }
  seeds.print();

  // Component-level aggregation: which recoverable unit should recovery
  // target? (Feature 2 is the teletext handler.)
  Experiment comp_exp = Experiment::run(1234);
  const auto block_report =
      ranker.rank(comp_exp.coverage, comp_exp.errors, diag::Coefficient::kOchiai);
  const auto components = diag::ComponentRanker::rank(
      block_report, [&](std::size_t block) {
        const std::size_t f = comp_exp.program.feature_of(block);
        if (f == static_cast<std::size_t>(-1)) return std::string("infrastructure");
        if (f == 2) return std::string("teletext");
        return "feature" + std::to_string(f);
      });
  Table comp({"component", "suspiciousness", "blocks ranked"});
  for (std::size_t i = 0; i < components.size() && i < 5; ++i) {
    comp.row({components[i].component, fmt(components[i].score, 4),
              fmt_int(static_cast<std::int64_t>(components[i].blocks))});
  }
  comp.print();
  std::printf("component-level verdict: '%s' (recovery restarts that unit).\n",
              components.empty() ? "?" : components[0].component.c_str());
}

// ------------------------------------------------------- microbenchmarks

void BM_ScenarioExecution(benchmark::State& state) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = static_cast<std::size_t>(state.range(0));
  cfg.feature_count = 24;
  for (auto _ : state) {
    diag::SyntheticProgram prog(cfg);
    obs::BlockCoverageRecorder cov(prog.block_count());
    for (int s = 0; s < 27; ++s) {
      prog.run_step(static_cast<std::size_t>(s) % 10, cov);
      cov.end_step();
    }
    benchmark::DoNotOptimize(cov.blocks_touched());
  }
  state.SetItemsProcessed(state.iterations() * 27);
}
BENCHMARK(BM_ScenarioExecution)->Arg(6000)->Arg(60000);

void BM_SflRanking(benchmark::State& state) {
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = static_cast<std::size_t>(state.range(0));
  cfg.feature_count = 24;
  diag::SyntheticProgram prog(cfg);
  obs::BlockCoverageRecorder cov(prog.block_count());
  std::vector<std::size_t> scenario;
  for (int s = 0; s < 27; ++s) scenario.push_back(static_cast<std::size_t>(s) % 10);
  const auto errors = prog.run_scenario(scenario, cov);
  diag::SflRanker ranker;
  for (auto _ : state) {
    auto rep = ranker.rank(cov, errors, diag::Coefficient::kOchiai);
    benchmark::DoNotOptimize(rep.ranking.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cfg.total_blocks));
}
BENCHMARK(BM_SflRanking)->Arg(6000)->Arg(60000);

void BM_SimilarityCoefficient(benchmark::State& state) {
  const diag::SflCounts k{13, 5, 2, 7};
  const auto coeff = static_cast<diag::Coefficient>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(diag::similarity(coeff, k));
  }
}
BENCHMARK(BM_SimilarityCoefficient)->DenseRange(0, 4);

}  // namespace

TRADER_BENCH_MAIN(report)
