// E12 (§5): awareness experiments with the media player.
//
// Paper: "the framework is used for awareness experiments with the open
// source media player MPlayer, investigating both correctness and
// performance issues."
//
// Correctness: the transport spec model catches unexpected state changes
// (spontaneous buffering). Performance: A/V-sync drift and queue
// anomalies surface as range-probe violations.
#include "bench_common.hpp"

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "detection/detectors.hpp"
#include "faults/injector.hpp"
#include "mediaplayer/player.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"

namespace mp = trader::mediaplayer;
namespace rt = trader::runtime;
namespace core = trader::core;
namespace det = trader::detection;
namespace flt = trader::faults;
namespace sm = trader::statemachine;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

core::MonitorBuilder player_monitor() {
  core::MonitorBuilder builder;
  builder.model(std::make_unique<core::InterpretedModel>(mp::build_player_spec_model()))
      .input_topic("mp.input")
      .output_topic("mp.output")
      .input_mapper([](const rt::Event& ev) -> std::optional<sm::SmEvent> {
        const std::string cmd = ev.str_field("cmd");
        if (cmd.empty()) return std::nullopt;
        return sm::SmEvent::named(cmd);
      })
      .threshold("state", 0.0, /*max_consecutive=*/4)
      .comparison_period(rt::msec(25))
      .startup_grace(rt::msec(50))
      .channel_latency(rt::usec(300));
  return builder;
}

struct CaseResult {
  bool state_error = false;
  rt::SimTime state_latency = -1;
  std::size_t range_violations = 0;
  double final_av_offset = 0.0;
};

CaseResult run_case(const std::string& fault) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(13)};
  mp::MediaPlayer player(sched, bus, injector);
  auto monitor = player_monitor().build(sched, bus);
  player.start();
  monitor->start();
  player.play();
  sched.run_for(rt::sec(3));

  det::DetectionLog log;
  det::RangeChecker ranges(player.probes());
  ranges.poll(log);  // drain any boot noise
  const std::size_t baseline = log.all().size();

  rt::SimTime manifest = sched.now();
  if (fault == "vdec overrun") {
    injector.schedule(flt::FaultSpec{flt::FaultKind::kTaskOverrun, "vdec", sched.now(), 0, 1.0,
                                     {}});
  } else if (fault == "adec crash") {
    injector.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "adec", sched.now(), 0, 1.0, {}});
  } else if (fault == "demuxer stall") {
    injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "demuxer", sched.now(), 0,
                                     1.0, {}});
  } else if (fault == "none (seek storm)") {
    for (int i = 0; i < 5; ++i) {
      player.seek(30.0 * (i + 1));
      sched.run_for(rt::msec(900));
    }
  }
  sched.run_for(rt::sec(4));
  ranges.poll(log);

  CaseResult result;
  if (!monitor->errors().empty()) {
    result.state_error = true;
    result.state_latency = monitor->errors().front().detected_at - manifest;
  }
  result.range_violations = log.all().size() - baseline;
  result.final_av_offset = player.av_offset_ms();
  return result;
}

void report() {
  banner("E12", "media-player awareness: correctness and performance (paper §5, MPlayer)");

  Table t({"scenario", "state error (spec model)", "latency ms", "range violations (probes)",
           "A/V offset ms"});
  for (const char* fault : {"none (clean playback)", "none (seek storm)", "vdec overrun",
                            "adec crash", "demuxer stall"}) {
    const auto r = run_case(fault);
    t.row({fault, r.state_error ? "yes" : "no",
           r.state_latency >= 0 ? fmt(rt::to_ms(r.state_latency), 1) : "-",
           fmt_int(static_cast<std::int64_t>(r.range_violations)), fmt(r.final_av_offset, 1)});
  }
  t.print();
  std::printf("paper claim: the same framework catches correctness issues (unexpected\n"
              "transport state, via the spec model + IEnableCompare around seeks) and\n"
              "performance issues (A/V drift, via range probes) on a media player.\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_PlayerTick(benchmark::State& state) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(1)};
  mp::MediaPlayer player(sched, bus, injector);
  player.start();
  player.play();
  rt::SimTime t = 0;
  for (auto _ : state) {
    t += rt::msec(40);
    sched.run_until(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlayerTick);

void BM_PlayerSeek(benchmark::State& state) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(1)};
  mp::MediaPlayer player(sched, bus, injector);
  player.start();
  player.play();
  double pos = 0.0;
  for (auto _ : state) {
    pos += 1.0;
    player.seek(pos);
    sched.run_for(rt::msec(200));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlayerSeek);

}  // namespace

TRADER_BENCH_MAIN(report)
