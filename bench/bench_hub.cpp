// E17: one epoll loop vs a fleet of SUO links (src/hub).
//
// src/ipc pays one blocking socket (and one monitor thread of
// attention) per SUO; the hub multiplexes every link onto a single
// epoll event loop feeding one sharded fleet. This bench measures what
// that buys at fleet scale:
//   (a) aggregate ingest throughput — event frames per second decoded
//       and published into the fleet across N concurrent connections;
//   (b) ingest latency — wall time from the client's send() to the
//       frame being decoded and published (p50/p99), timestamped
//       through the hub's ingest tap.
// The sweep {1, 8, 64, 256} connections lands in BENCH_hub.json.
#include "bench_common.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "hub/event_loop.hpp"
#include "hub/hub.hpp"
#include "ipc/transport.hpp"
#include "ipc/wire.hpp"
#include "runtime/stats.hpp"
#include "statemachine/definition.hpp"

namespace rt = trader::runtime;
namespace sm = trader::statemachine;
namespace hub = trader::hub;
namespace ipc = trader::ipc;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

std::string slot_name(std::size_t k) { return "c" + std::to_string(k); }

/// Minimal spec model so every connection drives a real monitor; the
/// long startup grace keeps the comparator quiet (ingest is measured,
/// not deviation policy).
sm::StateMachineDef sink_model() {
  sm::StateMachineDef def("sink");
  const auto s = def.add_state("S");
  def.add_internal(s, "sample", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("n", env.vars.get_int("n") + 1);
  });
  return def;
}

ipc::Frame sample_frame(std::size_t k) {
  ipc::Frame f;
  f.type = ipc::FrameType::kOutputEvent;
  f.event.topic = "out." + slot_name(k);
  f.event.name = "sample";
  f.event.fields["value"] = std::int64_t{42};
  return f;
}

struct SweepRun {
  std::size_t connections = 0;
  double frames_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;  ///< Frames per readable drain (coalescing).
};

SweepRun run_sweep(std::size_t connections, std::uint64_t total_frames) {
  hub::HubConfig config;
  config.shards = connections >= 8 ? 4 : 1;
  config.probe_liveness = false;  // blocking writers cannot answer probes
  hub::AwarenessHub awareness_hub(config);

  for (std::size_t k = 0; k < connections; ++k) {
    trader::core::MonitorBuilder builder;
    builder.model(std::make_unique<trader::core::InterpretedModel>(sink_model()))
        .input_topic("in." + slot_name(k))
        .output_topic("out." + slot_name(k))
        .threshold("n", 0.0, 1000)
        .startup_grace(rt::msec(1 << 30));
    awareness_hub.add_monitor(slot_name(k), slot_name(k), std::move(builder));
  }

  rt::PercentileAccumulator latency_us;
  awareness_hub.set_ingest_tap([&latency_us](const rt::Event& ev) {
    latency_us.add(static_cast<double>(hub::EventLoop::now_ns() - ev.int_field("t0")) / 1000.0);
  });
  if (!awareness_hub.start()) return {};

  // Connect + handshake every client against the live loop.
  std::vector<ipc::FramedSocket> clients;
  clients.reserve(connections);
  for (std::size_t k = 0; k < connections; ++k) {
    const int fd = ipc::connect_unix_retry(awareness_hub.path(), 2000);
    if (fd < 0) return {};
    ipc::FramedSocket sock(fd);
    ipc::Frame hello;
    hello.type = ipc::FrameType::kHello;
    hello.detail = slot_name(k);
    sock.send(hello);
    ipc::Frame ack;
    while (sock.recv(ack, 0) != ipc::FramedSocket::RecvStatus::kFrame) {
      awareness_hub.poll(0);
    }
    clients.push_back(std::move(sock));
  }

  // Writer thread floods frames round-robin across every connection,
  // stamping each with its wall send time; the main thread runs the
  // event loop until everything has been decoded and published.
  const auto t_start = std::chrono::steady_clock::now();
  std::thread writer([&clients, connections, total_frames] {
    std::vector<ipc::Frame> frames;
    frames.reserve(connections);
    for (std::size_t k = 0; k < connections; ++k) frames.push_back(sample_frame(k));
    for (std::uint64_t i = 0; i < total_frames; ++i) {
      const std::size_t k = static_cast<std::size_t>(i % connections);
      frames[k].seq = static_cast<std::uint32_t>(i);
      frames[k].event.fields["t0"] = hub::EventLoop::now_ns();
      if (!clients[k].send(frames[k])) break;
    }
  });

  std::uint64_t next_advance = 1;
  while (awareness_hub.events_ingested() < total_frames) {
    if (awareness_hub.poll(100) < 0) break;
    if (awareness_hub.events_ingested() >= next_advance * 8192) {
      // Drain fleet mailboxes on an epoch grid so ingest is measured
      // against a live fleet, not an ever-growing queue.
      awareness_hub.run_until(awareness_hub.now() + rt::msec(10));
      ++next_advance;
    }
  }
  const auto t_end = std::chrono::steady_clock::now();
  writer.join();

  SweepRun run;
  run.connections = connections;
  const double wall_s = std::chrono::duration<double>(t_end - t_start).count();
  run.frames_per_sec = static_cast<double>(total_frames) / wall_s;
  run.p50_us = latency_us.percentile(50.0);
  run.p99_us = latency_us.percentile(99.0);
  const auto batch = awareness_hub.metrics().histograms.find("hub.batch_frames");
  if (batch != awareness_hub.metrics().histograms.end()) {
    run.mean_batch = batch->second.mean();
  }
  for (auto& c : clients) c.close();
  while (awareness_hub.connection_count() > 0) awareness_hub.poll(10);
  awareness_hub.stop();
  return run;
}

void report() {
  banner("E17", "fleet ingest through one epoll hub loop");

  const std::uint64_t total_frames = 120000;
  const std::vector<std::size_t> sweep{1, 8, 64, 256};

  std::vector<SweepRun> runs;
  for (const std::size_t n : sweep) runs.push_back(run_sweep(n, total_frames));

  Table t({"connections", "frames/sec", "ingest p50 us", "ingest p99 us", "frames/drain"});
  for (const auto& r : runs) {
    t.row({fmt_int(static_cast<std::int64_t>(r.connections)), fmt(r.frames_per_sec, 0),
           fmt(r.p50_us, 1), fmt(r.p99_us, 1), fmt(r.mean_batch, 1)});
  }
  t.print();
  std::printf("one loop carries the whole fleet: per-connection cost is an epoll\n"
              "registration, not a thread. Readable-drain coalescing grows with the\n"
              "connection count, so syscalls per frame fall as the fleet widens.\n\n");

  std::ofstream json("BENCH_hub.json");
  json << "{\n  \"experiment\": \"bench_hub\",\n";
  json << "  \"total_frames\": " << total_frames << ",\n";
  json << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    json << "    {\"connections\": " << runs[i].connections
         << ", \"frames_per_sec\": " << fmt(runs[i].frames_per_sec, 0)
         << ", \"ingest_p50_us\": " << fmt(runs[i].p50_us, 2)
         << ", \"ingest_p99_us\": " << fmt(runs[i].p99_us, 2)
         << ", \"frames_per_drain\": " << fmt(runs[i].mean_batch, 2) << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_hub.json (throughput + ingest latency per connection count)\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_EventLoopWakeDispatch(benchmark::State& state) {
  hub::EventLoop loop;
  for (auto _ : state) {
    loop.wake();
    loop.poll(0);
  }
}
BENCHMARK(BM_EventLoopWakeDispatch);

void BM_EventLoopTimerAddCancel(benchmark::State& state) {
  hub::EventLoop loop;
  for (auto _ : state) {
    const auto id = loop.add_timer(1'000'000'000, 0, [] {});
    loop.cancel_timer(id);
  }
}
BENCHMARK(BM_EventLoopTimerAddCancel);

void BM_HubIngestOneFrame(benchmark::State& state) {
  hub::HubConfig config;
  config.probe_liveness = false;
  hub::AwarenessHub awareness_hub(config);
  awareness_hub.add_slot("c0");
  awareness_hub.start();
  const int fd = ipc::connect_unix_retry(awareness_hub.path(), 2000);
  ipc::FramedSocket sock(fd);
  ipc::Frame hello;
  hello.type = ipc::FrameType::kHello;
  hello.detail = "c0";
  sock.send(hello);
  ipc::Frame ack;
  while (sock.recv(ack, 0) != ipc::FramedSocket::RecvStatus::kFrame) awareness_hub.poll(0);

  const ipc::Frame f = sample_frame(0);
  std::uint64_t sent = 0;
  for (auto _ : state) {
    sock.send(f);
    ++sent;
    while (awareness_hub.events_ingested() < sent) awareness_hub.poll(100);
  }
  sock.close();
  awareness_hub.stop();
}
BENCHMARK(BM_HubIngestOneFrame);

}  // namespace

TRADER_BENCH_MAIN(report)
