// E10 (§4.7): prioritizing inspection warnings by static
// execution-likelihood profiling (after Boogerd & Moonen [2]).
//
// Synthetic CFGs carry seeded warnings whose ground-truth relevance
// correlates with execution likelihood; we compare inspection orderings
// on effort-to-first-fault and on the normalized area under the
// true-positive recall curve.
#include "bench_common.hpp"

#include "devtime/priowarn.hpp"
#include "runtime/stats.hpp"

namespace dev = trader::devtime;
namespace rt = trader::runtime;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

void report() {
  banner("E10", "warning prioritization by execution likelihood (paper §4.7, [2])");

  constexpr std::size_t kCfgNodes = 4000;
  constexpr std::size_t kWarnings = 1500;
  constexpr double kBaseTpRate = 0.12;
  const std::vector<std::uint64_t> seeds = {3, 17, 51, 89, 123};

  Table t({"ordering", "effort to 1st TP (mean)", "TP-recall AUC (mean)"});
  dev::WarningPrioritizer prio;
  for (auto order : {dev::WarningOrder::kReportOrder, dev::WarningOrder::kSeverity,
                     dev::WarningOrder::kLikelihood,
                     dev::WarningOrder::kSeverityTimesLikelihood}) {
    rt::StatAccumulator effort;
    rt::StatAccumulator auc;
    for (auto seed : seeds) {
      const auto cfg = dev::SyntheticCfg::generate(kCfgNodes, seed);
      const auto like = cfg.execution_likelihood();
      const auto warnings = dev::generate_warnings(cfg, kWarnings, kBaseTpRate, seed ^ 0xAB);
      const auto idx = prio.prioritize(warnings, like, order);
      effort.add(static_cast<double>(dev::WarningPrioritizer::effort_to_first_tp(idx, warnings)));
      auc.add(dev::WarningPrioritizer::tp_auc(idx, warnings));
    }
    t.row({dev::to_string(order), fmt(effort.mean(), 1), fmt(auc.mean(), 4)});
  }
  t.print();
  std::printf("paper claim ([2]): ordering warnings by execution likelihood (optionally\n"
              "weighted by severity) finds action-relevant warnings with less inspection\n"
              "effort than the analyzer's report order or severity alone.\n");

  banner("E10b", "sensitivity to the base true-positive rate");
  Table t2({"base TP rate", "AUC report-order", "AUC likelihood"});
  for (double rate : {0.05, 0.15, 0.30}) {
    rt::StatAccumulator auc_report;
    rt::StatAccumulator auc_like;
    for (auto seed : seeds) {
      const auto cfg = dev::SyntheticCfg::generate(kCfgNodes, seed);
      const auto like = cfg.execution_likelihood();
      const auto warnings = dev::generate_warnings(cfg, kWarnings, rate, seed ^ 0xCD);
      auc_report.add(dev::WarningPrioritizer::tp_auc(
          prio.prioritize(warnings, like, dev::WarningOrder::kReportOrder), warnings));
      auc_like.add(dev::WarningPrioritizer::tp_auc(
          prio.prioritize(warnings, like, dev::WarningOrder::kLikelihood), warnings));
    }
    t2.row({fmt(rate, 2), fmt(auc_report.mean(), 4), fmt(auc_like.mean(), 4)});
  }
  t2.print();
}

// ------------------------------------------------------- microbenchmarks

void BM_CfgGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dev::SyntheticCfg::generate(static_cast<std::size_t>(state.range(0)), 42).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CfgGeneration)->Arg(1000)->Arg(10000);

void BM_LikelihoodPropagation(benchmark::State& state) {
  const auto cfg = dev::SyntheticCfg::generate(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg.execution_likelihood().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LikelihoodPropagation)->Arg(1000)->Arg(10000);

void BM_Prioritize(benchmark::State& state) {
  const auto cfg = dev::SyntheticCfg::generate(4000, 42);
  const auto like = cfg.execution_likelihood();
  const auto warnings = dev::generate_warnings(cfg, static_cast<std::size_t>(state.range(0)),
                                               0.1, 7);
  dev::WarningPrioritizer prio;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prio.prioritize(warnings, like, dev::WarningOrder::kSeverityTimesLikelihood).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Prioritize)->Arg(500)->Arg(5000);

}  // namespace

TRADER_BENCH_MAIN(report)
