// E11 (§2): complexity growth and the cost of awareness.
//
// Paper §2 motivates the whole project with complexity growth (TV
// software: 1 KB in 1980 to >20 MB in 2008; "given the large number of
// possible user settings and types of input, exhaustive testing is
// impossible"). We quantify that motivation on our substrate:
//   (a) the configuration space of a feature-parameterized TV model
//       grows exponentially with feature count, while
//   (b) the run-time awareness loop's per-event cost grows only mildly
//       with model size — the economic argument for run-time awareness
//       over exhaustive pre-release testing.
#include "bench_common.hpp"

#include <chrono>
#include <cmath>

#include "statemachine/checker.hpp"
#include "statemachine/compiled.hpp"
#include "statemachine/machine.hpp"

namespace sm = trader::statemachine;
namespace rt = trader::runtime;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

// A TV-like model with `features` independent two-state features plus a
// channel selector of `channels` values: reachable configuration count
// is channels * 2^features.
sm::StateMachineDef feature_model(int features) {
  sm::StateMachineDef def("features");
  const auto on = def.add_state("On");
  def.add_state("Idle", on);
  for (int f = 0; f < features; ++f) {
    const std::string var = "feat" + std::to_string(f);
    def.add_internal(on, "toggle" + std::to_string(f), nullptr, [var](sm::ActionEnv& env) {
      env.vars.set_bool(var, !env.vars.get_bool(var, false));
      env.emit(var, {{"value", env.vars.get_bool(var, false)}});
    });
  }
  return def;
}

// A deep-hierarchy model for dispatch-cost scaling.
sm::StateMachineDef deep_model(int depth, int breadth) {
  sm::StateMachineDef def("deep");
  std::vector<sm::StateId> parents{def.add_state("Root")};
  for (int d = 0; d < depth; ++d) {
    std::vector<sm::StateId> next;
    for (sm::StateId p : parents) {
      for (int b = 0; b < breadth; ++b) {
        next.push_back(def.add_state("S" + std::to_string(d) + "_" + std::to_string(b) + "_" +
                                         std::to_string(p),
                                     p));
      }
      if (next.size() > 64) break;
    }
    parents = next;
    if (parents.size() > 64) break;
  }
  // Event handlers at the root so every dispatch walks the hierarchy.
  def.add_internal(def.find_state("Root"), "ping", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("n", env.vars.get_int("n") + 1);
  });
  return def;
}

void report() {
  banner("E11", "complexity growth vs awareness cost (paper §2 motivation)");

  Table t({"features", "user-visible configurations", "model transitions",
           "interpreted ns/event", "compiled ns/event"});
  for (int features : {4, 8, 12, 16, 20}) {
    auto def = feature_model(features);
    const double configs = std::pow(2.0, features);

    auto time_events = [&](auto& machine) {
      machine.start(0);
      const int rounds = 20000;
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < rounds; ++i) {
        machine.dispatch(sm::SmEvent::named("toggle" + std::to_string(i % features)), i);
        machine.drain_outputs();
      }
      const auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::nano>(t1 - t0).count() / rounds;
    };
    sm::StateMachine interp(def);
    sm::CompiledMachine compiled(def);
    t.row({fmt_int(features), fmt(configs, 0),
           fmt_int(static_cast<std::int64_t>(def.transitions().size())),
           fmt(time_events(interp), 0), fmt(time_events(compiled), 0)});
  }
  t.print();
  std::printf("paper claim: the input/configuration space explodes exponentially (exhaustive\n"
              "testing impossible) while the run-time model's per-event cost stays flat --\n"
              "monitoring scales where testing cannot.\n\n");

  banner("E11b", "software growth context from §2");
  Table growth({"year", "TV software size (paper)", "configs of a 20-feature model"});
  growth.row({"1980", "1 KB", "-"});
  growth.row({"2008", ">20 MB (20,000x)", fmt(std::pow(2.0, 20), 0)});
  growth.print();
}

// ------------------------------------------------------- microbenchmarks

void BM_DeepHierarchyDispatch(benchmark::State& state) {
  auto def = deep_model(static_cast<int>(state.range(0)), 2);
  sm::StateMachine m(def);
  m.start(0);
  rt::SimTime t = 0;
  for (auto _ : state) {
    m.dispatch(sm::SmEvent::named("ping"), ++t);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_DeepHierarchyDispatch)->Arg(2)->Arg(4)->Arg(6);

void BM_CompileModel(benchmark::State& state) {
  auto def = feature_model(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sm::CompiledMachine m(def);
    benchmark::DoNotOptimize(m.leaf_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileModel)->Arg(8)->Arg(20);

void BM_ReachabilityCheck(benchmark::State& state) {
  auto def = deep_model(static_cast<int>(state.range(0)), 2);
  sm::ModelChecker checker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.reachable_states(def).size());
  }
}
BENCHMARK(BM_ReachabilityCheck)->Arg(4)->Arg(6);

}  // namespace

TRADER_BENCH_MAIN(report)
