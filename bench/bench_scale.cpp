// E11 (§2): complexity growth and the cost of awareness.
//
// Paper §2 motivates the whole project with complexity growth (TV
// software: 1 KB in 1980 to >20 MB in 2008; "given the large number of
// possible user settings and types of input, exhaustive testing is
// impossible"). We quantify that motivation on our substrate:
//   (a) the configuration space of a feature-parameterized TV model
//       grows exponentially with feature count, while
//   (b) the run-time awareness loop's per-event cost grows only mildly
//       with model size — the economic argument for run-time awareness
//       over exhaustive pre-release testing.
// E15 extends the argument to fleet scale: the sharded runtime spreads
// many awareness monitors over worker threads and must keep the *same*
// error reports regardless of shard count — throughput is only worth
// having if determinism survives it. The run also exports the merged
// metrics snapshot to BENCH_scale.json for the CI check script.
#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <thread>

#include "core/monitor_builder.hpp"
#include "core/sharded_fleet.hpp"
#include "statemachine/checker.hpp"
#include "statemachine/compiled.hpp"
#include "statemachine/machine.hpp"

namespace sm = trader::statemachine;
namespace rt = trader::runtime;
namespace core = trader::core;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

// A TV-like model with `features` independent two-state features plus a
// channel selector of `channels` values: reachable configuration count
// is channels * 2^features.
sm::StateMachineDef feature_model(int features) {
  sm::StateMachineDef def("features");
  const auto on = def.add_state("On");
  def.add_state("Idle", on);
  for (int f = 0; f < features; ++f) {
    const std::string var = "feat" + std::to_string(f);
    def.add_internal(on, "toggle" + std::to_string(f), nullptr, [var](sm::ActionEnv& env) {
      env.vars.set_bool(var, !env.vars.get_bool(var, false));
      env.emit(var, {{"value", env.vars.get_bool(var, false)}});
    });
  }
  return def;
}

// A deep-hierarchy model for dispatch-cost scaling.
sm::StateMachineDef deep_model(int depth, int breadth) {
  sm::StateMachineDef def("deep");
  std::vector<sm::StateId> parents{def.add_state("Root")};
  for (int d = 0; d < depth; ++d) {
    std::vector<sm::StateId> next;
    for (sm::StateId p : parents) {
      for (int b = 0; b < breadth; ++b) {
        next.push_back(def.add_state("S" + std::to_string(d) + "_" + std::to_string(b) + "_" +
                                         std::to_string(p),
                                     p));
      }
      if (next.size() > 64) break;
    }
    parents = next;
    if (parents.size() > 64) break;
  }
  // Event handlers at the root so every dispatch walks the hierarchy.
  def.add_internal(def.find_state("Root"), "ping", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("n", env.vars.get_int("n") + 1);
  });
  return def;
}

void report() {
  banner("E11", "complexity growth vs awareness cost (paper §2 motivation)");

  Table t({"features", "user-visible configurations", "model transitions",
           "interpreted ns/event", "compiled ns/event"});
  for (int features : {4, 8, 12, 16, 20}) {
    auto def = feature_model(features);
    const double configs = std::pow(2.0, features);

    auto time_events = [&](auto& machine) {
      machine.start(0);
      const int rounds = 20000;
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < rounds; ++i) {
        machine.dispatch(sm::SmEvent::named("toggle" + std::to_string(i % features)), i);
        machine.drain_outputs();
      }
      const auto t1 = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::nano>(t1 - t0).count() / rounds;
    };
    sm::StateMachine interp(def);
    sm::CompiledMachine compiled(def);
    t.row({fmt_int(features), fmt(configs, 0),
           fmt_int(static_cast<std::int64_t>(def.transitions().size())),
           fmt(time_events(interp), 0), fmt(time_events(compiled), 0)});
  }
  t.print();
  std::printf("paper claim: the input/configuration space explodes exponentially (exhaustive\n"
              "testing impossible) while the run-time model's per-event cost stays flat --\n"
              "monitoring scales where testing cannot.\n\n");

  banner("E11b", "software growth context from §2");
  Table growth({"year", "TV software size (paper)", "configs of a 20-feature model"});
  growth.row({"1980", "1 KB", "-"});
  growth.row({"2008", ">20 MB (20,000x)", fmt(std::pow(2.0, 20), 0)});
  growth.print();
}

// ------------------------------------------------- E15: sharded fleet scale

// The counter spec model used throughout the determinism tests.
sm::StateMachineDef counter_model() {
  sm::StateMachineDef def("counter");
  const auto s = def.add_state("S");
  def.add_internal(s, "inc", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("n", env.vars.get_int("n") + 1);
    env.emit("count", {{"value", env.vars.get_int("n")}});
  });
  return def;
}

struct ScaleRun {
  double wall_ms = 0.0;
  std::uint64_t ticks = 0;
  std::uint64_t epochs = 0;
  std::size_t errors = 0;
  std::string fingerprint;
  std::string metrics_json;
};

// One scripted fleet session: `monitors` counter monitors under external
// traffic, with odd monitors silently dropping one command near the end
// (so the comparator has real work and real errors to report).
ScaleRun run_fleet(std::size_t shards, int monitors, int steps) {
  core::ShardedFleetConfig cfg;
  cfg.shards = shards;
  cfg.epoch = rt::msec(5);
  cfg.seed = 0xBE11C;
  core::ShardedFleet fleet(cfg);
  for (int m = 0; m < monitors; ++m) {
    core::MonitorBuilder builder;
    builder.model(counter_model())
        .input_topic("in." + std::to_string(m))
        .output_topic("out." + std::to_string(m))
        .threshold("count", 0.0, /*max_consecutive=*/2)
        .comparison_period(rt::msec(10))
        .startup_grace(rt::msec(5));
    fleet.add_monitor("aspect" + std::to_string(m), std::move(builder));
  }
  fleet.start();

  std::vector<std::int64_t> system_count(static_cast<std::size_t>(monitors), 0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int step = 0; step < steps; ++step) {
    for (int m = 0; m < monitors; ++m) {
      rt::Event in;
      in.topic = "in." + std::to_string(m);
      in.name = "key";
      in.fields["key"] = std::string("inc");
      fleet.publish(in);
      if (!(m % 2 == 1 && step == steps - 4)) ++system_count[static_cast<std::size_t>(m)];
      rt::Event out;
      out.topic = "out." + std::to_string(m);
      out.name = "count";
      out.fields["value"] = system_count[static_cast<std::size_t>(m)];
      fleet.publish(out);
    }
    fleet.run_for(rt::msec(15));
  }
  fleet.run_for(rt::msec(100));
  const auto t1 = std::chrono::steady_clock::now();
  fleet.stop();

  ScaleRun result;
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const auto snap = fleet.metrics();
  result.ticks = snap.counter("controller.ticks");
  result.epochs = snap.counter("fleet.epochs");
  result.errors = fleet.errors().size();
  for (const auto& e : fleet.errors()) {
    result.fingerprint += e.aspect + "@" + std::to_string(e.report.detected_at) + ";";
  }
  result.metrics_json = snap.to_json();
  return result;
}

void report_scale() {
  banner("E15", "sharded fleet runtime: throughput vs shards, determinism held");

  const int monitors = 48;
  const int steps = 120;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host: %u hardware thread(s); %d monitors, %d traffic steps per run\n\n",
              cores, monitors, steps);

  std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  std::vector<ScaleRun> runs;
  for (std::size_t shards : shard_counts) runs.push_back(run_fleet(shards, monitors, steps));

  const double base_ms = runs[0].wall_ms;
  const std::string& base_fp = runs[0].fingerprint;
  Table t({"shards", "wall ms", "ticks", "ticks/sec", "speedup", "errors",
           "same reports as 1 shard"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ScaleRun& r = runs[i];
    t.row({fmt_int(static_cast<std::int64_t>(shard_counts[i])), fmt(r.wall_ms, 1),
           fmt_int(static_cast<std::int64_t>(r.ticks)),
           fmt(static_cast<double>(r.ticks) / (r.wall_ms / 1000.0), 0),
           fmt(base_ms / r.wall_ms, 2), fmt_int(static_cast<std::int64_t>(r.errors)),
           r.fingerprint == base_fp ? "yes" : "NO -- BUG"});
  }
  t.print();
  std::printf("paper claim (§5 scale-up): awareness must extend from one aspect to a fleet\n"
              "without changing what is detected. Error reports are byte-identical across\n"
              "shard counts; speedup tracks available cores (this host has %u).\n\n", cores);

  // Machine-readable snapshot for scripts/check.sh.
  std::ofstream json("BENCH_scale.json");
  json << "{\n  \"experiment\": \"bench_scale\",\n";
  json << "  \"hardware_threads\": " << cores << ",\n";
  json << "  \"monitors\": " << monitors << ",\n  \"steps\": " << steps << ",\n";
  json << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ScaleRun& r = runs[i];
    json << "    {\"shards\": " << shard_counts[i] << ", \"wall_ms\": " << fmt(r.wall_ms, 3)
         << ", \"ticks\": " << r.ticks << ", \"epochs\": " << r.epochs
         << ", \"errors\": " << r.errors << ", \"speedup\": " << fmt(base_ms / r.wall_ms, 3)
         << ", \"deterministic\": " << (r.fingerprint == base_fp ? "true" : "false") << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"metrics_8_shards\": " << runs.back().metrics_json << "\n}\n";
  std::printf("wrote BENCH_scale.json (merged 8-shard metrics snapshot + per-shard runs)\n");
}

void report_all() {
  report();
  report_scale();
}

// ------------------------------------------------------- microbenchmarks

void BM_ShardedFleetEpoch(benchmark::State& state) {
  core::ShardedFleetConfig cfg;
  cfg.shards = static_cast<std::size_t>(state.range(0));
  cfg.epoch = rt::msec(5);
  core::ShardedFleet fleet(cfg);
  for (int m = 0; m < 16; ++m) {
    core::MonitorBuilder builder;
    builder.model(counter_model())
        .input_topic("in." + std::to_string(m))
        .output_topic("out." + std::to_string(m))
        .threshold("count", 0.0, 2)
        .comparison_period(rt::msec(10));
    fleet.add_monitor("aspect" + std::to_string(m), std::move(builder));
  }
  fleet.start();
  for (auto _ : state) {
    fleet.run_for(rt::msec(5));  // exactly one epoch: mailbox drain + barrier + tick
  }
  fleet.stop();
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("shards=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ShardedFleetEpoch)->Arg(1)->Arg(2)->Arg(8);

void BM_DeepHierarchyDispatch(benchmark::State& state) {
  auto def = deep_model(static_cast<int>(state.range(0)), 2);
  sm::StateMachine m(def);
  m.start(0);
  rt::SimTime t = 0;
  for (auto _ : state) {
    m.dispatch(sm::SmEvent::named("ping"), ++t);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_DeepHierarchyDispatch)->Arg(2)->Arg(4)->Arg(6);

void BM_CompileModel(benchmark::State& state) {
  auto def = feature_model(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sm::CompiledMachine m(def);
    benchmark::DoNotOptimize(m.leaf_count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileModel)->Arg(8)->Arg(20);

void BM_ReachabilityCheck(benchmark::State& state) {
  auto def = deep_model(static_cast<int>(state.range(0)), 2);
  sm::ModelChecker checker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.reachable_states(def).size());
  }
}
BENCHMARK(BM_ReachabilityCheck)->Arg(4)->Arg(6);

}  // namespace

TRADER_BENCH_MAIN(report_all)
