// E22: durable hub — what the write-ahead journal costs and what a
// restart buys back.
//
//   (a) append throughput — records/sec and MB/s per fsync policy
//       (none / batch / every-record) for frame-sized payloads; the
//       batch column is what every hub poll actually pays, the
//       every-record column prices the strongest durability contract;
//   (b) recovery time vs WAL length — a cold hub replaying 10k/50k/
//       200k journaled spectrum frames through the real dispatch
//       (frame decode + re-fold), with and without a checkpoint
//       covering most of the log: the checkpoint turns linear replay
//       into a snapshot load plus a short tail;
//   (c) checkpoint cost — snapshot write and load wall time for a
//       fleet-sized diagnosis state (slots x touched blocks).
// Everything lands in BENCH_journal.json.
#include "bench_common.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "fleetdiag/aggregator.hpp"
#include "ipc/wire.hpp"
#include "journal/checkpoint.hpp"
#include "journal/codec.hpp"
#include "journal/replay.hpp"
#include "journal/wal.hpp"

namespace fd = trader::fleetdiag;
namespace ipc = trader::ipc;
namespace jn = trader::journal;
namespace rt = trader::runtime;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

/// Scratch dir under the working directory (benches run where the
/// JSON reports land); purged and removed when done.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "bench_journal_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    if (p != nullptr) path = p;
  }
  ~TempDir() {
    if (path.empty()) return;
    jn::purge_journal_dir(path);
    ::rmdir(path.c_str());
  }
};

double wall_ms(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// A journaled spectrum frame, encoded once — the payload shape the
/// hub appends on every kSpectrum ingest.
std::vector<std::uint8_t> spectrum_payload() {
  ipc::Frame f;
  f.type = ipc::FrameType::kSpectrum;
  f.seq = 1;
  f.block_count = 2000;
  f.spectra.push_back({true, {100, 200, 300, 400}});
  f.spectra.push_back({false, {101, 201, 301, 401}});
  return ipc::encode_frame(f);
}

// ------------------------------------------------ (a) append throughput

struct AppendRun {
  std::string policy;
  std::uint64_t records = 0;
  double wall_s = 0.0;
  double records_per_sec = 0.0;
  double mb_per_sec = 0.0;
  std::uint64_t syncs = 0;
};

AppendRun run_append(jn::FsyncPolicy policy, std::uint64_t records,
                     std::uint64_t batch = 64) {
  TempDir dir;
  const std::vector<std::uint8_t> payload = spectrum_payload();
  jn::WalWriter w;
  AppendRun run;
  run.policy = jn::to_string(policy);
  run.records = records;
  if (!w.open(dir.path, 1, 8u << 20, policy)) return run;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 1; i <= records; ++i) {
    w.append(jn::WalRecordType::kFrame, "tv0", static_cast<rt::SimTime>(i),
             payload.data(), payload.size());
    // Model the hub's poll boundary: one batched fsync per `batch`
    // appends (a no-op under kNone / kEveryRecord).
    if (policy == jn::FsyncPolicy::kBatch && i % batch == 0) w.sync();
  }
  w.close();
  const auto t1 = std::chrono::steady_clock::now();
  run.wall_s = wall_ms(t0, t1) / 1000.0;
  run.records_per_sec = static_cast<double>(records) / run.wall_s;
  run.mb_per_sec = static_cast<double>(w.stats().bytes) / run.wall_s / 1e6;
  run.syncs = w.stats().syncs;
  return run;
}

// ------------------------------------------------ (b) recovery vs length

struct NullSink : jn::ReplaySink {
  std::uint64_t frames = 0;
  void replay_frame(const std::string&, const ipc::Frame&) override { ++frames; }
  void replay_slot_up(const std::string&, std::uint8_t) override {}
  void replay_slot_down(const std::string&, bool) override {}
  void replay_tick(rt::SimTime) override {}
};

struct RecoveryRun {
  std::uint64_t wal_records = 0;
  bool checkpointed = false;
  std::uint64_t replayed = 0;
  double recover_ms = 0.0;
  double replay_per_sec = 0.0;
};

RecoveryRun run_recovery(std::uint64_t records, bool checkpoint_midway) {
  TempDir dir;
  jn::JournalConfig cfg;
  cfg.enabled = true;
  cfg.dir = dir.path;
  cfg.segment_bytes = 8u << 20;
  cfg.fsync = jn::FsyncPolicy::kNone;  // measure replay, not the platter
  cfg.checkpoint_every_records = 0;

  ipc::Frame frame;
  frame.type = ipc::FrameType::kSpectrum;
  frame.seq = 1;
  frame.block_count = 2000;
  frame.spectra.push_back({true, {100, 200, 300, 400}});
  frame.spectra.push_back({false, {101, 201, 301, 401}});

  // Session 1: journal `records` frames; optionally checkpoint at 90%.
  fd::FleetAggregator agg({10, trader::diagnosis::Coefficient::kOchiai, 64});
  const std::vector<jn::Checkpointable*> parts = {&agg};
  {
    jn::HubJournal journal(cfg, nullptr);
    NullSink sink;
    journal.recover(parts, sink);
    const std::uint64_t ckpt_at = checkpoint_midway ? records * 9 / 10 : 0;
    for (std::uint64_t i = 1; i <= records; ++i) {
      journal.append_frame("tv0", frame);
      agg.ingest("tv0", frame.spectra);
      if (ckpt_at != 0 && i == ckpt_at) journal.checkpoint_now(parts);
    }
    journal.abandon();
  }

  // Session 2: the measured restart.
  fd::FleetAggregator cold({10, trader::diagnosis::Coefficient::kOchiai, 64});
  const std::vector<jn::Checkpointable*> cold_parts = {&cold};
  jn::HubJournal journal(cfg, nullptr);
  NullSink sink;
  const auto t0 = std::chrono::steady_clock::now();
  const jn::JournalRecoveryInfo info = journal.recover(cold_parts, sink);
  const auto t1 = std::chrono::steady_clock::now();

  RecoveryRun run;
  run.wal_records = records;
  run.checkpointed = info.from_checkpoint;
  run.replayed = info.replayed_records;
  run.recover_ms = wall_ms(t0, t1);
  run.replay_per_sec = run.recover_ms > 0.0
                           ? static_cast<double>(info.replayed_records) /
                                 (run.recover_ms / 1000.0)
                           : 0.0;
  return run;
}

// ------------------------------------------------ (c) checkpoint cost

struct CheckpointRun {
  std::size_t slots = 0;
  double write_ms = 0.0;
  double load_ms = 0.0;
  double bytes_mb = 0.0;
};

CheckpointRun run_checkpoint(std::size_t slots) {
  TempDir dir;
  fd::FleetAggregator agg({10, trader::diagnosis::Coefficient::kOchiai, 16});
  for (std::size_t k = 0; k < slots; ++k) {
    const std::string slot = "tv" + std::to_string(k);
    for (std::uint32_t r = 0; r < 32; ++r) {
      agg.ingest(slot, std::vector<ipc::SpectrumStep>{
                           {r % 8 == 0, {r * 4, r * 4 + 1, r * 4 + 2}},
                           {false, {r * 4 + 3}}});
    }
  }
  const std::vector<jn::Checkpointable*> parts = {&agg};
  jn::CheckpointStore store(dir.path, 2);
  std::string error;
  const auto t0 = std::chrono::steady_clock::now();
  store.write(1, parts, &error);
  const auto t1 = std::chrono::steady_clock::now();

  fd::FleetAggregator cold({10, trader::diagnosis::Coefficient::kOchiai, 16});
  const std::vector<jn::Checkpointable*> cold_parts = {&cold};
  std::uint64_t seq = 0;
  const auto t2 = std::chrono::steady_clock::now();
  store.load_latest(cold_parts, &seq, &error);
  const auto t3 = std::chrono::steady_clock::now();

  jn::Encoder size_probe;
  agg.save_state(size_probe);
  CheckpointRun run;
  run.slots = slots;
  run.write_ms = wall_ms(t0, t1);
  run.load_ms = wall_ms(t2, t3);
  run.bytes_mb = static_cast<double>(size_probe.size()) / 1e6;
  return run;
}

// ---------------------------------------------------------- the report

void report() {
  banner("E22", "durable hub: WAL append cost, checkpoint cost, recovery time");

  std::vector<AppendRun> appends;
  appends.push_back(run_append(jn::FsyncPolicy::kNone, 200000));
  appends.push_back(run_append(jn::FsyncPolicy::kBatch, 200000));
  appends.push_back(run_append(jn::FsyncPolicy::kEveryRecord, 2000));
  Table at({"fsync", "records", "records/sec", "MB/sec", "fsyncs"});
  for (const AppendRun& r : appends) {
    at.row({r.policy, fmt_int(static_cast<std::int64_t>(r.records)),
            fmt(r.records_per_sec, 0), fmt(r.mb_per_sec, 1),
            fmt_int(static_cast<std::int64_t>(r.syncs))});
  }
  at.print();
  std::printf("batch amortizes one fsync over a poll's worth of appends;\n"
              "every-record is the synchronous floor a caller can demand.\n\n");

  std::vector<RecoveryRun> recoveries;
  for (const std::uint64_t n : {std::uint64_t{10000}, std::uint64_t{50000},
                                std::uint64_t{200000}}) {
    recoveries.push_back(run_recovery(n, /*checkpoint_midway=*/false));
  }
  recoveries.push_back(run_recovery(200000, /*checkpoint_midway=*/true));
  Table rt_({"wal records", "checkpoint", "replayed", "recover ms", "replay/sec"});
  for (const RecoveryRun& r : recoveries) {
    rt_.row({fmt_int(static_cast<std::int64_t>(r.wal_records)),
             r.checkpointed ? "yes" : "no",
             fmt_int(static_cast<std::int64_t>(r.replayed)), fmt(r.recover_ms, 1),
             fmt(r.replay_per_sec, 0)});
  }
  rt_.print();
  std::printf("restart time is linear in the WAL tail; a checkpoint collapses\n"
              "the tail to the records since the last snapshot.\n\n");

  std::vector<CheckpointRun> checkpoints;
  for (const std::size_t s : {std::size_t{8}, std::size_t{64}}) {
    checkpoints.push_back(run_checkpoint(s));
  }
  Table ct({"slots", "state MB", "write ms", "load ms"});
  for (const CheckpointRun& r : checkpoints) {
    ct.row({fmt_int(static_cast<std::int64_t>(r.slots)), fmt(r.bytes_mb, 2),
            fmt(r.write_ms, 2), fmt(r.load_ms, 2)});
  }
  ct.print();
  std::printf("snapshot cost scales with live diagnosis state, not WAL length —\n"
              "the trade the checkpoint cadence knob tunes.\n\n");

  std::ofstream json("BENCH_journal.json");
  json << "{\n  \"experiment\": \"bench_journal\",\n";
  json << "  \"append\": [\n";
  for (std::size_t i = 0; i < appends.size(); ++i) {
    const AppendRun& r = appends[i];
    json << "    {\"fsync\": \"" << r.policy << "\", \"records\": " << r.records
         << ", \"records_per_sec\": " << fmt(r.records_per_sec, 0)
         << ", \"mb_per_sec\": " << fmt(r.mb_per_sec, 2)
         << ", \"fsyncs\": " << r.syncs << "}" << (i + 1 < appends.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"recovery\": [\n";
  for (std::size_t i = 0; i < recoveries.size(); ++i) {
    const RecoveryRun& r = recoveries[i];
    json << "    {\"wal_records\": " << r.wal_records << ", \"checkpoint\": "
         << (r.checkpointed ? "true" : "false") << ", \"replayed\": " << r.replayed
         << ", \"recover_ms\": " << fmt(r.recover_ms, 2)
         << ", \"replay_per_sec\": " << fmt(r.replay_per_sec, 0) << "}"
         << (i + 1 < recoveries.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"checkpoint\": [\n";
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    const CheckpointRun& r = checkpoints[i];
    json << "    {\"slots\": " << r.slots << ", \"state_mb\": " << fmt(r.bytes_mb, 3)
         << ", \"write_ms\": " << fmt(r.write_ms, 3)
         << ", \"load_ms\": " << fmt(r.load_ms, 3) << "}"
         << (i + 1 < checkpoints.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_journal.json (append throughput + recovery + checkpoint)\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_WalAppend(benchmark::State& state) {
  // Hot-path cost of one journaled frame append (no fsync): encode the
  // body, checksum it, push it into the segment buffer.
  TempDir dir;
  const std::vector<std::uint8_t> payload = spectrum_payload();
  jn::WalWriter w;
  w.open(dir.path, 1, 64u << 20, jn::FsyncPolicy::kNone);
  rt::SimTime now = 0;
  for (auto _ : state) {
    now += 1;
    benchmark::DoNotOptimize(
        w.append(jn::WalRecordType::kFrame, "tv0", now, payload.data(), payload.size()));
  }
  w.close();
}
BENCHMARK(BM_WalAppend);

void BM_CheckpointCodecRoundtrip(benchmark::State& state) {
  // Pure codec cost of snapshotting one mid-sized diagnosis state.
  fd::FleetAggregator agg({10, trader::diagnosis::Coefficient::kOchiai, 16});
  for (std::uint32_t r = 0; r < 64; ++r) {
    agg.ingest("tv0", std::vector<ipc::SpectrumStep>{{r % 8 == 0, {r, r + 1}},
                                                     {false, {r + 2}}});
  }
  fd::FleetAggregator cold({10, trader::diagnosis::Coefficient::kOchiai, 16});
  for (auto _ : state) {
    jn::Encoder enc;
    agg.save_state(enc);
    jn::Decoder dec(enc.buffer());
    benchmark::DoNotOptimize(cold.load_state(dec, agg.checkpoint_version()));
  }
}
BENCHMARK(BM_CheckpointCodecRoundtrip);

}  // namespace

TRADER_BENCH_MAIN(report)
