// E21: closed-loop fleet recovery — diagnosis-driven actuation costs.
//
// E20 closed the observe->diagnose half; this bench prices the act half
// and shows what it buys:
//   (a) live actuation — N real publishers (spectrum streaming + a
//       seeded program fault each) against a hub with the
//       RecoveryOrchestrator enabled; measured: event throughput with
//       the act path hot, kRecover commands issued, SUO-side repairs,
//       and the command->ack wall round-trip sampled from the hub's
//       outstanding-command transitions;
//   (b) storm guard — a correlated fault across 32 slots against the
//       fleet-wide token bucket; measured: actions per refill window
//       (never above capacity), suppressions, quarantine tail;
//   (c) MTTR — the RecoveryCampaign table, closed loop vs the
//       supervision-only baseline (identical scenario stream, repairs
//       disabled): downtime per fault kind, repair rate, and
//       recovery precision against injector ground truth — for a
//       uniform draw and for the shipped FUZZ_corpus.json findings.
// Everything lands in BENCH_recovery.json.
#include "bench_common.hpp"

#include <sys/stat.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "fleetdiag/aggregator.hpp"
#include "hub/agent.hpp"
#include "hub/hub.hpp"
#include "hub/recovery.hpp"
#include "ipc/wire.hpp"
#include "runtime/stats.hpp"
#include "testkit/diag_campaign.hpp"
#include "testkit/recovery_campaign.hpp"

namespace rt = trader::runtime;
namespace fd = trader::fleetdiag;
namespace hub = trader::hub;
namespace ipc = trader::ipc;
namespace rec = trader::recovery;
namespace tk = trader::testkit;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

std::string slot_name(std::size_t k) { return "tv" + std::to_string(k); }

std::string corpus_path() {
  std::string dir(__FILE__);
  const auto slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  for (const std::string& candidate :
       {dir + "/../FUZZ_corpus.json", std::string("FUZZ_corpus.json"),
        std::string("../FUZZ_corpus.json")}) {
    struct stat st{};
    if (::stat(candidate.c_str(), &st) == 0 && st.st_size > 0) return candidate;
  }
  return "";
}

// ------------------------------------------------ (a) live actuation

struct LiveRun {
  std::size_t publishers = 0;
  double events_per_sec = 0.0;
  std::uint64_t commands = 0;       ///< kRecover frames issued (excl. retries).
  std::uint64_t retries = 0;
  std::uint64_t acked_ok = 0;
  std::uint64_t repairs = 0;        ///< SUO-side fault clears.
  std::uint64_t quarantined = 0;
  double ack_rtt_p50_ms = 0.0;      ///< Command->ack wall round-trip.
  double ack_rtt_p99_ms = 0.0;
};

LiveRun run_live(std::size_t publishers) {
  hub::HubConfig config;
  config.shards = publishers >= 8 ? 4 : 1;
  config.probe_liveness = false;
  // The orchestrator's cooldowns/refills are virtual-time; follow the
  // fleet's event watermarks so the ladder can climb mid-stream.
  config.auto_advance = true;
  config.diag.top_k = 10;
  config.diag.refresh_every = 1;
  config.recovery.enabled = true;
  config.recovery.stable_reports = 2;
  config.recovery.token_capacity = 8;
  config.recovery.token_refill_every = rt::msec(100);
  config.recovery.cooldown = rt::msec(100);
  config.recovery.cooldown_jitter = rt::msec(40);
  config.recovery.ack_timeout = rt::msec(500);
  config.recovery.escalation.failures_per_level = 1;
  hub::AwarenessHub awareness_hub(config);
  for (std::size_t k = 0; k < publishers; ++k) awareness_hub.add_slot(slot_name(k));
  awareness_hub.recovery().set_component_of(
      [](std::size_t block) { return "feature" + std::to_string(block % 8); });
  if (!awareness_hub.start()) return {};

  std::vector<std::thread> suos;
  std::vector<hub::PublisherStats> stats(publishers);
  suos.reserve(publishers);
  for (std::size_t k = 0; k < publishers; ++k) {
    hub::PublisherConfig pub;
    pub.hub_path = awareness_hub.path();
    pub.name = slot_name(k);
    pub.seed = 7 + k;
    pub.horizon = rt::msec(3000);
    pub.key_period = rt::msec(10);
    pub.pace_us = 2000;  // leave wall time for command round-trips
    pub.diag.enabled = true;
    pub.diag.program.total_blocks = 2000;
    pub.diag.program.feature_count = 8;
    pub.diag.fault_feature = k % 8;  // every SUO carries a (distinct) bug
    pub.diag.flush_steps = 8;
    suos.emplace_back([pub, &stats, k] { hub::run_hub_publisher(pub, &stats[k]); });
  }

  // Sample the command->ack wall round-trip from the hub's view: a slot
  // whose command goes outstanding starts a stopwatch, the transition
  // back (ack consumed or timed out) stops it. Poll granularity bounds
  // resolution, so pump with a short timeout while actuation is hot.
  rt::PercentileAccumulator rtt_ms;
  std::map<std::string, std::chrono::steady_clock::time_point> pending;
  const auto t_start = std::chrono::steady_clock::now();
  const auto deadline = t_start + std::chrono::seconds(60);
  while (awareness_hub.connection_count() > 0 ||
         awareness_hub.diagnosis().slot_count() == 0) {
    if (awareness_hub.poll(1) < 0) break;
    if (std::chrono::steady_clock::now() > deadline) break;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < publishers; ++k) {
      const std::string name = slot_name(k);
      const bool outstanding = awareness_hub.recovery().has_outstanding(name);
      const auto it = pending.find(name);
      if (outstanding && it == pending.end()) {
        pending.emplace(name, now);
      } else if (!outstanding && it != pending.end()) {
        rtt_ms.add(std::chrono::duration<double, std::milli>(now - it->second).count());
        pending.erase(it);
      }
    }
  }
  const auto t_end = std::chrono::steady_clock::now();
  for (auto& t : suos) t.join();

  LiveRun run;
  run.publishers = publishers;
  const double wall_s = std::chrono::duration<double>(t_end - t_start).count();
  std::uint64_t events = 0;
  std::uint64_t repairs = 0;
  for (const auto& s : stats) {
    events += s.events_sent;
    repairs += s.recover_repairs;
  }
  run.events_per_sec = static_cast<double>(events) / wall_s;
  const hub::RecoveryStats rs = awareness_hub.recovery().stats();
  run.commands = rs.sent;
  run.retries = rs.retries;
  run.acked_ok = rs.acked_ok;
  run.repairs = repairs;
  run.quarantined = rs.quarantined;
  run.ack_rtt_p50_ms = rtt_ms.percentile(50.0);
  run.ack_rtt_p99_ms = rtt_ms.percentile(99.0);
  awareness_hub.stop();
  return run;
}

// ------------------------------------------------ (b) storm guard

struct StormRun {
  std::size_t slots = 0;
  int token_capacity = 0;
  std::uint64_t actions = 0;
  int max_window_actions = 0;   ///< Worst refill window; must be <= capacity.
  std::uint64_t suppressed_tokens = 0;
  std::uint64_t suppressed_cooldown = 0;
  std::size_t quarantined = 0;
  double tick_p99_us = 0.0;     ///< Orchestrator pass cost mid-storm.
};

StormRun run_storm(std::size_t slots) {
  fd::FleetAggregator agg(fd::AggregatorConfig{10, trader::diagnosis::Coefficient::kOchiai, 1});
  hub::RecoveryConfig cfg;
  cfg.enabled = true;
  cfg.stable_reports = 1;
  cfg.token_capacity = 4;
  cfg.token_refill_every = rt::msec(100);
  cfg.cooldown = rt::msec(200);
  cfg.cooldown_jitter = rt::msec(50);
  cfg.ack_timeout = rt::sec(60);  // acks come back instantly below
  cfg.flap_threshold = 2;
  cfg.escalation.failures_per_level = 1;
  hub::RecoveryOrchestrator orch(cfg, agg);
  orch.set_component_of([](std::size_t block) { return "comp" + std::to_string(block); });
  // Instant transport: every command is executed-but-ineffective, so
  // the correlated fault keeps every slot hungry until quarantine.
  std::vector<std::pair<std::string, ipc::Frame>> to_ack;
  orch.set_send([&](const std::string& slot, const ipc::Frame& f) {
    to_ack.emplace_back(slot, f);
    return true;
  });

  const auto correlated_feed = [&] {
    for (std::size_t k = 0; k < slots; ++k) {
      agg.ingest(slot_name(k),
                 std::vector<ipc::SpectrumStep>{{true, {42}}, {false, {43}}});
    }
  };
  for (std::size_t k = 0; k < slots; ++k) orch.slot_up(slot_name(k), ipc::kProtocolVersion);
  correlated_feed();
  orch.tick(0);  // baseline every candidate

  rt::PercentileAccumulator tick_us;
  for (int step = 1; step <= 400; ++step) {  // 4 s of 10 ms ticks
    correlated_feed();
    const auto t0 = std::chrono::steady_clock::now();
    orch.tick(rt::msec(10) * step);
    const auto t1 = std::chrono::steady_clock::now();
    tick_us.add(std::chrono::duration<double, std::micro>(t1 - t0).count());
    for (auto& [slot, frame] : to_ack) {
      ipc::Frame ack;
      ack.type = ipc::FrameType::kRecoverAck;
      ack.action = frame.action;
      ack.token = frame.token;
      ack.unit = frame.unit;
      ack.ok = false;  // the storm's fault does not yield
      orch.on_ack(slot, ack);
    }
    to_ack.clear();
  }

  StormRun run;
  run.slots = slots;
  run.token_capacity = cfg.token_capacity;
  std::map<rt::SimTime, int> per_window;
  for (const hub::RecoveryActionRecord& r : orch.actions()) {
    ++per_window[r.at / cfg.token_refill_every];
  }
  for (const auto& [window, count] : per_window) {
    if (count > run.max_window_actions) run.max_window_actions = count;
  }
  const hub::RecoveryStats rs = orch.stats();
  run.actions = rs.sent + rs.retries;
  run.suppressed_tokens = rs.suppressed_tokens;
  run.suppressed_cooldown = rs.suppressed_cooldown;
  run.quarantined = orch.quarantined_count();
  run.tick_p99_us = tick_us.percentile(99.0);
  return run;
}

// ------------------------------------------------ (c) MTTR + precision

void report() {
  banner("E21", "closed-loop fleet recovery: diagnosis-driven actuation");

  const std::vector<std::size_t> live_sweep{8, 32};
  std::vector<LiveRun> live;
  for (const std::size_t n : live_sweep) live.push_back(run_live(n));

  Table lt({"publishers", "events/sec", "commands", "retries", "acked ok", "repairs",
            "quarantined", "ack rtt p50 ms", "ack rtt p99 ms"});
  for (const auto& r : live) {
    lt.row({fmt_int(static_cast<std::int64_t>(r.publishers)), fmt(r.events_per_sec, 0),
            fmt_int(static_cast<std::int64_t>(r.commands)),
            fmt_int(static_cast<std::int64_t>(r.retries)),
            fmt_int(static_cast<std::int64_t>(r.acked_ok)),
            fmt_int(static_cast<std::int64_t>(r.repairs)),
            fmt_int(static_cast<std::int64_t>(r.quarantined)), fmt(r.ack_rtt_p50_ms, 2),
            fmt(r.ack_rtt_p99_ms, 2)});
  }
  lt.print();
  std::printf("actuation rides the same epoll loop as ingest: kRecover frames\n"
              "go out between spectra, acks come back with the event stream.\n\n");

  const StormRun storm = run_storm(32);
  Table st({"slots", "capacity", "actions", "max/window", "suppr tokens",
            "suppr cooldown", "quarantined", "tick p99 us"});
  st.row({fmt_int(static_cast<std::int64_t>(storm.slots)),
          fmt_int(storm.token_capacity), fmt_int(static_cast<std::int64_t>(storm.actions)),
          fmt_int(storm.max_window_actions),
          fmt_int(static_cast<std::int64_t>(storm.suppressed_tokens)),
          fmt_int(static_cast<std::int64_t>(storm.suppressed_cooldown)),
          fmt_int(static_cast<std::int64_t>(storm.quarantined)), fmt(storm.tick_p99_us, 1)});
  st.print();
  std::printf("a correlated fault across %zu slots never outruns the bucket:\n"
              "at most %d actions per refill window, flapping slots quarantine.\n\n",
              storm.slots, storm.token_capacity);

  // MTTR: identical scenario stream, orchestrator on vs off.
  tk::RecoveryCampaignConfig campaign_cfg;
  campaign_cfg.scenarios = 12;
  tk::RecoveryCampaign closed(campaign_cfg);
  const tk::RecoveryCampaignReport with = closed.run();
  tk::RecoveryCampaignConfig base_cfg = campaign_cfg;
  base_cfg.orchestrate = false;
  const tk::RecoveryCampaignReport without = tk::RecoveryCampaign(base_cfg).run();

  Table mt({"arm", "scored", "repaired", "censored", "precision", "mean downtime ms"});
  mt.row({"closed loop", fmt_int(static_cast<std::int64_t>(with.scored)),
          fmt_int(static_cast<std::int64_t>(with.repaired)),
          fmt_int(static_cast<std::int64_t>(with.censored)), fmt(with.precision(), 2),
          fmt(with.mean_downtime_ms, 0)});
  mt.row({"supervision only", fmt_int(static_cast<std::int64_t>(without.scored)),
          fmt_int(static_cast<std::int64_t>(without.repaired)),
          fmt_int(static_cast<std::int64_t>(without.censored)), fmt(without.precision(), 2),
          fmt(without.mean_downtime_ms, 0)});
  mt.print();
  std::printf("faults are persistent: without actuation every downtime is\n"
              "right-censored at the horizon. The closed loop repairs what the\n"
              "diagnosis converged on and MTTR drops accordingly.\n\n");

  // The fuzzer's minimized findings — detection's hardest scenarios —
  // padded with observation time for the loop to converge in.
  tk::RecoveryCampaignReport findings;
  const std::string corpus = corpus_path();
  if (!corpus.empty()) {
    std::vector<tk::LabeledScenario> extended = tk::load_findings(corpus);
    for (tk::LabeledScenario& entry : extended) {
      entry.script =
          tk::extend_for_recovery(entry.script, rt::msec(2000), campaign_cfg.draw.cadence);
    }
    findings = closed.run(extended);
    std::printf("fuzz findings: %zu scenarios, %zu scored, %zu repaired, precision %.2f\n",
                findings.scenarios, findings.scored, findings.repaired,
                findings.precision());
  } else {
    std::printf("fuzz findings: FUZZ_corpus.json not found, skipping\n");
  }

  std::ofstream json("BENCH_recovery.json");
  json << "{\n  \"experiment\": \"bench_recovery_hub\",\n";
  json << "  \"live\": [\n";
  for (std::size_t i = 0; i < live.size(); ++i) {
    json << "    {\"publishers\": " << live[i].publishers
         << ", \"events_per_sec\": " << fmt(live[i].events_per_sec, 0)
         << ", \"commands\": " << live[i].commands << ", \"retries\": " << live[i].retries
         << ", \"acked_ok\": " << live[i].acked_ok << ", \"repairs\": " << live[i].repairs
         << ", \"quarantined\": " << live[i].quarantined
         << ", \"ack_rtt_p50_ms\": " << fmt(live[i].ack_rtt_p50_ms, 2)
         << ", \"ack_rtt_p99_ms\": " << fmt(live[i].ack_rtt_p99_ms, 2) << "}"
         << (i + 1 < live.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"storm\": {\"slots\": " << storm.slots
       << ", \"token_capacity\": " << storm.token_capacity
       << ", \"actions\": " << storm.actions
       << ", \"max_window_actions\": " << storm.max_window_actions
       << ", \"suppressed_tokens\": " << storm.suppressed_tokens
       << ", \"suppressed_cooldown\": " << storm.suppressed_cooldown
       << ", \"quarantined\": " << storm.quarantined
       << ", \"tick_p99_us\": " << fmt(storm.tick_p99_us, 2) << "},\n";
  json << "  \"campaign\": {\"closed\": " << with.to_json()
       << ",\n    \"baseline\": " << without.to_json() << "},\n";
  json << "  \"findings\": " << (corpus.empty() ? std::string("null") : findings.to_json())
       << "\n}\n";
  std::printf("wrote BENCH_recovery.json (live actuation + storm guard + MTTR)\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_OrchestratorTickQuietFleet(benchmark::State& state) {
  // Steady-state cost of the actuation pass when nothing is wrong —
  // the price every poll pays once recovery is on.
  fd::FleetAggregator agg(fd::AggregatorConfig{10, trader::diagnosis::Coefficient::kOchiai, 8});
  hub::RecoveryConfig cfg;
  cfg.enabled = true;
  hub::RecoveryOrchestrator orch(cfg, agg);
  orch.set_send([](const std::string&, const ipc::Frame&) { return true; });
  for (int k = 0; k < 64; ++k) {
    orch.slot_up(slot_name(static_cast<std::size_t>(k)), ipc::kProtocolVersion);
    agg.ingest(slot_name(static_cast<std::size_t>(k)),
               std::vector<ipc::SpectrumStep>{{false, {7}}});
  }
  rt::SimTime now = 0;
  for (auto _ : state) {
    now += rt::msec(10);
    orch.tick(now);
  }
}
BENCHMARK(BM_OrchestratorTickQuietFleet);

void BM_RecoverFrameRoundtrip(benchmark::State& state) {
  // Wire cost of one kRecover command: encode + streaming decode.
  ipc::Frame f;
  f.type = ipc::FrameType::kRecover;
  f.seq = 9;
  f.time = rt::msec(120);
  f.action = static_cast<std::uint8_t>(rec::RecoveryAction::kRestartUnit);
  f.token = 0xfeedfacecafeULL;
  f.block = 4711;
  f.unit = "feature3";
  ipc::FrameDecoder decoder;
  ipc::Frame out;
  for (auto _ : state) {
    const std::vector<std::uint8_t> bytes = ipc::encode_frame(f);
    decoder.feed(bytes.data(), bytes.size());
    benchmark::DoNotOptimize(decoder.next(out));
  }
}
BENCHMARK(BM_RecoverFrameRoundtrip);

}  // namespace

TRADER_BENCH_MAIN(report)
