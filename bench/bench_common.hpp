// Shared helpers for the experiment benches.
//
// Every bench binary reproduces one experiment from DESIGN.md §4: it
// first prints the experiment's table(s) — the rows EXPERIMENTS.md
// records against the paper's claims — and then runs google-benchmark
// microbenchmarks for the mechanisms involved.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace trader::bench {

/// Fixed-width table printer for experiment reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), v.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(std::int64_t v) { return std::to_string(v); }

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n\n", id.c_str(), title.c_str());
}

}  // namespace trader::bench

/// Each bench defines `report()` printing its experiment tables, then
/// registers microbenchmarks; this main runs both.
#define TRADER_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                        \
    report_fn();                                           \
    benchmark::Initialize(&argc, argv);                    \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                   \
    benchmark::Shutdown();                                 \
    return 0;                                              \
  }
