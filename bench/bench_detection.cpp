// E3 + E4 (§4.3): error-detection tuning.
//
// E3 — the comparator trade-off: "the user of the framework can specify
// … a threshold … and a maximum for the number of consecutive
// deviations"; "we have to make a trade-off between taking more time to
// avoid false errors and reporting errors fast to allow quick repair."
// We sweep (a) the consecutive-deviation limit under transport skew and
// (b) the comparison period, reporting false-error rate on fault-free
// runs and detection latency on fault-injected runs.
//
// E4 — mode-consistency checking detects the teletext desync.
#include "bench_common.hpp"

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "detection/detectors.hpp"
#include "detection/response_time.hpp"
#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace core = trader::core;
namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace flt = trader::faults;
namespace det = trader::detection;
namespace sm = trader::statemachine;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

struct RunResult {
  std::size_t errors = 0;
  rt::SimTime detection_latency = -1;  // vs fault manifestation; -1 = missed
  std::uint64_t comparisons = 0;
};

// One TV + awareness run. When `inject` is true, a volume-command-loss
// fault manifests mid-run and we measure time-to-detection; otherwise
// every reported error is a false positive.
RunResult run_awareness(int max_consecutive, rt::SimDuration compare_period,
                        rt::SimDuration input_latency, rt::SimDuration input_jitter,
                        bool inject, std::uint64_t seed) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(seed)};
  tv::TvConfig tv_config;
  tv_config.seed = seed;
  tv::TvSystem set(sched, bus, injector, tv_config);

  rt::ChannelConfig in_ch;
  in_ch.base_latency = input_latency;
  in_ch.jitter = input_jitter;
  rt::ChannelConfig out_ch;
  out_ch.base_latency = rt::usec(200);
  core::MonitorBuilder builder(sched, bus);
  builder.model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
      .comparison_period(compare_period)
      .startup_grace(rt::msec(100))
      .input_channel(in_ch)
      .output_channel(out_ch);
  for (const char* name : {"sound_level", "screen_state", "channel", "powered"}) {
    builder.threshold(name, 0.0, max_consecutive);
  }
  auto monitor = builder.build();
  set.start();
  monitor->start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(300));

  // Scripted zapping session (deterministic).
  rt::Rng rng(seed ^ 0xFEED);
  const std::vector<tv::Key> keys = {tv::Key::kVolumeUp,  tv::Key::kVolumeDown,
                                     tv::Key::kChannelUp, tv::Key::kChannelDown,
                                     tv::Key::kMute,      tv::Key::kMute};
  const rt::SimTime fault_at = rt::sec(4);
  rt::SimTime manifest_at = -1;
  for (int i = 0; i < 30; ++i) {
    if (inject && manifest_at < 0 && sched.now() >= fault_at) {
      injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", sched.now(),
                                       0, 1.0, {}});
      set.press(tv::Key::kVolumeUp);  // this command gets lost
      manifest_at = sched.now();
      sched.run_for(rt::sec(2));
      break;
    }
    set.press(keys[static_cast<std::size_t>(rng.uniform_int(0, 5))]);
    sched.run_for(rt::msec(300) + rng.uniform_int(0, 200) * 1000);
  }
  sched.run_for(rt::sec(1));

  RunResult result;
  result.errors = monitor->errors().size();
  result.comparisons = monitor->stats().comparisons;
  if (inject && manifest_at >= 0) {
    for (const auto& err : monitor->errors()) {
      if (err.detected_at >= manifest_at) {
        result.detection_latency = err.detected_at - manifest_at;
        break;
      }
    }
  }
  return result;
}

void report() {
  banner("E3", "comparator tuning: false errors vs detection latency (paper §4.3)");

  std::printf("sweep 1: consecutive-deviation limit under input-path skew\n"
              "(input latency 5 ms + jitter 15 ms, compare period 20 ms)\n\n");
  Table t1({"max consecutive", "false errors (clean run)", "detection latency ms (faulty run)"});
  for (int k : {1, 2, 3, 5, 8}) {
    double false_errors = 0;
    double latency = 0;
    int detected = 0;
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      const auto clean = run_awareness(k, rt::msec(20), rt::msec(5), rt::msec(15), false, seed);
      false_errors += static_cast<double>(clean.errors);
      const auto faulty = run_awareness(k, rt::msec(20), rt::msec(5), rt::msec(15), true, seed);
      if (faulty.detection_latency >= 0) {
        latency += rt::to_ms(faulty.detection_latency);
        ++detected;
      }
    }
    t1.row({fmt_int(k), fmt(false_errors / 3.0, 2),
            detected > 0 ? fmt(latency / detected, 1) : "missed"});
  }
  t1.print();

  std::printf("sweep 2: comparison period (max consecutive = 3, clean transport)\n\n");
  Table t2({"compare period ms", "false errors", "detection latency ms", "comparisons"});
  for (auto period : {rt::msec(5), rt::msec(20), rt::msec(50), rt::msec(200)}) {
    const auto clean = run_awareness(3, period, rt::usec(200), 0, false, 7);
    const auto faulty = run_awareness(3, period, rt::usec(200), 0, true, 7);
    t2.row({fmt(rt::to_ms(period), 0), fmt_int(static_cast<std::int64_t>(clean.errors)),
            faulty.detection_latency >= 0 ? fmt(rt::to_ms(faulty.detection_latency), 1) : "missed",
            fmt_int(static_cast<std::int64_t>(clean.comparisons))});
  }
  t2.print();
  std::printf("paper claim: eager comparison under transport delay produces false errors;\n"
              "the consecutive-deviation limit suppresses them at a bounded latency cost,\n"
              "and a slower comparison clock trades detection speed for fewer comparisons.\n");

  // Sweep 3: the deviation *threshold* knob, isolated on a noisy numeric
  // observable (model expects a constant; the system reports it with
  // additive noise — the "small differences during a short time
  // interval" of §4.3).
  std::printf("\nsweep 3: deviation threshold on a noisy numeric observable\n"
              "(noise sigma = 2.0 units, genuine fault = +10 units offset)\n\n");
  Table t3({"threshold", "false errors (noise only)", "deviating comparisons %",
            "fault detected"});
  for (double threshold : {0.0, 2.0, 6.0, 9.0, 15.0}) {
    int false_errors = 0;
    double deviating_pct = 0.0;
    bool detected = false;
    for (int phase = 0; phase < 2; ++phase) {
      const bool faulty = phase == 1;
      rt::Scheduler sched;
      rt::EventBus bus;
      sm::StateMachineDef def("lab");
      const auto s = def.add_state("S");
      def.on_entry(s, [](sm::ActionEnv& env) {
        env.emit("level", {{"value", 50.0}});
      });
      auto monitor = core::MonitorBuilder(sched, bus)
                         .model(std::make_unique<core::InterpretedModel>(std::move(def)))
                         .input_topic("lab.in")
                         .output_topic("lab.out")
                         .threshold("level", threshold, /*max_consecutive=*/3)
                         .comparison_period(rt::msec(20))
                         .startup_grace(rt::msec(50))
                         .build();
      monitor->start();
      rt::Rng noise(99);
      sched.schedule_every(rt::msec(20), [&] {
        rt::Event ev;
        ev.topic = "lab.out";
        ev.name = "level";
        ev.fields["value"] = 50.0 + noise.normal(0.0, 2.0) + (faulty ? 10.0 : 0.0);
        ev.timestamp = sched.now();
        bus.publish(ev);
      });
      sched.run_until(rt::sec(20));
      if (faulty) {
        detected = !monitor->errors().empty();
      } else {
        false_errors = static_cast<int>(monitor->errors().size());
        const auto& st = monitor->stats();
        deviating_pct = st.comparisons > 0
                            ? 100.0 * static_cast<double>(st.deviations) /
                                  static_cast<double>(st.comparisons)
                            : 0.0;
      }
    }
    t3.row({fmt(threshold, 1), fmt_int(false_errors), fmt(deviating_pct, 1),
            detected ? "yes" : "MISSED"});
  }
  t3.print();
  std::printf("a threshold a few sigma wide removes noise-induced false errors while a\n"
              "genuine offset beyond it is still caught; past the fault magnitude the\n"
              "monitor goes blind -- the §4.3 tuning problem in one table.\n");

  banner("E4", "mode-consistency checking detects the teletext desync (paper §4.3)");
  Table t4({"fault", "detected by rule", "latency ms", "false alarms (clean)"});
  for (bool faulty : {false, true}) {
    rt::Scheduler sched;
    rt::EventBus bus;
    flt::FaultInjector injector{rt::Rng(5)};
    tv::TvSystem set(sched, bus, injector);
    set.start();
    set.press(tv::Key::kPower);
    sched.run_for(rt::msec(200));
    set.press(tv::Key::kTeletext);
    sched.run_for(rt::msec(200));
    det::ModeConsistencyChecker checker;
    for (auto& rule : det::tv_mode_rules()) checker.add_rule(rule);
    det::DetectionLog log;
    rt::SimTime fault_time = -1;
    if (faulty) {
      fault_time = sched.now();
      injector.schedule(flt::FaultSpec{flt::FaultKind::kModeDesync, "teletext", fault_time, 0,
                                       1.0, {}});
    }
    for (int i = 0; i < 200; ++i) {
      sched.run_for(rt::msec(20));
      checker.check(set.mode_snapshot(), sched.now(), log);
    }
    if (faulty) {
      const rt::SimTime at = log.first("mode", "ttx-channel-sync");
      t4.row({"teletext mode desync", at >= 0 ? "ttx-channel-sync" : "MISSED",
              at >= 0 ? fmt(rt::to_ms(at - fault_time), 1) : "-", "-"});
    } else {
      t4.row({"none (clean run)", "-", "-", fmt_int(static_cast<std::int64_t>(log.all().size()))});
    }
  }
  t4.print();

  // E3c: three detection mechanisms against the same fault (stuck audio
  // + volume key press): the model comparator, the mode-consistency
  // checker, and the real-time response monitor race to report first.
  banner("E3c", "detector comparison on one fault (stuck audio, volume key)");
  Table t5({"detector", "detected", "latency ms"});
  {
    rt::Scheduler sched;
    rt::EventBus bus;
    flt::FaultInjector injector{rt::Rng(3)};
    tv::TvSystem set(sched, bus, injector);

    auto monitor = core::MonitorBuilder(sched, bus)
                       .model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
                       .comparison_period(rt::msec(20))
                       .startup_grace(rt::msec(100))
                       .threshold("sound_level", 0.0, /*max_consecutive=*/3)
                       .build();

    det::DetectionLog log;
    det::ResponseTimeMonitor response(sched, bus, log);
    for (auto& rule : det::tv_response_rules(rt::msec(100))) response.add_rule(rule);
    det::ModeConsistencyChecker modes;
    for (auto& rule : det::tv_mode_rules()) modes.add_rule(rule);
    sched.schedule_every(rt::msec(20), [&] {
      modes.check(set.mode_snapshot(), sched.now(), log);
    });

    set.start();
    monitor->start();
    response.start();
    set.press(tv::Key::kPower);
    sched.run_for(rt::msec(400));
    injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "audio", sched.now(), 0,
                                     1.0, {}});
    set.press(tv::Key::kVolumeUp);
    const rt::SimTime manifest = sched.now();
    sched.run_for(rt::sec(2));

    const rt::SimTime cmp_at =
        monitor->errors().empty() ? -1 : monitor->errors()[0].detected_at;
    const rt::SimTime mode_at = log.first("mode", "control-audio-volume");
    const rt::SimTime rt_at = log.first("timeliness", "volume-key-response");
    auto add_row = [&](const char* name, rt::SimTime at) {
      t5.row({name, at >= 0 ? "yes" : "NO", at >= 0 ? fmt(rt::to_ms(at - manifest), 1) : "-"});
    };
    add_row("model comparator (3x20ms)", cmp_at);
    add_row("mode-consistency checker", mode_at);
    add_row("response-time monitor (100ms)", rt_at);
  }
  t5.print();
  std::printf("the paper's point that techniques must be combined: the mode checker sees\n"
              "internal divergence fastest, the comparator confirms the user-visible error,\n"
              "and the timeliness monitor is the only one that needs no model of values.\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_ComparatorCompareAll(benchmark::State& state) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(1)};
  tv::TvSystem set(sched, bus, injector);
  core::MonitorBuilder builder(sched, bus);
  builder.model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()));
  for (const char* name : {"sound_level", "screen_state", "channel", "powered"}) {
    builder.threshold(name, 0.0);
  }
  auto monitor = builder.build();
  set.start();
  monitor->start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(500));
  for (auto _ : state) {
    monitor->comparator().compare_all(sched.now());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ComparatorCompareAll);

void BM_ModeRuleCheck(benchmark::State& state) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(1)};
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(200));
  det::ModeConsistencyChecker checker;
  for (auto& rule : det::tv_mode_rules()) checker.add_rule(rule);
  det::DetectionLog log;
  const auto snapshot = set.mode_snapshot();
  for (auto _ : state) {
    checker.check(snapshot, sched.now(), log);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(checker.rules().size()));
}
BENCHMARK(BM_ModeRuleCheck);

void BM_TvFrameTick(benchmark::State& state) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(1)};
  tv::TvSystem set(sched, bus, injector);
  set.start();
  set.press(tv::Key::kPower);
  rt::SimTime t = 0;
  for (auto _ : state) {
    t += rt::msec(20);
    sched.run_until(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TvFrameTick);

}  // namespace

TRADER_BENCH_MAIN(report)
