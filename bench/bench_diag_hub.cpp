// E20: fleet-level online diagnosis — spectra through the hub loop.
//
// E17 showed one epoll loop carries a fleet's event stream; this bench
// asks what adding the observe->diagnose loop costs and what it buys:
//   (a) ingest sweep — N real publishers (run_hub_publisher, spectrum
//       streaming enabled) drive events AND kSpectrum frames into one
//       hub; measured: event + spectrum-step throughput and the wall
//       latency of live ranking queries (cached top-k vs fresh report)
//       sampled from the operator's side while ingest is hot;
//   (b) staleness — the hub runs refresh_every = 8, so a cached top-k
//       is at most 7 reports stale; refreshes and ranking churn are
//       reported to show convergence;
//   (c) accuracy — the DiagnosisCampaign table: rank of the *known*
//       seeded fault block per fault kind, for a uniform scenario draw
//       and for the minimized fuzz findings the repo ships
//       (FUZZ_corpus.json), i.e. exactly the scenarios where detection
//       once failed.
// Everything lands in BENCH_fleetdiag.json.
#include "bench_common.hpp"

#include <sys/stat.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fleetdiag/aggregator.hpp"
#include "fleetdiag/reporter.hpp"
#include "hub/agent.hpp"
#include "hub/hub.hpp"
#include "ipc/wire.hpp"
#include "runtime/rng.hpp"
#include "runtime/stats.hpp"
#include "testkit/diag_campaign.hpp"

namespace rt = trader::runtime;
namespace fd = trader::fleetdiag;
namespace hub = trader::hub;
namespace ipc = trader::ipc;
namespace tk = trader::testkit;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

std::string slot_name(std::size_t k) { return "tv" + std::to_string(k); }

std::string corpus_path() {
  std::string dir(__FILE__);
  const auto slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  for (const std::string& candidate :
       {dir + "/../FUZZ_corpus.json", std::string("FUZZ_corpus.json"),
        std::string("../FUZZ_corpus.json")}) {
    struct stat st{};
    if (::stat(candidate.c_str(), &st) == 0 && st.st_size > 0) return candidate;
  }
  return "";
}

struct SweepRun {
  std::size_t publishers = 0;
  double events_per_sec = 0.0;
  double steps_per_sec = 0.0;
  std::uint64_t spectrum_frames = 0;
  double cached_query_p99_us = 0.0;  ///< top_suspects (bounded, cached).
  double fresh_report_p99_us = 0.0;  ///< full fresh ranking.
  std::uint64_t refreshes = 0;
  std::uint64_t churn = 0;
};

SweepRun run_sweep(std::size_t publishers) {
  hub::HubConfig config;
  config.shards = publishers >= 8 ? 4 : 1;
  config.probe_liveness = false;
  config.diag.top_k = 10;
  config.diag.refresh_every = 8;  // staleness bound: 7 reports
  hub::AwarenessHub awareness_hub(config);
  for (std::size_t k = 0; k < publishers; ++k) awareness_hub.add_slot(slot_name(k));
  if (!awareness_hub.start()) return {};

  std::vector<std::thread> suos;
  std::vector<hub::PublisherStats> stats(publishers);
  suos.reserve(publishers);
  for (std::size_t k = 0; k < publishers; ++k) {
    hub::PublisherConfig pub;
    pub.hub_path = awareness_hub.path();
    pub.name = slot_name(k);
    pub.seed = 7 + k;
    pub.horizon = rt::msec(3000);
    pub.key_period = rt::msec(10);  // 300 instrumented steps per SUO
    pub.diag.enabled = true;
    pub.diag.program.total_blocks = 2000;
    pub.diag.program.feature_count = 8;
    pub.diag.fault_feature = k % 8;  // every SUO carries a (distinct) bug
    pub.diag.flush_steps = 8;
    suos.emplace_back([pub, &stats, k] { hub::run_hub_publisher(pub, &stats[k]); });
  }

  // Pump the loop to completion, sampling live ranking queries the way
  // an operator dashboard would — against the hot mutex, mid-ingest.
  rt::PercentileAccumulator cached_us;
  rt::PercentileAccumulator fresh_us;
  const auto t_start = std::chrono::steady_clock::now();
  std::uint64_t polls = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (awareness_hub.connection_count() > 0 || awareness_hub.diagnosis().slot_count() == 0) {
    if (awareness_hub.poll(10) < 0) break;
    if (std::chrono::steady_clock::now() > deadline) break;
    if (++polls % 16 == 0) {
      const auto q0 = std::chrono::steady_clock::now();
      (void)awareness_hub.diagnosis().fleet_top_suspects();
      const auto q1 = std::chrono::steady_clock::now();
      (void)awareness_hub.diagnosis().report(slot_name(polls % publishers));
      const auto q2 = std::chrono::steady_clock::now();
      cached_us.add(std::chrono::duration<double, std::micro>(q1 - q0).count());
      fresh_us.add(std::chrono::duration<double, std::micro>(q2 - q1).count());
    }
  }
  const auto t_end = std::chrono::steady_clock::now();
  for (auto& t : suos) t.join();

  SweepRun run;
  run.publishers = publishers;
  const double wall_s = std::chrono::duration<double>(t_end - t_start).count();
  std::uint64_t events = 0;
  for (const auto& s : stats) events += s.events_sent;
  run.events_per_sec = static_cast<double>(events) / wall_s;
  run.steps_per_sec =
      static_cast<double>(awareness_hub.diagnosis().steps_ingested()) / wall_s;
  run.spectrum_frames = awareness_hub.metrics().counter("hub.spectra_frames");
  run.cached_query_p99_us = cached_us.percentile(99.0);
  run.fresh_report_p99_us = fresh_us.percentile(99.0);
  run.refreshes = awareness_hub.metrics().counter("hub.diag.refreshes");
  run.churn = awareness_hub.diagnosis().ranking_churn();
  awareness_hub.stop();
  return run;
}

void report() {
  banner("E20", "online diagnosis: spectra through the hub loop");

  const std::vector<std::size_t> sweep{1, 8, 32};
  std::vector<SweepRun> runs;
  for (const std::size_t n : sweep) runs.push_back(run_sweep(n));

  Table t({"publishers", "events/sec", "steps/sec", "spectrum frames", "cached q p99 us",
           "fresh report p99 us", "refreshes", "churn"});
  for (const auto& r : runs) {
    t.row({fmt_int(static_cast<std::int64_t>(r.publishers)), fmt(r.events_per_sec, 0),
           fmt(r.steps_per_sec, 0), fmt_int(static_cast<std::int64_t>(r.spectrum_frames)),
           fmt(r.cached_query_p99_us, 1), fmt(r.fresh_report_p99_us, 1),
           fmt_int(static_cast<std::int64_t>(r.refreshes)),
           fmt_int(static_cast<std::int64_t>(r.churn))});
  }
  t.print();
  std::printf("spectrum ingest rides the event loop: O(touched) folds keep the\n"
              "hub's diagnosis current at wire rate, cached top-k queries stay\n"
              "microseconds while fresh full rankings pay the per-block scan.\n\n");

  // Diagnosis accuracy: uniform scenario draw + the shipped fuzz
  // findings, scored against injector ground truth per fault kind.
  tk::DiagCampaignConfig campaign_cfg;
  campaign_cfg.scenarios = 48;
  campaign_cfg.draw.aspects = 4;
  campaign_cfg.program.total_blocks = 1500;
  tk::DiagnosisCampaign campaign(campaign_cfg);
  const auto drawn = campaign.run();
  std::printf("uniform draw: %zu scenarios, %zu scored, top-%zu rate %.2f\n",
              drawn.scenarios, drawn.scored, campaign_cfg.top_k, drawn.top_k_rate());

  tk::DiagCampaignReport findings;
  const std::string corpus = corpus_path();
  if (!corpus.empty()) {
    findings = campaign.run(tk::load_findings(corpus));
    std::printf("fuzz findings: %zu scenarios, %zu scored, top-%zu rate %.2f\n",
                findings.scenarios, findings.scored, campaign_cfg.top_k,
                findings.top_k_rate());
  } else {
    std::printf("fuzz findings: FUZZ_corpus.json not found, skipping\n");
  }

  std::ofstream json("BENCH_fleetdiag.json");
  json << "{\n  \"experiment\": \"bench_diag_hub\",\n";
  json << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    json << "    {\"publishers\": " << runs[i].publishers
         << ", \"events_per_sec\": " << fmt(runs[i].events_per_sec, 0)
         << ", \"spectrum_steps_per_sec\": " << fmt(runs[i].steps_per_sec, 0)
         << ", \"spectrum_frames\": " << runs[i].spectrum_frames
         << ", \"cached_query_p99_us\": " << fmt(runs[i].cached_query_p99_us, 2)
         << ", \"fresh_report_p99_us\": " << fmt(runs[i].fresh_report_p99_us, 2)
         << ", \"refresh_every\": 8"
         << ", \"refreshes\": " << runs[i].refreshes << ", \"churn\": " << runs[i].churn
         << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"campaign\": " << drawn.to_json() << ",\n";
  json << "  \"findings\": " << (corpus.empty() ? std::string("null") : findings.to_json())
       << "\n}\n";
  std::printf("wrote BENCH_fleetdiag.json (ingest sweep + per-kind accuracy table)\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_AggregatorIngest(benchmark::State& state) {
  fd::FleetAggregator agg(fd::AggregatorConfig{10, trader::diagnosis::Coefficient::kOchiai, 8});
  std::vector<ipc::SpectrumStep> steps;
  std::vector<std::uint32_t> blocks;
  for (std::uint32_t b = 0; b < 32; ++b) blocks.push_back(b * 7);
  steps.push_back({false, blocks});
  std::uint64_t i = 0;
  for (auto _ : state) {
    steps[0].error = (++i % 5) == 0;
    agg.ingest("suo", steps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_AggregatorIngest);

void BM_AggregatorTopSuspects(benchmark::State& state) {
  fd::FleetAggregator agg(fd::AggregatorConfig{10, trader::diagnosis::Coefficient::kOchiai, 1});
  rt::Rng rng(5);
  for (int s = 0; s < 512; ++s) {
    std::vector<std::uint32_t> blocks;
    for (std::uint32_t b = 0; b < 4096; ++b) {
      if (rng.bernoulli(0.05)) blocks.push_back(b);
    }
    agg.ingest("suo", {ipc::SpectrumStep{rng.bernoulli(0.2), blocks}});
  }
  for (auto _ : state) benchmark::DoNotOptimize(agg.top_suspects("suo"));
}
BENCHMARK(BM_AggregatorTopSuspects);

void BM_ReporterFlushFrame(benchmark::State& state) {
  fd::ReporterConfig config;
  config.block_count = 4096;
  fd::SpectrumReporter reporter(config);
  std::vector<std::uint32_t> blocks;
  for (std::uint32_t b = 0; b < 64; ++b) blocks.push_back(b * 11);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    for (int s = 0; s < 8; ++s) reporter.add_step(std::vector<std::uint32_t>(blocks), s == 0);
    benchmark::DoNotOptimize(reporter.flush(seq));
  }
}
BENCHMARK(BM_ReporterFlushFrame);

}  // namespace

TRADER_BENCH_MAIN(report)
