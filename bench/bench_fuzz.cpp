// E19: coverage-guided scenario fuzzing — scenarios/sec, corpus growth
// and coverage saturation.
//
// The fuzzer (DESIGN.md §4g) earns its keep only if mutate-execute-
// score cycles are cheap enough to run thousands of scenarios in a CI
// stage. This bench measures end-to-end campaign throughput
// (scenarios/sec including mutation, execution, fingerprinting and
// minimization), and records the corpus growth and coverage-cell
// saturation curves at checkpoints every 50 iterations — the shape that
// shows novelty getting harder to find as the walk covers the
// behaviour space. Results land in BENCH_fuzz.json for
// scripts/check.sh.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <vector>

#include "runtime/rng.hpp"
#include "testkit/fuzz.hpp"

namespace rt = trader::runtime;
namespace tk = trader::testkit;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

double now_ms() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::size_t kIterations = 600;
constexpr std::size_t kCheckpoint = 50;

void report() {
  banner("E19", "coverage-guided fuzzing: scenarios/sec, corpus growth, saturation");

  tk::FuzzConfig cfg;
  cfg.seed = 2026;
  cfg.seed_scenarios = 10;
  cfg.iterations = kIterations;

  const double start = now_ms();
  const auto rep = tk::FuzzCampaignRunner(cfg).run();
  const double wall = now_ms() - start;

  const std::size_t total_execs = rep.executions + rep.minimize_executions;
  const double scen_per_sec = total_execs / (wall / 1000.0);

  // Coverage saturation: replay the growth curve at checkpoints and
  // count the coverage cells first seen by each prefix (first_seen is
  // the global execution index, so the prefix count is exact).
  Table t({"iterations", "corpus", "coverage cells", "new cells in window"});
  std::size_t prev_cells = 0;
  std::vector<std::size_t> cp_corpus, cp_cells;
  for (std::size_t cp = kCheckpoint; cp <= kIterations; cp += kCheckpoint) {
    std::size_t cells = 0;
    for (const auto& [key, cell] : rep.coverage) {
      if (cell.first_seen < cfg.seed_scenarios + cp) ++cells;
    }
    const std::size_t corpus = rep.corpus_growth[cp - 1];
    t.row({fmt_int(static_cast<std::int64_t>(cp)), fmt_int(static_cast<std::int64_t>(corpus)),
           fmt_int(static_cast<std::int64_t>(cells)),
           fmt_int(static_cast<std::int64_t>(cells - prev_cells))});
    cp_corpus.push_back(corpus);
    cp_cells.push_back(cells);
    prev_cells = cells;
  }
  t.print();

  std::printf("%zu fuzz + %zu minimize executions in %s ms => %s scenarios/sec\n",
              rep.executions, rep.minimize_executions, fmt(wall, 1).c_str(),
              fmt(scen_per_sec, 0).c_str());
  std::printf("corpus %zu, coverage cells %zu, findings %zu, detection floor %s\n\n",
              rep.corpus.size(), rep.coverage.size(), rep.findings.size(),
              fmt(rep.detection_floor(), 4).c_str());

  std::ofstream json("BENCH_fuzz.json");
  json << "{\n  \"experiment\": \"bench_fuzz\",\n";
  json << "  \"seed\": " << cfg.seed << ",\n";
  json << "  \"iterations\": " << kIterations << ",\n";
  json << "  \"checkpoint\": " << kCheckpoint << ",\n";
  json << "  \"executions\": " << rep.executions << ",\n";
  json << "  \"minimize_executions\": " << rep.minimize_executions << ",\n";
  json << "  \"wall_ms\": " << fmt(wall, 1) << ",\n";
  json << "  \"scenarios_per_sec\": " << fmt(scen_per_sec, 0) << ",\n";
  json << "  \"corpus\": " << rep.corpus.size() << ",\n";
  json << "  \"coverage_cells\": " << rep.coverage.size() << ",\n";
  json << "  \"findings\": " << rep.findings.size() << ",\n";
  json << "  \"detection_floor\": " << fmt(rep.detection_floor(), 4) << ",\n";
  json << "  \"growth_checkpoints\": [";
  for (std::size_t i = 0; i < cp_corpus.size(); ++i) {
    json << (i == 0 ? "" : ", ") << cp_corpus[i];
  }
  json << "],\n  \"coverage_checkpoints\": [";
  for (std::size_t i = 0; i < cp_cells.size(); ++i) {
    json << (i == 0 ? "" : ", ") << cp_cells[i];
  }
  json << "]\n}\n";
  std::printf("wrote BENCH_fuzz.json (scenarios/sec + growth and saturation curves)\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_MutateScenario(benchmark::State& state) {
  tk::ScenarioDraw draw;
  const tk::ScenarioMutator mutator(draw);
  rt::Rng rng(7);
  rt::Rng draw_rng(11);
  const auto parent = tk::draw_scenario(draw_rng, 0, draw);
  const auto second = tk::draw_scenario(draw_rng, 1, draw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mutator.mutate(rng, parent, second, "bm"));
  }
}
BENCHMARK(BM_MutateScenario);

void BM_ShapeFingerprint(benchmark::State& state) {
  // A realistic scenario-sized trace (one executed script's worth).
  tk::ScenarioExecutor executor;
  rt::Rng draw_rng(11);
  const auto result = executor.run(tk::draw_scenario(draw_rng, 0, tk::ScenarioDraw{}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tk::shape_fingerprint(result.trace));
  }
}
BENCHMARK(BM_ShapeFingerprint);

void BM_FuzzIteration(benchmark::State& state) {
  // Mutate + execute + fingerprint + score: one full loop body.
  tk::ScenarioDraw draw;
  const tk::ScenarioMutator mutator(draw);
  tk::ScenarioExecutor executor;
  rt::Rng rng(7);
  rt::Rng draw_rng(11);
  const auto parent = tk::draw_scenario(draw_rng, 0, draw);
  const auto second = tk::draw_scenario(draw_rng, 1, draw);
  for (auto _ : state) {
    const auto child = mutator.mutate(rng, parent, second, "bm");
    const auto result = executor.run(child);
    benchmark::DoNotOptimize(tk::shape_fingerprint(result.trace));
    benchmark::DoNotOptimize(tk::coverage_key(child, result, rt::msec(20)));
  }
}
BENCHMARK(BM_FuzzIteration);

}  // namespace

TRADER_BENCH_MAIN(report)
