// E9 (§4.7): stress testing with resource eaters.
//
// Paper: "The stress testing approach of TASS artificially takes away
// shared resources, such as CPU or bus bandwidth … The study of the
// effect of such overload situations on the system behaviour and its
// fault-tolerant mechanisms has shown to be very useful in the TV
// domain. A so-called CPU eater … can be activated by system testers."
#include "bench_common.hpp"

#include "devtime/eaters.hpp"
#include "devtime/stress.hpp"
#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/tv_system.hpp"

namespace dev = trader::devtime;
namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace flt = trader::faults;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

void report() {
  banner("E9", "CPU-eater stress sweep exposes overload behaviour (paper §4.7, TASS)");

  const std::vector<double> levels = {0, 15, 30, 45, 60, 75, 90};

  dev::StressConfig plain;
  plain.duration = rt::sec(15);
  plain.with_load_balancer = false;
  dev::StressConfig protected_cfg = plain;
  protected_cfg.with_load_balancer = true;

  Table t({"eater units/tick", "cpu0 load", "drop rate", "avg quality",
           "drop rate (with FT)", "migrations (FT)", "tail quality (FT)"});
  for (double level : levels) {
    const auto bare = dev::run_stress_point(level, plain);
    const auto ft = dev::run_stress_point(level, protected_cfg);
    t.row({fmt(level, 0), fmt(bare.cpu_load, 2), fmt(bare.drop_rate, 3),
           fmt(bare.avg_quality, 3), fmt(ft.drop_rate, 3), fmt_int(ft.migrations),
           fmt(ft.quality_recovered, 3)});
  }
  t.print();
  std::printf("paper claim: eating CPU reproduces overload errors on demand; the sweep\n"
              "shows the onset of frame drops past the capacity knee, and exercises the\n"
              "fault-tolerance mechanism (task migration) exactly as §4.7 describes.\n");

  banner("E9b", "bus-bandwidth eater");
  Table t2({"bus eater units/tick", "decoder bus fraction (mean)"});
  for (double level : {0.0, 80.0, 160.0, 240.0}) {
    rt::Scheduler sched;
    rt::EventBus bus;
    flt::FaultInjector injector{rt::Rng(17)};
    tv::TvSystem set(sched, bus, injector);
    dev::BusEater eater(set.bus_resource());
    eater.activate(level);
    double fraction_sum = 0.0;
    int samples = 0;
    sched.schedule_every(rt::msec(20), [&] {
      eater.tick();
      if (sched.now() > rt::sec(1)) {
        fraction_sum += set.bus_resource().last_fraction("decoder");
        ++samples;
      }
    });
    set.start();
    set.press(tv::Key::kPower);
    sched.run_until(rt::sec(5));
    t2.row({fmt(level, 0), fmt(samples > 0 ? fraction_sum / samples : 0.0, 3)});
  }
  t2.print();

  // E13: input-fault tolerance (§2: "the product must be able to
  // tolerate certain faults in the input. Customers expect, for
  // instance, that products can cope with deviations from coding
  // standards or bad image quality.")
  banner("E13", "tolerating coding-standard deviations (paper §2)");
  Table t3({"stream deviation rate", "decoder", "drop rate", "avg quality", "deviations seen"});
  for (double rate : {0.01, 0.05, 0.10}) {
    for (bool robust : {true, false}) {
      rt::Scheduler sched;
      rt::EventBus bus;
      flt::FaultInjector injector{rt::Rng(23)};
      tv::TvConfig config;
      config.robust_decoder = robust;
      tv::TvSystem set(sched, bus, injector, config);
      const_cast<tv::ChannelInfo&>(set.lineup().info(1)).deviation_rate = rate;
      set.start();
      set.press(tv::Key::kPower);
      sched.run_until(rt::sec(20));
      t3.row({fmt(rate, 2), robust ? "robust (tolerant path)" : "strict (loses sync)",
              fmt(set.stats().drop_rate(), 3), fmt(set.stats().average_quality(), 3),
              fmt_int(static_cast<std::int64_t>(set.stats().coding_deviations))});
    }
  }
  t3.print();
  std::printf("paper claim: tolerating input deviations is a product requirement; the\n"
              "strict decoder turns a 5%% deviation rate into massive frame loss while the\n"
              "tolerant path absorbs it for a modest CPU surcharge.\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_StressPoint(benchmark::State& state) {
  dev::StressConfig cfg;
  cfg.duration = rt::sec(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev::run_stress_point(static_cast<double>(state.range(0)), cfg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StressPoint)->Arg(0)->Arg(60);

void BM_EaterToggle(benchmark::State& state) {
  tv::Processor cpu("p", 100.0);
  dev::CpuEater eater(cpu);
  for (auto _ : state) {
    eater.activate(50.0);
    eater.deactivate();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EaterToggle);

}  // namespace

TRADER_BENCH_MAIN(report)
