// E1 (Fig. 1 + Fig. 2): the run-time awareness loop, validated
// model-to-model.
//
// Paper §5: "Our Linux-based awareness framework has been validated by
// means of model-to-model experiments. That is, we have compared a
// specification model with code generated from models of the SUO."
//
// We run the full loop (TV SUO -> observers across the simulated process
// boundary -> model executor -> comparator -> error) against a matrix of
// injected faults, reporting detection and latency per fault class, and
// confirm zero false errors on a long fault-free soak.
#include "bench_common.hpp"

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace core = trader::core;
namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace flt = trader::faults;
namespace sm = trader::statemachine;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

struct Harness {
  Harness(bool compiled_model, std::uint64_t seed)
      : injector(rt::Rng(seed)), set(sched, bus, injector, make_tv_config(seed)) {
    core::MonitorBuilder builder(sched, bus);
    if (compiled_model) {
      builder.compiled_model(tv::build_tv_spec_model());
    } else {
      builder.model(tv::build_tv_spec_model());
    }
    builder.comparison_period(rt::msec(20))
        .startup_grace(rt::msec(100))
        .channel_latency(rt::usec(300));
    for (const char* name : {"sound_level", "screen_state", "channel", "powered", "source"}) {
      builder.threshold(name, 0.0, /*max_consecutive=*/3);
    }
    monitor = builder.build();
    set.start();
    monitor->start();
    set.press(tv::Key::kPower);
    sched.run_for(rt::msec(400));
  }

  static tv::TvConfig make_tv_config(std::uint64_t seed) {
    tv::TvConfig config;
    config.seed = seed;
    return config;
  }

  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector;
  tv::TvSystem set;
  std::unique_ptr<core::AwarenessMonitor> monitor;
};

struct FaultCase {
  const char* label;
  flt::FaultKind kind;
  const char* target;
  tv::Key trigger;  ///< Key pressed after injection to surface the error.
};

void report() {
  banner("E1", "the run-time awareness loop, model-to-model (paper Fig. 1/2, §5)");

  const std::vector<FaultCase> cases = {
      {"volume command lost", flt::FaultKind::kMessageLoss, "cmd.audio", tv::Key::kVolumeUp},
      {"mute command lost", flt::FaultKind::kMessageLoss, "cmd.audio", tv::Key::kMute},
      {"audio stuck", flt::FaultKind::kStuckComponent, "audio", tv::Key::kVolumeDown},
      {"teletext show lost", flt::FaultKind::kMessageLoss, "cmd.teletext", tv::Key::kTeletext},
      {"teletext crashed", flt::FaultKind::kCrash, "teletext", tv::Key::kTeletext},
      {"osd stuck (menu)", flt::FaultKind::kStuckComponent, "osd", tv::Key::kMenu},
      {"source select lost", flt::FaultKind::kMessageLoss, "cmd.avswitch", tv::Key::kSource},
      {"volume memory corruption", flt::FaultKind::kMemoryCorruption, "control.volume",
       tv::Key::kVolumeUp},
  };

  Table t({"injected fault", "detected", "observable", "detection latency ms"});
  for (const auto& fc : cases) {
    Harness h(false, 77);
    h.injector.schedule(flt::FaultSpec{fc.kind, fc.target, h.sched.now(), 0, 1.0, {}});
    h.sched.run_for(rt::msec(50));  // let crash-class faults latch
    h.set.press(fc.trigger);
    const rt::SimTime manifest = h.sched.now();
    h.sched.run_for(rt::sec(2));
    if (h.monitor->errors().empty()) {
      t.row({fc.label, "NO", "-", "-"});
    } else {
      const auto& err = h.monitor->errors().front();
      t.row({fc.label, "yes", err.observable, fmt(rt::to_ms(err.detected_at - manifest), 1)});
    }
  }
  t.print();

  // Fault-free soak: extensive zapping with no injected faults.
  Table soak({"model executor", "soak key presses", "false errors", "comparisons"});
  for (bool compiled : {false, true}) {
    Harness h(compiled, 99);
    rt::Rng rng(4242);
    const std::vector<tv::Key> keys = {
        tv::Key::kVolumeUp,  tv::Key::kVolumeDown, tv::Key::kMute,      tv::Key::kChannelUp,
        tv::Key::kChannelDown, tv::Key::kTeletext, tv::Key::kDualScreen, tv::Key::kMenu,
        tv::Key::kBack,      tv::Key::kDigit1,     tv::Key::kDigit2,    tv::Key::kChildLock,
    };
    const int presses = 150;
    for (int i = 0; i < presses; ++i) {
      h.set.press(keys[static_cast<std::size_t>(rng.uniform_int(0, 11))]);
      h.sched.run_for(rt::msec(1700));  // let digit timeouts settle
    }
    soak.row({compiled ? "compiled (flat tables)" : "interpreted", fmt_int(presses),
              fmt_int(static_cast<std::int64_t>(h.monitor->errors().size())),
              fmt_int(static_cast<std::int64_t>(h.monitor->stats().comparisons))});
  }
  soak.print();
  std::printf("paper claim: the loop detects customer-perceived errors the open-loop system\n"
              "is unaware of, while partial models plus comparator tolerance keep the\n"
              "false-error rate at zero during normal use.\n");

  // ---- E1b: the project's stated goal, quantified -----------------------
  // "The main goal of the Trader project is to improve the user-perceived
  // dependability of high-volume products." A 10-minute session with an
  // intermittently lossy audio-command path: without awareness, a lost
  // command leaves the sound wrong until the user's next (successful)
  // volume action; with awareness + recovery, the divergence lasts only
  // the detection latency.
  banner("E1b", "user-perceived dependability with vs without the awareness loop");
  Table dep({"configuration", "incorrect-output time (s / 10 min)", "failure episodes",
             "longest episode (s)"});
  for (bool with_awareness : {false, true}) {
    rt::Scheduler sched;
    rt::EventBus bus;
    flt::FaultInjector injector{rt::Rng(1111)};
    tv::TvSystem set(sched, bus, injector);

    std::unique_ptr<core::AwarenessMonitor> monitor;
    if (with_awareness) {
      monitor = core::MonitorBuilder(sched, bus)
                    .model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
                    .comparison_period(rt::msec(20))
                    .startup_grace(rt::msec(100))
                    .threshold("sound_level", 0.0, /*max_consecutive=*/3)
                    .build();
      monitor->set_recovery_handler(
          [&set](const core::ErrorReport&) { set.restart_component("audio"); });
    }

    // Incorrect-output accounting, sampled every 20 ms.
    double incorrect_ms = 0.0;
    int episodes = 0;
    double longest_ms = 0.0;
    double current_ms = 0.0;
    sched.schedule_every(rt::msec(20), [&] {
      const bool wrong = set.sound_output() != set.control().expected_sound_level();
      if (wrong) {
        if (current_ms == 0.0) ++episodes;
        current_ms += 20.0;
        incorrect_ms += 20.0;
        longest_ms = std::max(longest_ms, current_ms);
      } else {
        current_ms = 0.0;
      }
    });

    set.start();
    if (monitor) monitor->start();
    set.press(tv::Key::kPower);
    // The command path drops 80% of messages in recurring 8s windows.
    for (int w = 0; w < 10; ++w) {
      injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio",
                                       rt::sec(25 + w * 55), rt::sec(8), 0.8, {}});
    }
    // The user adjusts volume every ~20 s.
    rt::Rng rng(77);
    sched.schedule_every(rt::sec(20), [&] {
      set.press(rng.bernoulli(0.5) ? tv::Key::kVolumeUp : tv::Key::kVolumeDown);
    });
    sched.run_until(rt::sec(600));

    dep.row({with_awareness ? "awareness + recovery" : "open loop (no awareness)",
             fmt(incorrect_ms / 1000.0, 1), fmt_int(episodes), fmt(longest_ms / 1000.0, 1)});
  }
  dep.print();
  std::printf("the closed loop turns multi-second, user-visible divergences into sub-100ms\n"
              "blips -- the 'paradigm switch from open-loop to closed-loop' of §5.\n");

  // ---- E1c: partial-model coverage ablation ------------------------------
  // §3: "the approach allows the use of partial models, concentrating on
  // what is most relevant for the user." Fewer monitored observables =
  // cheaper monitor but blind spots; the fault matrix quantifies the cut.
  banner("E1c", "ablation: observables monitored vs fault classes detected");
  const std::vector<std::vector<const char*>> coverages = {
      {"sound_level"},
      {"sound_level", "screen_state"},
      {"sound_level", "screen_state", "channel", "powered", "source"},
  };
  Table cov({"observables monitored", "fault classes detected (of 8)", "comparisons"});
  for (const auto& observables : coverages) {
    int detected = 0;
    std::uint64_t comparisons = 0;
    for (const auto& fc : cases) {
      rt::Scheduler sched;
      rt::EventBus bus;
      flt::FaultInjector injector{rt::Rng(77)};
      tv::TvSystem set(sched, bus, injector, Harness::make_tv_config(77));
      core::MonitorBuilder builder(sched, bus);
      builder.model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
          .comparison_period(rt::msec(20))
          .startup_grace(rt::msec(100));
      for (const char* name : observables) {
        builder.threshold(name, 0.0, /*max_consecutive=*/3);
      }
      auto monitor = builder.build();
      set.start();
      monitor->start();
      set.press(tv::Key::kPower);
      sched.run_for(rt::msec(400));
      injector.schedule(flt::FaultSpec{fc.kind, fc.target, sched.now(), 0, 1.0, {}});
      sched.run_for(rt::msec(50));
      set.press(fc.trigger);
      sched.run_for(rt::sec(2));
      if (!monitor->errors().empty()) ++detected;
      comparisons = monitor->stats().comparisons;
    }
    std::string label;
    for (const char* name : observables) label += std::string(label.empty() ? "" : ", ") + name;
    cov.row({label, fmt_int(detected), fmt_int(static_cast<std::int64_t>(comparisons))});
  }
  cov.print();
  std::printf("partial models trade blind spots for monitor cost; incremental deployment\n"
              "(one aspect at a time) is exactly what §3 prescribes.\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_AwarenessEventPath(benchmark::State& state) {
  Harness h(state.range(0) != 0, 7);
  bool up = true;
  for (auto _ : state) {
    h.set.press(up ? tv::Key::kVolumeUp : tv::Key::kVolumeDown);
    up = !up;
    h.sched.run_for(rt::msec(40));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) ? "compiled" : "interpreted");
}
BENCHMARK(BM_AwarenessEventPath)->Arg(0)->Arg(1);

void BM_SpecModelDispatch(benchmark::State& state) {
  auto def = tv::build_tv_spec_model();
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("power"), 0);
  rt::SimTime t = 0;
  bool up = true;
  for (auto _ : state) {
    t += 1000;
    m.dispatch(sm::SmEvent::named(up ? "volume_up" : "volume_down"), t);
    up = !up;
    benchmark::DoNotOptimize(m.drain_outputs().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecModelDispatch);

void BM_SpecModelDispatchCompiled(benchmark::State& state) {
  auto def = tv::build_tv_spec_model();
  sm::CompiledMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("power"), 0);
  rt::SimTime t = 0;
  bool up = true;
  for (auto _ : state) {
    t += 1000;
    m.dispatch(sm::SmEvent::named(up ? "volume_up" : "volume_down"), t);
    up = !up;
    benchmark::DoNotOptimize(m.drain_outputs().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecModelDispatchCompiled);

}  // namespace

TRADER_BENCH_MAIN(report)
