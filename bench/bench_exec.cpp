// E18: batched model execution — steps/sec/core and bytes/monitor.
//
// The paper's awareness fleets scale with the number of modeled SUOs;
// the executor-v2 redesign (DESIGN.md §4f) claims that compiling the
// spec model once into an immutable ModelProgram and packing per-
// monitor state into structure-of-arrays batches buys both throughput
// (>= 1M model steps/sec/core) and footprint (tens of bytes of dense
// state per monitor instead of a full table set). This bench measures
// both, for all three kernels:
//   interpreted   legacy per-monitor interpreting StateMachine
//   compiled(1)   batch-of-1 CompiledMachine (v1 compiled path)
//   batched(N)    one BatchExecutor stepping N instances per sweep
// Results land in BENCH_exec.json (with hardware_concurrency, so
// steps/sec/core is reproducible accounting) for scripts/check.sh.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "statemachine/batch.hpp"
#include "statemachine/compiled.hpp"
#include "statemachine/definition.hpp"
#include "statemachine/machine.hpp"
#include "statemachine/program.hpp"

namespace sm = trader::statemachine;
namespace rt = trader::runtime;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

double now_ms() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Representative spec model: the scripted-counter shape the campaign
/// monitors run — one hierarchical region, counting actions, an output
/// per transition. Hot path = guarded dispatch + action + emit.
sm::StateMachineDef bench_model() {
  sm::StateMachineDef def("bench");
  const auto run = def.add_state("Run");
  const auto a = def.add_state("A", run);
  const auto b = def.add_state("B", run);
  def.add_state("Off");
  sm::Action count = [](sm::ActionEnv& env) {
    env.vars.set_int("ctr", env.vars.get_int("ctr") + 1);
  };
  def.add_transition(a, b, "tick", nullptr, count);
  def.add_transition(b, a, "tick", nullptr, count);
  // A guarded self-loop that never fires: every dispatch pays one
  // realistic guard rejection before the match, like production specs.
  def.add_transition(run, run, "tick",
                     [](const sm::Context& c, const sm::SmEvent&) {
                       return c.get_int("ctr") < 0;
                     },
                     nullptr);
  return def;
}

struct KernelRun {
  std::string kernel;
  double steps_per_sec = 0.0;
  std::size_t bytes_per_monitor = 0;  ///< approx full per-instance cost
  std::size_t dense_bytes = 0;        ///< hot-array bytes only (batched)
};

constexpr int kSteps = 4'000'000;  ///< dispatches per kernel measurement

KernelRun run_interpreted(const sm::StateMachineDef& def) {
  sm::StateMachine m(def);
  m.start(0);
  const sm::SmEvent ev = sm::SmEvent::named("tick");
  const double start = now_ms();
  for (int i = 0; i < kSteps; ++i) m.dispatch(ev, i);
  const double wall = now_ms() - start;
  KernelRun r;
  r.kernel = "interpreted";
  r.steps_per_sec = kSteps / (wall / 1000.0);
  r.bytes_per_monitor = sizeof(sm::StateMachine);
  return r;
}

KernelRun run_compiled1(const sm::ModelProgramPtr& program) {
  sm::CompiledMachine m(program);
  m.start(0);
  const sm::SmEvent ev = sm::SmEvent::named("tick");
  const double start = now_ms();
  for (int i = 0; i < kSteps; ++i) m.dispatch(ev, i);
  const double wall = now_ms() - start;
  KernelRun r;
  r.kernel = "compiled(1)";
  r.steps_per_sec = kSteps / (wall / 1000.0);
  r.bytes_per_monitor = sizeof(sm::CompiledMachine);
  return r;
}

KernelRun run_batched(const sm::ModelProgramPtr& program, int batch_size) {
  sm::BatchExecutor batch(program);
  std::vector<sm::BatchExecutor::InstanceId> ids;
  ids.reserve(static_cast<std::size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    ids.push_back(batch.add_instance());
    batch.start(ids.back(), 0);
  }
  const sm::SmEvent ev = sm::SmEvent::named("tick");
  const int sweeps = kSteps / batch_size;
  const double start = now_ms();
  for (int s = 0; s < sweeps; ++s) {
    const rt::SimTime now = s;
    for (const auto id : ids) batch.dispatch(id, ev, now);
  }
  const double wall = now_ms() - start;
  KernelRun r;
  r.kernel = "batched(" + std::to_string(batch_size) + ")";
  r.steps_per_sec = static_cast<double>(sweeps) * batch_size / (wall / 1000.0);
  r.bytes_per_monitor = batch.approx_bytes_per_instance();
  r.dense_bytes = batch.dense_bytes_per_instance();
  return r;
}

void report() {
  banner("E18", "batched model execution: steps/sec/core and bytes/monitor");

  const auto def = bench_model();
  const auto program = sm::ModelProgram::compile(def);
  const unsigned hw = std::thread::hardware_concurrency();

  std::vector<KernelRun> runs;
  runs.push_back(run_interpreted(def));
  runs.push_back(run_compiled1(program));
  for (const int n : {1, 64, 1024, 16384}) runs.push_back(run_batched(program, n));

  Table t({"kernel", "steps/sec (1 core)", "vs interpreted", "bytes/monitor", "dense bytes"});
  const double base = runs.front().steps_per_sec;
  for (const auto& r : runs) {
    t.row({r.kernel, fmt(r.steps_per_sec, 0), fmt(r.steps_per_sec / base, 2) + "x",
           fmt_int(static_cast<std::int64_t>(r.bytes_per_monitor)),
           r.dense_bytes != 0 ? fmt_int(static_cast<std::int64_t>(r.dense_bytes)) : "-"});
  }
  t.print();
  std::printf("every kernel is single-threaded here: steps/sec IS steps/sec/core\n"
              "(hardware_concurrency=%u on this host). The batched rows share ONE\n"
              "immutable ModelProgram; their per-monitor cost is the dense-array row\n"
              "plus fixed cold headers — not a private table set per monitor.\n\n",
              hw);

  std::ofstream json("BENCH_exec.json");
  json << "{\n  \"experiment\": \"bench_exec\",\n";
  json << "  \"steps\": " << kSteps << ",\n";
  json << "  \"hardware_concurrency\": " << hw << ",\n";
  json << "  \"target_steps_per_sec_per_core\": 1000000,\n";
  json << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    json << "    {\"kernel\": \"" << runs[i].kernel << "\""
         << ", \"steps_per_sec_per_core\": " << fmt(runs[i].steps_per_sec, 0)
         << ", \"bytes_per_monitor\": " << runs[i].bytes_per_monitor
         << ", \"dense_bytes_per_monitor\": " << runs[i].dense_bytes << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_exec.json (per-kernel steps/sec/core + bytes/monitor)\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_InterpretedDispatch(benchmark::State& state) {
  const auto def = bench_model();
  sm::StateMachine m(def);
  m.start(0);
  const sm::SmEvent ev = sm::SmEvent::named("tick");
  rt::SimTime now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.dispatch(ev, ++now));
  }
}
BENCHMARK(BM_InterpretedDispatch);

void BM_BatchedDispatch(benchmark::State& state) {
  const auto program = sm::ModelProgram::compile(bench_model());
  sm::BatchExecutor batch(program);
  const auto id = batch.add_instance();
  batch.start(id, 0);
  const sm::SmEvent ev = sm::SmEvent::named("tick");
  rt::SimTime now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch.dispatch(id, ev, ++now));
  }
}
BENCHMARK(BM_BatchedDispatch);

void BM_BatchedAdvanceAll1k(benchmark::State& state) {
  sm::StateMachineDef def("timed");
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_timed(a, b, 10);
  def.add_timed(b, a, 10);
  const auto program = sm::ModelProgram::compile(def);
  sm::BatchExecutor batch(program);
  for (int i = 0; i < 1000; ++i) batch.start(batch.add_instance(), 0);
  rt::SimTime now = 0;
  for (auto _ : state) {
    now += 10;
    benchmark::DoNotOptimize(batch.advance_all(now));
  }
}
BENCHMARK(BM_BatchedAdvanceAll1k);

}  // namespace

TRADER_BENCH_MAIN(report)
