// E6 + E7 (§4.5): recovery by resource reconfiguration.
//
// E6 — task migration (IMEC): "migrate an image processing task from one
// processor to another, which leads to improved image quality in case of
// overload situations (e.g., due to intensive error correction on a bad
// input signal)". We inject a bad-signal fault, which inflates the
// decoder's error-correction load past CPU-0's capacity, and compare
// image quality with and without the load balancer.
//
// E7 — adaptive memory arbitration (NXP Research): a competing
// high-priority port starves the video port; the adaptive controller
// boosts the video port at run time.
#include "bench_common.hpp"

#include <memory>

#include "devtime/eaters.hpp"
#include "faults/injector.hpp"
#include "recovery/adaptive_arbiter.hpp"
#include "recovery/load_balancer.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats.hpp"
#include "tv/tv_system.hpp"

namespace rec = trader::recovery;
namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace flt = trader::faults;
namespace dev = trader::devtime;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

struct MigrationResult {
  double quality_before = 0.0;  // before the signal degrades
  double quality_during = 0.0;  // after degradation (+ recovery if any)
  double drop_rate = 0.0;
  int migrations = 0;
};

MigrationResult run_migration(bool with_balancer, double signal_penalty) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(21)};
  tv::TvConfig config;
  config.cpu1_capacity = 140.0;  // second media-capable processor
  tv::TvSystem set(sched, bus, injector, config);

  std::unique_ptr<rec::LoadBalancer> balancer;
  if (with_balancer) {
    rec::LoadBalancerConfig lb;
    lb.sustain_ticks = 5;
    balancer = std::make_unique<rec::LoadBalancer>(
        lb, 0, 2, [&set](int cpu) { return set.cpu(cpu).load(); },
        [&set](int cpu) {
          return set.cpu(set.decoder_cpu()).task_cost("decoder") / set.cpu(cpu).capacity();
        },
        [&set](int cpu) { set.set_decoder_cpu(cpu); });
    sched.schedule_every(config.frame_period, [&] { balancer->tick(sched.now()); });
  }

  rt::StatAccumulator before;
  rt::StatAccumulator during;
  const rt::SimTime degrade_at = rt::sec(4);
  sched.schedule_every(config.frame_period, [&] {
    if (sched.now() < degrade_at) {
      before.add(set.last_frame_quality());
    } else if (sched.now() > degrade_at + rt::sec(1)) {  // skip transition
      during.add(set.last_frame_quality());
    }
  });

  set.start();
  set.press(tv::Key::kPower);
  injector.schedule(flt::FaultSpec{flt::FaultKind::kBadSignal, "tuner", degrade_at, 0,
                                   signal_penalty, {}});
  sched.run_until(rt::sec(16));

  MigrationResult result;
  result.quality_before = before.mean();
  result.quality_during = during.mean();
  result.drop_rate = set.stats().drop_rate();
  result.migrations = balancer ? static_cast<int>(balancer->migrations().size()) : 0;
  return result;
}

void report() {
  banner("E6", "task migration improves image quality under overload (paper §4.5, IMEC)");

  Table t({"signal penalty", "balancer", "quality before", "quality during overload",
           "drop rate", "migrations"});
  for (double penalty : {0.4, 0.55, 0.7}) {
    for (bool lb : {false, true}) {
      const auto r = run_migration(lb, penalty);
      t.row({fmt(penalty, 2), lb ? "on" : "off", fmt(r.quality_before, 3),
             fmt(r.quality_during, 3), fmt(r.drop_rate, 3), fmt_int(r.migrations)});
    }
  }
  t.print();
  std::printf("paper claim: migration of the image-processing (decoder) task improves\n"
              "image quality in overload; the balancer-on rows must dominate the\n"
              "balancer-off rows in 'quality during overload'.\n");

  banner("E7", "adaptive memory arbitration resolves video starvation (paper §4.5, NXP)");
  Table t7({"arbitration", "video service fraction (mean)", "starvation episodes resolved"});
  for (bool adaptive : {false, true}) {
    rt::Scheduler sched;
    rt::EventBus bus;
    flt::FaultInjector injector{rt::Rng(31)};
    tv::TvSystem set(sched, bus, injector);
    // A rogue high-priority port (e.g. a misbehaving downloadable
    // component doing bulk DMA) outranks the video port.
    dev::MemoryEater eater(set.arbiter(), /*priority=*/5);
    std::unique_ptr<rec::AdaptiveArbiterController> ctrl;
    if (adaptive) {
      ctrl = std::make_unique<rec::AdaptiveArbiterController>(set.arbiter(), "video");
    }
    rt::StatAccumulator video_fraction;
    sched.schedule_every(rt::msec(20), [&] {
      eater.tick();
      if (ctrl) ctrl->tick(sched.now());
      if (sched.now() > rt::sec(4)) video_fraction.add(set.arbiter().last_fraction("video"));
    });
    set.start();
    set.press(tv::Key::kPower);
    sched.schedule_at(rt::sec(4), [&] { eater.activate(120.0); });
    sched.run_until(rt::sec(12));
    t7.row({adaptive ? "adaptive (run-time boost)" : "static priorities",
            fmt(video_fraction.mean(), 3),
            ctrl ? fmt_int(static_cast<std::int64_t>(ctrl->boosts())) : "-"});
  }
  t7.print();
}

// ------------------------------------------------------- microbenchmarks

void BM_LoadBalancerTick(benchmark::State& state) {
  rec::LoadBalancerConfig cfg;
  double load0 = 0.8;
  rec::LoadBalancer lb(
      cfg, 0, 2, [&load0](int cpu) { return cpu == 0 ? load0 : 0.3; },
      [](int) { return 0.4; }, [](int) {});
  rt::SimTime t = 0;
  for (auto _ : state) {
    lb.tick(t += 1000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoadBalancerTick);

void BM_ArbiterService(benchmark::State& state) {
  tv::MemoryArbiter arb(150.0);
  arb.add_port("video", 3);
  arb.add_port("gfx", 2);
  arb.add_port("sys", 1);
  for (auto _ : state) {
    arb.request("video", 90.0);
    arb.request("gfx", 40.0);
    arb.request("sys", 30.0);
    benchmark::DoNotOptimize(arb.service());
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_ArbiterService);

void BM_ProcessorService(benchmark::State& state) {
  tv::Processor cpu("p", 100.0);
  for (int i = 0; i < state.range(0); ++i) {
    cpu.add_task("t" + std::to_string(i), 10.0, i % 3);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.service());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProcessorService)->Arg(4)->Arg(16);

}  // namespace

TRADER_BENCH_MAIN(report)
