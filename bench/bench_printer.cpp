// E14 (§5): transferring the awareness concept to the printer/copier
// domain (Océ / the Octopus project).
//
// "In parallel, the model-based run-time awareness concept is also
// exploited in the domain of printer/copiers at the company Océ…"
// The same framework pieces — event-driven spec model, range probes,
// timeliness rules — are wired to the printer simulator without any
// framework change; the detection matrix below is the transfer evidence.
#include "bench_common.hpp"

#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "detection/detectors.hpp"
#include "detection/response_time.hpp"
#include "faults/injector.hpp"
#include "printer/printer.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"

namespace pr = trader::printer;
namespace rt = trader::runtime;
namespace core = trader::core;
namespace det = trader::detection;
namespace flt = trader::faults;
namespace sm = trader::statemachine;
using trader::bench::Table;
using trader::bench::banner;
using trader::bench::fmt;
using trader::bench::fmt_int;

namespace {

core::MonitorBuilder printer_monitor() {
  core::MonitorBuilder builder;
  builder.model(std::make_unique<core::InterpretedModel>(pr::build_printer_spec_model()))
      .input_topic("pr.input")
      .output_topic("pr.output")
      .input_mapper([](const rt::Event& ev) -> std::optional<sm::SmEvent> {
        const std::string cmd = ev.str_field("cmd");
        if (cmd.empty()) return std::nullopt;
        sm::SmEvent sm_ev = sm::SmEvent::named(cmd);
        sm_ev.params = ev.fields;
        return sm_ev;
      })
      .threshold("state", 0.0, /*max_consecutive=*/4)
      .comparison_period(rt::msec(50))
      .startup_grace(rt::msec(100));
  return builder;
}

struct CaseResult {
  bool comparator = false;
  bool timeliness = false;
  bool range = false;
  bool engine_error = false;  ///< The engine's own sensors raised it.
  rt::SimTime first_detection = -1;
};

CaseResult run_case(const std::string& fault) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(4)};
  pr::PrinterSystem printer(sched, bus, injector);
  auto monitor = printer_monitor().build(sched, bus);
  det::DetectionLog log;
  det::ResponseTimeMonitor response(sched, bus, log);
  for (auto& rule : pr::printer_response_rules()) response.add_rule(rule);
  det::RangeChecker ranges(printer.probes());

  printer.start();
  monitor->start();
  response.start();
  printer.submit_job(40);
  sched.run_for(rt::sec(6));  // warmed up and printing

  const rt::SimTime manifest = sched.now();
  if (fault == "feeder stall (silent)") {
    injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "feeder", manifest, 0,
                                     1.0, {}});
  } else if (fault == "paper jam") {
    injector.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "feeder", manifest, 0, 1.0, {}});
  } else if (fault == "fuser setpoint corruption") {
    injector.schedule(flt::FaultSpec{flt::FaultKind::kMemoryCorruption, "fuser", manifest, 0,
                                     1.0, {}});
  } else if (fault == "lost pause actuation") {
    rt::Event ev;
    ev.topic = "pr.input";
    ev.name = "command";
    ev.fields["cmd"] = std::string("pause");
    ev.timestamp = sched.now();
    bus.publish(ev);
  }
  sched.run_for(rt::sec(5));
  ranges.poll(log);

  CaseResult result;
  result.engine_error = printer.state() == pr::PrinterState::kError;
  result.comparator = !monitor->errors().empty();
  result.timeliness = log.count("timeliness") > 0;
  result.range = log.count("range") > 0;
  rt::SimTime first = -1;
  if (result.comparator) first = monitor->errors()[0].detected_at;
  for (const auto& d : log.all()) {
    if (first < 0 || d.at < first) first = d.at;
  }
  if (first >= 0) result.first_detection = first - manifest;
  return result;
}

void report() {
  banner("E14", "awareness transferred to the printer/copier domain (paper §5, Octopus)");

  Table t({"scenario", "comparator", "timeliness", "range probe", "engine sensors",
           "first detection ms"});
  for (const char* fault :
       {"none (clean job)", "feeder stall (silent)", "paper jam", "fuser setpoint corruption",
        "lost pause actuation"}) {
    const auto r = run_case(fault);
    const bool any = r.comparator || r.timeliness || r.range;
    t.row({fault, r.comparator ? "yes" : "-", r.timeliness ? "yes" : "-",
           r.range ? "yes" : "-", r.engine_error ? "yes" : "-",
           any && r.first_detection >= 0 ? fmt(rt::to_ms(r.first_detection), 0) : "-"});
  }
  t.print();
  std::printf("paper claim: the awareness concept carries over to printers unchanged --\n"
              "the same monitor classes detect the domain's silent stalls, jams, thermal\n"
              "faults and lost actuations. (A jam is detected by the engine itself; the\n"
              "monitor confirms the error state, so no comparator error is expected.)\n");
}

// ------------------------------------------------------- microbenchmarks

void BM_PrinterTick(benchmark::State& state) {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(1)};
  pr::PrinterSystem printer(sched, bus, injector);
  printer.start();
  printer.submit_job(1000000);
  rt::SimTime t = 0;
  for (auto _ : state) {
    t += rt::msec(100);
    sched.run_until(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrinterTick);

void BM_PrinterSpecDispatch(benchmark::State& state) {
  auto def = pr::build_printer_spec_model();
  sm::StateMachine m(def);
  m.start(0);
  m.dispatch(sm::SmEvent::named("submit"), 0);
  m.dispatch(sm::SmEvent::named("engine_ready"), 1);
  rt::SimTime t = 1;
  for (auto _ : state) {
    m.dispatch(sm::SmEvent::named("page_printed"), ++t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrinterSpecDispatch);

}  // namespace

TRADER_BENCH_MAIN(report)
