#!/usr/bin/env bash
# Full verification pass for the repo:
#   1. tier-1: plain configure + build + ctest (must stay green)
#   2. ASan+UBSan build of the test suite (memory + UB errors)
#   3. TSan build running the sharded-fleet soak test (data races on the
#      mailbox / barrier / recovery paths)
#   4. campaign: the seeded 50-scenario fault-injection campaign under
#      ASan — fails on any missed-detection regression (detection floor
#      is asserted inside the campaign tests) or on a single-vs-sharded
#      trace divergence
#   5. fuzz: the coverage-guided scenario fuzzer under ASan — mutation
#      determinism, the miss-preserving minimizer, the cross-backend
#      corpus differential, and a seed-pinned smoke campaign (bounded
#      iteration budget) that must replay byte-identically and leaves
#      FUZZ_corpus.json (corpus + coverage map + minimized findings) in
#      the repo root
#   6. ipc: the wire codec property tests plus the cross-transport
#      campaign (in-process vs socketpair vs AF_UNIX, verdict for
#      verdict) under ASan, including the SIGKILL/reconnect supervision
#      test — the whole out-of-process SUO path with leak checking on
#   7. hub: the epoll event loop (timer catch-up, backpressure, accept
#      storm, crash-loop backoff) under ASan, plus the multi-SUO
#      campaign through the hub under TSan (the loop thread vs fleet
#      shard threads share the scored path)
#   8. fleetdiag: fleet-level online diagnosis under ASan (reporter
#      chunking, online-vs-offline ranking equivalence over real
#      sockets, slot lifecycle, fuzz-findings replay) and TSan
#      (concurrent ingest vs ranking queries); then bench_diag_hub
#      leaves BENCH_fleetdiag.json in the repo root (spectrum ingest
#      sweep + per-fault-kind diagnosis accuracy)
#   9. recovery: the closed recovery loop under ASan (convergence gate,
#      escalation ladder, storm budget, quarantine, the MTTR campaign
#      vs the supervision-only baseline and the fuzz-findings repair
#      replay) and TSan (concurrent ingest vs actuate vs ack vs query
#      on one orchestrator); then bench_recovery_hub leaves
#      BENCH_recovery.json in the repo root (live actuation RTT +
#      storm-guard budget + MTTR/precision scores)
#  10. journal: the durable hub under ASan — WAL corruption sweeps
#      (torn tail vs mid-log fail-closed), checkpoint fallback, the
#      fork+SIGKILL fsync smoke and the crash-restart byte-identity
#      campaign — plus the journal_demo kill/restart drill and
#      bench_journal leaving BENCH_journal.json in the repo root
#      (append throughput per fsync policy + recovery time vs WAL
#      length + checkpoint cost)
#  11. exec: executor-v2 equivalence — the three-kernel property suite
#      (interpreter vs compiled vs batched) plus arena growth/reuse
#      under ASan, and the shared-program multi-thread test under TSan;
#      then bench_exec leaves BENCH_exec.json in the repo root
#      (steps/sec/core + bytes/monitor per kernel)
#  12. bench_scale scaling experiment, leaving BENCH_scale.json in the
#      repo root (per-shard-count throughput + merged metrics snapshot)
#  13. bench_ipc transport experiment, leaving BENCH_ipc.json in the
#      repo root (frames/sec + RTT percentiles per transport)
#  14. bench_hub fleet-ingest experiment, leaving BENCH_hub.json in the
#      repo root (frames/sec + ingest latency vs connection count)
#  15. bench_fuzz fuzzing experiment, leaving BENCH_fuzz.json in the
#      repo root (scenarios/sec + corpus growth and coverage curves)
#
# Each stage prints its wall time on completion. Stages 2-15 can be
# skipped for a quick tier-1-only run:
#   scripts/check.sh --tier1-only
# The fuzz stage's iteration budget is tunable: CHECK_FUZZ_ITERS=400
# buys a deeper corpus sweep, the default 120 keeps CI fast.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
TIER1_ONLY=0
[[ "${1:-}" == "--tier1-only" ]] && TIER1_ONLY=1

STAGE_NAME=""
STAGE_T0=0
stage_end() {
  if [[ -n "$STAGE_NAME" ]]; then
    printf -- '--- %s: %ss\n' "$STAGE_NAME" "$(( $(date +%s) - STAGE_T0 ))"
  fi
}
stage() {
  stage_end
  STAGE_NAME="$*"
  STAGE_T0=$(date +%s)
  printf '\n=== %s ===\n' "$*"
}
trap stage_end EXIT

stage "tier-1: configure + build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$TIER1_ONLY" == "1" ]]; then
  echo "tier-1 green (skipped sanitizers + bench with --tier1-only)"
  exit 0
fi

stage "ASan+UBSan: configure + build + ctest"
cmake -B build-asan -S . -DTRADER_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -j "$JOBS")

stage "TSan: sharded fleet soak"
cmake -B build-tsan -S . -DTRADER_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target system_soak_test sharded_fleet_test
./build-tsan/tests/sharded_fleet_test --gtest_filter='ShardedFleet.*:Lifecycle.*'
./build-tsan/tests/system_soak_test --gtest_filter='SystemSoak.ShardedFleetSoak*'

stage "campaign: seeded fault-injection campaign under ASan"
cmake --build build-asan -j "$JOBS" --target testkit_test campaign_demo
./build-asan/tests/testkit_test --gtest_filter='Campaign.*:Executor.*'
./build-asan/examples/campaign_demo > CAMPAIGN_report.txt
grep -q 'traces identical' CAMPAIGN_report.txt
echo "campaign headline:"
grep 'detection rate' CAMPAIGN_report.txt

stage "fuzz: coverage-guided scenario fuzzer under ASan"
cmake --build build-asan -j "$JOBS" --target fuzz_test fuzz_demo
# Mutation determinism, coverage monotonicity, the miss-preserving
# minimizer and the 20-script cross-backend corpus differential, with
# leak checking on.
./build-asan/tests/fuzz_test
# Seed-pinned smoke campaign with a bounded iteration budget (override
# with CHECK_FUZZ_ITERS for a deeper sweep): the demo runs the same
# campaign twice and exits nonzero unless the reruns are
# byte-identical; it leaves the corpus + findings JSON in the repo root.
./build-asan/examples/fuzz_demo 2026 "${CHECK_FUZZ_ITERS:-120}" > FUZZ_report.txt
grep -q 'byte-identical: yes' FUZZ_report.txt
test -s FUZZ_corpus.json
echo "fuzz headline:"
grep -E 'corpus:|detection floor' FUZZ_report.txt

stage "ipc: codec properties + cross-transport campaign under ASan"
cmake --build build-asan -j "$JOBS" --target ipc_test
# Wire-level fuzzing (round-trip, truncation, bit-flip) and the
# 20-scenario campaign that must match the in-process backend verdict
# for verdict over a real AF_UNIX socket, plus kill -9 supervision.
./build-asan/tests/ipc_test \
  --gtest_filter='IpcWire.*:IpcCampaign.*:IpcSupervision.*'

stage "hub: epoll loop + multi-SUO campaign under ASan and TSan"
cmake --build build-asan -j "$JOBS" --target hub_test
# The whole suite under ASan: event-loop timer semantics (fixed-rate
# catch-up), backpressure eviction, accept storm, crash-loop backoff,
# liveness accounting and the 8-SUO differential campaign.
./build-asan/tests/hub_test
# Under TSan the loop thread coexists with fleet shard threads and the
# publisher test thread — the scored hub campaign must stay race-free.
cmake --build build-tsan -j "$JOBS" --target hub_test
./build-tsan/tests/hub_test \
  --gtest_filter='HubCampaign.*:HubTest.PublisherStreamsToHorizonAndSaysGoodbye'

stage "fleetdiag: online diagnosis under ASan and TSan -> BENCH_fleetdiag.json"
cmake --build build-asan -j "$JOBS" --target fleetdiag_test
# Reporter chunking, the online-vs-offline ranking differential (every
# prefix, 1/2/4 shards over real sockets), slot lifecycle (reconnect
# persistence, retirement on permanent failure), the version-gated
# publisher path and the fuzz-findings diagnosis replay — leak-checked.
./build-asan/tests/fleetdiag_test
# Concurrent ingest (hub loop thread) vs live ranking queries (operator
# threads) on one shared aggregator must be race-free.
cmake --build build-tsan -j "$JOBS" --target fleetdiag_test
./build-tsan/tests/fleetdiag_test --gtest_filter='FleetDiagConcurrency.*'
cmake --build build -j "$JOBS" --target bench_diag_hub
./build/bench/bench_diag_hub --benchmark_filter='BM_AggregatorIngest' \
  --benchmark_min_time=0.05
test -s BENCH_fleetdiag.json
echo "BENCH_fleetdiag.json written:"
head -12 BENCH_fleetdiag.json

stage "recovery: closed loop under ASan and TSan -> BENCH_recovery.json"
cmake --build build-asan -j "$JOBS" --target recovery_loop_test
# The whole closed loop, leak-checked: convergence gate, §5 ladder +
# quarantine, token-bucket storm budget, version gate for v2 peers,
# ack idempotency, the MTTR campaign against the supervision-only
# baseline (byte-reproducible, shard-invariant) and the fuzz-findings
# repair replay with its precision floor.
./build-asan/tests/recovery_loop_test
# Hub loop ingest vs orchestrator ticks vs SUO acks vs operator stats
# queries on one orchestrator must be race-free.
cmake --build build-tsan -j "$JOBS" --target recovery_loop_test
./build-tsan/tests/recovery_loop_test --gtest_filter='RecoveryConcurrency.*'
cmake --build build -j "$JOBS" --target bench_recovery_hub
./build/bench/bench_recovery_hub --benchmark_filter='BM_OrchestratorTickQuietFleet' \
  --benchmark_min_time=0.05
test -s BENCH_recovery.json
echo "BENCH_recovery.json written:"
head -12 BENCH_recovery.json

stage "journal: durable hub under ASan -> BENCH_journal.json"
cmake --build build-asan -j "$JOBS" --target journal_test journal_demo
# The WAL corruption contract (byte-flip + truncation sweeps over every
# offset), checkpoint fallback/retention, every Checkpointable's
# save/load round trip, the fork+SIGKILL every-record fsync smoke and
# the crash-restart campaign that must score byte-identically to an
# uninterrupted golden run — leak-checked.
./build-asan/tests/journal_test
# Kill/restart drill over real sockets: journal on, hub killed cold at
# two different command boundaries, both runs must match the golden
# JSON byte for byte.
./build-asan/examples/journal_demo 2026 > JOURNAL_report.txt
grep -q 'crash-restart matches golden: yes' JOURNAL_report.txt
cmake --build build -j "$JOBS" --target bench_journal
./build/bench/bench_journal --benchmark_filter='BM_WalAppend' \
  --benchmark_min_time=0.05
test -s BENCH_journal.json
echo "BENCH_journal.json written:"
head -12 BENCH_journal.json

stage "exec: executor-v2 equivalence under ASan + TSan -> BENCH_exec.json"
cmake --build build-asan -j "$JOBS" --target exec_test
# Three-kernel step-for-step equivalence on random machines, plus the
# arena slot-recycling churn loop with leak checking on.
./build-asan/tests/exec_test
# One immutable ModelProgram shared by four threads of batches — the
# ShardedFleet sharing pattern must be race-free.
cmake --build build-tsan -j "$JOBS" --target exec_test
./build-tsan/tests/exec_test \
  --gtest_filter='BatchExecutor.SharedProgramAcrossThreadsIsRaceFree'
cmake --build build -j "$JOBS" --target bench_exec
./build/bench/bench_exec --benchmark_filter='BM_BatchedDispatch' \
  --benchmark_min_time=0.05
test -s BENCH_exec.json
echo "BENCH_exec.json written:"
head -12 BENCH_exec.json

stage "bench_scale: scaling experiment -> BENCH_scale.json"
./build/bench/bench_scale --benchmark_filter='BM_ShardedFleetEpoch/1' \
  --benchmark_min_time=0.05
test -s BENCH_scale.json
echo "BENCH_scale.json written:"
head -12 BENCH_scale.json

stage "bench_ipc: transport experiment -> BENCH_ipc.json"
./build/bench/bench_ipc --benchmark_filter='BM_EncodeOutputEvent' \
  --benchmark_min_time=0.05
test -s BENCH_ipc.json
echo "BENCH_ipc.json written:"
head -12 BENCH_ipc.json

stage "bench_hub: fleet ingest experiment -> BENCH_hub.json"
./build/bench/bench_hub --benchmark_filter='BM_EventLoopWakeDispatch' \
  --benchmark_min_time=0.05
test -s BENCH_hub.json
echo "BENCH_hub.json written:"
head -12 BENCH_hub.json

stage "bench_fuzz: fuzzing experiment -> BENCH_fuzz.json"
cmake --build build -j "$JOBS" --target bench_fuzz
./build/bench/bench_fuzz --benchmark_filter='BM_MutateScenario' \
  --benchmark_min_time=0.05
test -s BENCH_fuzz.json
echo "BENCH_fuzz.json written:"
head -12 BENCH_fuzz.json

stage "all checks passed"
