// suo_host: the System Under Observation as its own Linux process.
//
// Hosts the simulated TV (scheduler, event bus, fault injector) behind
// an AF_UNIX listener speaking the src/ipc wire protocol — the paper's
// Fig. 2 deployment where the awareness monitor observes a *separate*
// process. Pair it with the ipc_monitor example:
//
//   build/examples/suo_host /tmp/trader_suo.sock &
//   build/examples/ipc_monitor /tmp/trader_suo.sock
//
// The host serves monitor sessions until a client sends "shutdown".
// Kill -9 this process while a monitor is attached to watch the
// supervision path: the monitor reports the outage once, degrades, and
// reconnects when a new host comes up on the same path.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ipc/suo_server.hpp"

int main(int argc, char** argv) {
  std::string path = "/tmp/trader_suo.sock";
  std::size_t max_sessions = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sessions" && i + 1 < argc) {
      max_sessions = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: suo_host [socket-path] [--sessions N]\n"
                  "  socket-path   AF_UNIX path, '@...' = abstract namespace\n"
                  "                (default /tmp/trader_suo.sock)\n"
                  "  --sessions N  exit after N monitor sessions (default: until shutdown)\n");
      return 0;
    } else {
      path = arg;
    }
  }

  std::printf("suo_host: hosting TV simulator on %s (pid %d)\n", path.c_str(), ::getpid());
  std::printf("suo_host: waiting for a monitor; kill -9 %d to exercise supervision\n",
              ::getpid());
  const int rc = trader::ipc::run_suo_host(path, {}, max_sessions);
  std::printf("suo_host: exiting (%s)\n", rc == 0 ? "orderly shutdown" : "listener error");
  return rc;
}
