// Escalating recovery with per-aspect monitors (§3 + §5).
//
// Two aspect monitors (sound, screen) watch the TV through a
// MonitorFleet; a flaky audio path keeps failing, and the
// RecoveryEscalator climbs the ladder: resync -> restart unit ->
// restart dependents -> full restart -> give up.
//
//   build/examples/escalating_recovery
#include <cstdio>
#include <memory>

#include "core/fleet.hpp"
#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "faults/injector.hpp"
#include "recovery/escalation.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace core = trader::core;
namespace rec = trader::recovery;
namespace flt = trader::faults;

namespace {

core::MonitorBuilder aspect_monitor(const char* observable) {
  core::MonitorBuilder builder;
  builder.model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
      .comparison_period(rt::msec(20))
      .startup_grace(rt::msec(100))
      .threshold(observable, 0.0, /*max_consecutive=*/3);
  return builder;
}

}  // namespace

int main() {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(5)};
  tv::TvSystem set(sched, bus, injector);

  core::MonitorFleet fleet(sched, bus);
  fleet.add_monitor("sound", aspect_monitor("sound_level"));
  fleet.add_monitor("screen", aspect_monitor("screen_state"));

  rec::EscalationConfig esc_cfg;
  esc_cfg.failures_per_level = 2;
  esc_cfg.window = rt::sec(60);
  rec::RecoveryEscalator escalator(esc_cfg);

  fleet.set_recovery_handler([&](const core::AspectError& err) {
    const std::string unit = err.aspect == "sound" ? "audio" : "teletext";
    const auto action = escalator.next_action(unit, sched.now());
    std::printf("[%7.1f ms] %s error on '%s' -> escalator says: %s\n", rt::to_ms(sched.now()),
                err.aspect.c_str(), err.report.observable.c_str(), rec::to_string(action));
    switch (action) {
      case rec::RecoveryAction::kResync:
      case rec::RecoveryAction::kRestartUnit:
        set.restart_component(unit);
        break;
      case rec::RecoveryAction::kRestartDependents:
        set.restart_component(unit);
        set.restart_component("osd");
        break;
      case rec::RecoveryAction::kFullRestart:
        for (const char* c : {"audio", "teletext", "osd", "swivel"}) set.restart_component(c);
        break;
      case rec::RecoveryAction::kGiveUp:
        std::printf("             unit flagged for service (give-up)\n");
        break;
    }
  });

  set.start();
  fleet.start();
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(400));

  std::printf("a flaky audio command path drops every volume command for short windows;\n"
              "each detection escalates the recovery response:\n\n");
  for (int episode = 0; episode < 6; ++episode) {
    injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", sched.now(),
                                     rt::msec(120), 1.0, {}});
    set.press(tv::Key::kVolumeUp);
    sched.run_for(rt::sec(2));
  }

  std::printf("\nsummary: %zu errors (sound: %zu, screen: %zu), give-ups: %llu\n",
              fleet.errors().size(), fleet.error_count("sound"), fleet.error_count("screen"),
              static_cast<unsigned long long>(escalator.give_ups()));
  return fleet.error_count("sound") >= 4 ? 0 : 1;
}
