// Seeded fault-injection campaign over the awareness runtime.
//
// Runs the same 50-scenario campaign twice — once on the
// single-scheduler fleet, once on a 4-shard ShardedFleet — prints the
// per-kind detection matrix, and diffs the two golden traces: the
// determinism claim means the fingerprints must match exactly.
//
//   build/examples/campaign_demo [seed]
//
// Pass a seed to explore different scenario draws; any seed must still
// produce identical traces on both backends.
#include <cstdio>
#include <cstdlib>

#include "testkit/campaign.hpp"

namespace tk = trader::testkit;

int main(int argc, char** argv) {
  tk::CampaignConfig cfg;
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;
  cfg.scenarios = 50;

  std::printf("campaign: seed=%llu scenarios=%zu aspects=%zu\n",
              static_cast<unsigned long long>(cfg.seed), cfg.scenarios, cfg.draw.aspects);

  std::printf("\n-- single-scheduler backend --\n");
  const auto single = tk::CampaignRunner(cfg).run();

  auto sharded_cfg = cfg;
  sharded_cfg.executor.shards = 4;
  std::printf("-- sharded backend (4 shards) --\n");
  const auto sharded = tk::CampaignRunner(sharded_cfg).run();

  std::printf("\n%-20s %9s %8s %6s %9s %9s %12s\n", "kind", "scenarios", "detected", "missed",
              "false-pos", "recovered", "latency(us)");
  for (const auto& [kind, ks] : single.by_kind) {
    std::printf("%-20s %9zu %8zu %6zu %9zu %9zu %12lld\n", kind.c_str(), ks.scenarios,
                ks.detected, ks.missed, ks.false_positive, ks.recovered,
                static_cast<long long>(ks.mean_latency()));
  }
  std::printf("\ndetection rate (detectable kinds): %.4f\n", single.detection_rate_detectable());
  std::printf("verdicts: %zu detected, %zu missed, %zu false-positive, %zu true-negative\n",
              single.count(tk::Verdict::kDetected), single.count(tk::Verdict::kMissed),
              single.count(tk::Verdict::kFalsePositive),
              single.count(tk::Verdict::kTrueNegative));

  const auto fp_single = single.golden_trace().fingerprint();
  const auto fp_sharded = sharded.golden_trace().fingerprint();
  std::printf("\ngolden trace: single=%s sharded=%s\n", fp_single.c_str(), fp_sharded.c_str());
  const auto diff = tk::GoldenTrace::diff(single.golden_trace(), sharded.golden_trace());
  std::printf("%s\n", diff.describe().c_str());
  if (!diff.identical) {
    std::printf("DETERMINISM VIOLATION: backends disagree\n");
    return 1;
  }

  std::printf("\ncampaign report (JSON):\n%s", single.to_json().c_str());
  return 0;
}
