// Coverage-guided scenario fuzzing over the awareness runtime.
//
// Seeds a corpus from the uniform campaign draw, then mutates scripts
// (overlapping faults, resource eaters, kill-restart windows, command
// drops) keeping only mutants that reach a new trace shape or coverage
// cell. Prints the coverage map and the corpus saturation curve, runs
// the whole campaign twice to demonstrate byte-reproducibility, and
// writes the full report — minimized missed-detection findings included
// — to FUZZ_corpus.json.
//
//   build/examples/fuzz_demo [seed] [iterations]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "testkit/fuzz.hpp"

namespace tk = trader::testkit;

int main(int argc, char** argv) {
  tk::FuzzConfig cfg;
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;
  cfg.iterations = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;

  std::printf("fuzz: seed=%llu seeds=%zu iterations=%zu aspects=%zu\n",
              static_cast<unsigned long long>(cfg.seed), cfg.seed_scenarios, cfg.iterations,
              cfg.draw.aspects);

  const auto report = tk::FuzzCampaignRunner(cfg).run();
  const auto again = tk::FuzzCampaignRunner(cfg).run();
  const bool reproducible = report.to_json() == again.to_json();

  std::printf("\n%-44s %6s %10s\n", "coverage cell", "hits", "first-seen");
  for (const auto& [key, cell] : report.coverage) {
    std::printf("%-44s %6zu %10zu\n", key.c_str(), cell.hits, cell.first_seen);
  }

  std::printf("\ncorpus growth (per 25 iterations):");
  for (std::size_t i = 24; i < report.corpus_growth.size(); i += 25) {
    std::printf(" %zu", report.corpus_growth[i]);
  }
  std::printf("\n");

  std::printf("executions: %zu fuzz + %zu minimize\n", report.executions,
              report.minimize_executions);
  std::printf("corpus: %zu scripts, %zu coverage cells\n", report.corpus.size(),
              report.coverage.size());
  std::printf("detection floor (detectable manifested): %.4f (%zu/%zu)\n",
              report.detection_floor(), report.detected_detectable,
              report.detectable_manifested);

  std::printf("\nfindings (missed detections, minimized):\n");
  for (const auto& f : report.findings) {
    std::printf("  %-10s %-40s cmds %zu->%zu faults %zu->%zu shrink-runs %zu\n",
                f.script.name().c_str(), f.cov_key.c_str(), f.commands_before, f.commands_after,
                f.faults_before, f.faults_after, f.shrink_runs);
  }
  if (report.findings.empty()) std::printf("  (none)\n");

  std::printf("\nsame seed reruns byte-identical: %s\n", reproducible ? "yes" : "NO");
  if (!reproducible) {
    std::printf("DETERMINISM VIOLATION: rerun diverged\n");
    return 1;
  }

  std::ofstream out("FUZZ_corpus.json");
  out << report.to_json();
  std::printf("wrote FUZZ_corpus.json\n");
  return 0;
}
