// Printer/copier awareness (§5, the Octopus follow-up; experiment E14).
//
// Runs a print shop afternoon: jobs queue up, the fuser warms, pages
// flow — then a silent feeder stall, a thermal fault and a lost pause
// actuation strike, each caught by a different monitor class.
//
//   build/examples/printer_awareness
#include <cstdio>
#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "detection/detectors.hpp"
#include "detection/response_time.hpp"
#include "faults/injector.hpp"
#include "printer/printer.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"

namespace pr = trader::printer;
namespace rt = trader::runtime;
namespace core = trader::core;
namespace det = trader::detection;
namespace flt = trader::faults;
namespace sm = trader::statemachine;

int main() {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(12)};
  pr::PrinterSystem printer(sched, bus, injector);

  // Spec-model monitor over commands + page milestones.
  auto monitor =
      core::MonitorBuilder(sched, bus)
          .model(std::make_unique<core::InterpretedModel>(pr::build_printer_spec_model()))
          .input_topic("pr.input")
          .output_topic("pr.output")
          .input_mapper([](const rt::Event& ev) -> std::optional<sm::SmEvent> {
            const std::string cmd = ev.str_field("cmd");
            if (cmd.empty()) return std::nullopt;
            return sm::SmEvent::named(cmd);
          })
          .threshold("state", 0.0, /*max_consecutive=*/4)
          .comparison_period(rt::msec(50))
          .on_error([&](const core::ErrorReport& err) {
            std::printf("           >>> spec-model error: %s\n", err.describe().c_str());
          })
          .build();

  // Timeliness + range detectors.
  det::DetectionLog log;
  det::ResponseTimeMonitor cadence(sched, bus, log);
  for (auto& rule : pr::printer_response_rules()) cadence.add_rule(rule);
  det::RangeChecker ranges(printer.probes());
  sched.schedule_every(rt::msec(200), [&] {
    const std::size_t before = log.all().size();
    ranges.poll(log);
    for (std::size_t i = before; i < log.all().size(); ++i) {
      std::printf("           >>> %s: %s (%s)\n", log.all()[i].detector.c_str(),
                  log.all()[i].subject.c_str(), log.all()[i].message.c_str());
    }
  });
  bus.subscribe("pr.output", [&](const rt::Event& ev) {
    if (ev.name == "state") {
      std::printf("[%8.1f ms] printer state -> %s\n", rt::to_ms(sched.now()),
                  ev.str_field("value").c_str());
    }
  });

  printer.start();
  monitor->start();
  cadence.start();

  std::printf("--- submitting jobs ------------------------------------------------\n");
  printer.submit_job(8);
  printer.submit_job(5);
  sched.run_for(rt::sec(12));
  std::printf("pages so far: %llu, paper left: %d\n",
              static_cast<unsigned long long>(printer.pages_printed_total()),
              printer.paper_level());

  std::printf("--- fault 1: silent feeder stall (engine notices nothing) ----------\n");
  printer.submit_job(30);
  sched.run_for(rt::sec(6));
  injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "feeder", sched.now(),
                                   rt::sec(3), 1.0, {}});
  sched.run_for(rt::sec(5));

  std::printf("--- fault 2: fuser setpoint corruption ------------------------------\n");
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMemoryCorruption, "fuser", sched.now(),
                                   rt::sec(2), 1.0, {}});
  sched.run_for(rt::sec(4));

  std::printf("--- fault 3: pause actuation lost -----------------------------------\n");
  {
    rt::Event ev;  // the operator's pause never reaches the engine
    ev.topic = "pr.input";
    ev.name = "command";
    ev.fields["cmd"] = std::string("pause");
    ev.timestamp = sched.now();
    bus.publish(ev);
  }
  sched.run_for(rt::sec(2));
  printer.pause();  // a real pause clears the divergence
  printer.resume();
  sched.run_for(rt::sec(20));

  std::printf("--- summary ----------------------------------------------------------\n");
  std::printf("spec-model errors : %zu\n", monitor->errors().size());
  std::printf("timeliness issues : %zu\n", log.count("timeliness"));
  std::printf("range violations  : %zu\n", log.count("range"));
  std::printf("pages printed     : %llu\n",
              static_cast<unsigned long long>(printer.pages_printed_total()));
  return (!monitor->errors().empty() && log.count("timeliness") > 0 && log.count("range") > 0)
             ? 0
             : 1;
}
