// ipc_monitor: an awareness monitor watching a remote SUO process.
//
// The counterpart of suo_host: connects over AF_UNIX, republishes the
// remote TV's input/output events onto a local bus, and runs an
// unmodified MonitorBuilder-built awareness monitor against them — the
// spec model wrapped in a LinkGatedModel so comparison quiesces if the
// host dies. Drives a short remote-control session, injects a fault
// into the *remote* process, and shows the detection arriving back over
// the wire.
//
//   build/examples/suo_host /tmp/trader_suo.sock &
//   build/examples/ipc_monitor /tmp/trader_suo.sock
#include <cstdio>
#include <memory>
#include <string>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "ipc/link_gate.hpp"
#include "ipc/remote_suo.hpp"
#include "ipc/transport.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/metrics.hpp"
#include "runtime/scheduler.hpp"
#include "tv/spec_model.hpp"

namespace rt = trader::runtime;
namespace ipc = trader::ipc;
namespace core = trader::core;
namespace tv = trader::tv;
namespace flt = trader::faults;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/trader_suo.sock";
  const bool keep_host = argc > 2 && std::string(argv[2]) == "--keep-host";

  rt::Scheduler sched;
  rt::EventBus bus;
  rt::MetricsRegistry metrics;

  ipc::RemoteSuoClient client(
      sched, bus, [&path]() { return ipc::connect_unix_retry(path, 3000); });
  client.set_metrics(&metrics);

  int errors = 0;
  core::MonitorBuilder builder(sched, bus);
  builder
      .model(std::make_unique<ipc::LinkGatedModel>(
          std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()), client.gate()))
      .comparison_period(rt::msec(20))
      .startup_grace(rt::msec(100))
      .on_error([&](const core::ErrorReport& err) {
        ++errors;
        std::printf(">>> comparator error on '%s' at %.1f ms (expected %s, observed %s)\n",
                    err.observable.c_str(), rt::to_ms(err.detected_at),
                    rt::to_string(err.expected).c_str(), rt::to_string(err.observed).c_str());
      });
  for (const char* name : {"sound_level", "screen_state", "channel", "powered"}) {
    builder.threshold(name, 0.0, 3);
  }
  auto monitor = builder.build();

  client.initialize();
  if (!client.link_up()) {
    std::printf("ipc_monitor: no suo_host on %s (start one first)\n", path.c_str());
    return 1;
  }
  std::printf("ipc_monitor: connected to %s (protocol v%u)\n", path.c_str(),
              client.negotiated_version());
  client.start(sched.now());
  monitor->start();

  std::printf("--- remote session: power on, volume up x2, channel 12 ---\n");
  client.press(tv::Key::kPower);
  client.advance_to(rt::msec(400));
  client.press(tv::Key::kVolumeUp);
  client.press(tv::Key::kVolumeUp);
  client.advance_to(rt::msec(800));
  client.heartbeat();
  std::printf("clean session: %d comparator error(s)\n", errors);

  std::printf("--- injecting kMessageLoss on cmd.audio inside the remote SUO ---\n");
  flt::FaultSpec loss;
  loss.kind = flt::FaultKind::kMessageLoss;
  loss.target = "cmd.audio";
  loss.activate_at = rt::msec(800);
  loss.duration = rt::msec(100);
  client.inject(loss);
  client.press(tv::Key::kVolumeUp);  // this one is lost inside the SUO
  client.advance_to(rt::msec(1600));
  std::printf("after fault: %d comparator error(s) — detected across the process boundary\n",
              errors);

  const auto snap = metrics.snapshot();
  std::printf("--- wire: %llu frames out, %llu frames in, %llu bytes in, rtt samples %llu\n",
              static_cast<unsigned long long>(snap.counter("ipc.frames_sent")),
              static_cast<unsigned long long>(snap.counter("ipc.frames_received")),
              static_cast<unsigned long long>(snap.counter("ipc.bytes_received")),
              static_cast<unsigned long long>(
                  snap.histograms.count("ipc.rtt_ns") ? snap.histograms.at("ipc.rtt_ns").count
                                                      : 0));

  if (keep_host) {
    std::printf("ipc_monitor: leaving suo_host running (--keep-host)\n");
  } else {
    client.shutdown_remote();
    std::printf("ipc_monitor: sent shutdown to suo_host\n");
  }
  return errors > 0 ? 0 : 1;  // the fault must have been detected
}
