// hub_host: one awareness hub monitoring a fleet of SUO processes.
//
// Forks N child processes, each hosting its own simulated TV and
// pushing tv.input / tv.output events into the hub's AF_UNIX listener
// (src/hub/agent.hpp). The parent runs the epoll event loop: every
// child claims a named slot, gets an awareness monitor in the sharded
// fleet (topics namespaced "<slot>/tv.*"), and is liveness-probed on
// the fixed-rate timer wheel. Kill -9 a child mid-run to watch the
// supervision path: one outage report, gated comparison while down,
// backoff-guarded reconnect window.
//
//   build/examples/hub_host --fleet 4
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hub/agent.hpp"
#include "hub/hub.hpp"
#include "tv/spec_model.hpp"

namespace {

std::string slot_name(int i) { return "suo" + std::to_string(i); }

}  // namespace

int main(int argc, char** argv) {
  int fleet = 4;
  long horizon_ms = 2000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fleet" && i + 1 < argc) {
      fleet = std::atoi(argv[++i]);
    } else if (arg == "--horizon-ms" && i + 1 < argc) {
      horizon_ms = std::atol(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: hub_host [--fleet N] [--horizon-ms MS]\n"
                  "  --fleet N       SUO child processes to fork (default 4)\n"
                  "  --horizon-ms MS virtual horizon per SUO (default 2000)\n");
      return 0;
    }
  }
  if (fleet < 1) fleet = 1;

  using namespace trader;

  hub::HubConfig config;
  config.shards = fleet > 4 ? 4 : static_cast<std::size_t>(fleet);
  config.namespace_topics = true;  // every SUO publishes "tv.*"
  config.auto_advance = true;      // fleet time follows the stream watermark
  config.heartbeat_interval_ms = 20;
  hub::AwarenessHub hub(config);

  // One slot + one spec-model monitor per SUO. The monitor's topics are
  // rewritten to the slot's namespace so eight TVs coexist in one fleet.
  for (int i = 0; i < fleet; ++i) {
    const std::string slot = slot_name(i);
    auto gate = hub.add_slot(slot);
    core::MonitorBuilder builder;
    builder.model(tv::build_tv_spec_model())
        .input_topic(slot + "/tv.input")
        .output_topic(slot + "/tv.output")
        .comparison_period(runtime::msec(50))
        .startup_grace(runtime::msec(100));
    for (const char* obs : {"sound_level", "screen_state", "channel", "powered"}) {
      builder.threshold(obs, 0.0, 3);
    }
    hub.add_monitor(slot, slot, std::move(builder));
  }

  if (!hub.start()) {
    std::fprintf(stderr, "hub_host: cannot listen on %s\n", hub.path().c_str());
    return 1;
  }
  std::printf("hub_host: listening on %s, forking %d SUOs (pid %d)\n", hub.path().c_str(),
              fleet, ::getpid());

  std::vector<pid_t> children;
  for (int i = 0; i < fleet; ++i) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      hub::PublisherConfig pub;
      pub.hub_path = hub.path();
      pub.name = slot_name(i);
      pub.seed = 1000 + static_cast<std::uint64_t>(i);
      pub.horizon = runtime::msec(horizon_ms);
      pub.pace_us = 500;  // stream ~2x wall speed so probes interleave
      ::_exit(hub::run_hub_publisher(pub));
    }
    if (pid > 0) children.push_back(pid);
  }

  // Drive the loop until every child exited and its link drained.
  int live = static_cast<int>(children.size());
  while (live > 0 || hub.connection_count() > 0) {
    hub.poll(50);
    int status = 0;
    while (live > 0 && ::waitpid(-1, &status, WNOHANG) > 0) --live;
  }
  hub.poll(0);  // final drain

  const auto snap = hub.metrics();
  std::printf("hub_host: ingested %llu events over %llu loop iterations\n",
              static_cast<unsigned long long>(hub.events_ingested()),
              static_cast<unsigned long long>(hub.loop().iterations()));
  std::printf("hub_host: accepted=%llu evicted=%llu outages=%llu probes=%llu\n",
              static_cast<unsigned long long>(snap.counter("hub.accepted")),
              static_cast<unsigned long long>(snap.counter("hub.evicted")),
              static_cast<unsigned long long>(snap.counter("hub.outages")),
              static_cast<unsigned long long>(snap.counter("hub.probes")));
  for (int i = 0; i < fleet; ++i) {
    const std::string slot = slot_name(i);
    const auto* sup = hub.slot_supervisor(slot);
    std::printf("hub_host: %-6s errors=%zu outages=%llu\n", slot.c_str(),
                hub.fleet().error_count(slot),
                static_cast<unsigned long long>(sup != nullptr ? sup->outages() : 0));
  }
  hub.stop();
  return 0;
}
