// Development-time tooling walkthrough (§4.6 + §4.7; experiments E8/E9).
//
// 1. Stress testing: switch the CPU eater on mid-run and watch overload
//    behaviour, then repeat with the load balancer enabled.
// 2. Perception: run the simulated user panel and show why the swivel
//    irritates users more than bad image quality.
// 3. FMEA: rank the architecture's failure modes to decide where an
//    awareness monitor pays off most.
//
//   build/examples/stress_and_perception
#include <cstdio>

#include "devtime/fmea.hpp"
#include "devtime/stress.hpp"
#include "perception/perception.hpp"

namespace dev = trader::devtime;
namespace per = trader::perception;
namespace rt = trader::runtime;

int main() {
  std::printf("=== 1. Stress testing with the CPU eater (paper §4.7) ===\n\n");
  dev::StressConfig cfg;
  cfg.duration = rt::sec(12);
  for (bool with_ft : {false, true}) {
    cfg.with_load_balancer = with_ft;
    const auto point = dev::run_stress_point(60.0, cfg);
    std::printf("eater=60 units, load balancer %-3s: cpu load %.2f, drop rate %.3f, "
                "tail quality %.3f, migrations %d\n",
                with_ft ? "on" : "off", point.cpu_load, point.drop_rate,
                point.quality_recovered, point.migrations);
  }
  std::printf("\nthe eater reproduces overload failures on demand; with the FT mechanism\n"
              "enabled the system migrates the decoder and the picture recovers.\n");

  std::printf("\n=== 2. User perception of failures (paper §4.6) ===\n\n");
  per::UserPanel panel(400, 11);
  const auto result = panel.run(per::tv_functions(), per::tv_failure_stimuli());
  std::printf("%-14s %18s %20s\n", "function", "stated importance", "observed irritation");
  for (const auto& o : result.outcomes) {
    std::printf("%-14s %18.3f %20.3f\n", o.function.c_str(), o.stated_importance,
                o.observed_irritation);
  }
  const auto& iq = result.of("image_quality");
  const auto& sw = result.of("swivel");
  std::printf("\nstated: image quality (#%zu) and swivel (#%zu) both near the top;\n"
              "observed: swivel irritation %.2fx image quality -- attribution at work.\n",
              iq.stated_rank, sw.stated_rank,
              sw.observed_irritation / iq.observed_irritation);

  std::printf("\n=== 3. Architecture FMEA (paper §4.7) ===\n\n");
  dev::FmeaAnalyzer fmea;
  for (auto& fm : dev::tv_failure_modes()) fmea.add(fm);
  std::printf("top risks before adding awareness monitors:\n");
  for (const auto& fm : fmea.top(3)) {
    std::printf("  RPN %3d  %-10s %-32s (S=%d O=%d D=%d)\n", fm.rpn(), fm.component.c_str(),
                fm.mode.c_str(), fm.severity, fm.occurrence, fm.detection);
  }
  fmea.apply_detection_improvement("teletext", 2);
  fmea.apply_detection_improvement("audio", 2);
  std::printf("after adding mode-consistency monitors to teletext and audio:\n");
  for (const auto& fm : fmea.top(3)) {
    std::printf("  RPN %3d  %-10s %-32s (S=%d O=%d D=%d)\n", fm.rpn(), fm.component.c_str(),
                fm.mode.c_str(), fm.severity, fm.occurrence, fm.detection);
  }
  return 0;
}
