// Fleet-level online diagnosis, end to end (the §5 awareness loop
// closed over §4.4's spectrum-based diagnosis).
//
// A small fleet of SUO publishers connects to one AwarenessHub; each
// hosts an instrumented SyntheticProgram with a fault seeded into a
// different feature. Every synthetic key press runs one instrumented
// step whose block coverage + error verdict ships to the hub as a
// kSpectrum frame. The hub folds the stream into its FleetAggregator,
// and the demo prints what an operator would watch: per-slot health,
// live top-k suspect rankings converging on each SUO's seeded fault,
// and the component-level verdict naming the feature to restart.
//
//   build/examples/fleetdiag_demo
#include <cstdio>

#include <string>
#include <thread>
#include <vector>

#include "hub/agent.hpp"
#include "hub/hub.hpp"

namespace rt = trader::runtime;
namespace hub = trader::hub;

int main() {
  constexpr std::size_t kFleet = 3;

  std::printf("Step 1: start one awareness hub for a fleet of %zu SUOs.\n", kFleet);
  hub::HubConfig config;
  config.probe_liveness = false;
  config.diag.top_k = 5;
  hub::AwarenessHub awareness_hub(config);
  std::vector<std::string> slots;
  for (std::size_t k = 0; k < kFleet; ++k) {
    slots.push_back("tv" + std::to_string(k));
    awareness_hub.add_slot(slots.back());
  }
  if (!awareness_hub.start()) {
    std::printf("cannot start hub listener\n");
    return 1;
  }

  std::printf("Step 2: each SUO streams events AND per-step coverage spectra\n");
  std::printf("        (kSpectrum frames, sent only on a v2-negotiated link).\n");
  std::vector<std::thread> suos;
  std::vector<hub::PublisherStats> stats(kFleet);
  for (std::size_t k = 0; k < kFleet; ++k) {
    hub::PublisherConfig pub;
    pub.hub_path = awareness_hub.path();
    pub.name = slots[k];
    pub.seed = 100 + k;
    pub.horizon = rt::msec(2000);
    pub.key_period = rt::msec(25);
    pub.diag.enabled = true;
    pub.diag.program.total_blocks = 6000;
    pub.diag.program.feature_count = 6;
    pub.diag.fault_feature = k;  // a different buggy feature per SUO
    pub.diag.flush_steps = 8;
    suos.emplace_back([pub, &stats, k] { hub::run_hub_publisher(pub, &stats[k]); });
  }
  while (awareness_hub.connection_count() > 0 ||
         awareness_hub.diagnosis().steps_ingested() == 0) {
    if (awareness_hub.poll(10) < 0) break;
  }
  for (auto& t : suos) t.join();

  std::printf("Step 3: the hub's aggregator folded every report incrementally —\n");
  auto& diag = awareness_hub.diagnosis();
  std::printf("        %llu reports, %llu steps across %zu slots\n",
              static_cast<unsigned long long>(diag.reports_ingested()),
              static_cast<unsigned long long>(diag.steps_ingested()), diag.slot_count());

  std::printf("Step 4: per-slot health and live top suspects:\n");
  for (const auto& health : diag.fleet_health()) {
    std::printf("        %s: %llu steps, error rate %.2f\n", health.slot.c_str(),
                static_cast<unsigned long long>(health.steps), health.error_rate);
    const auto top = diag.top_suspects(health.slot);
    for (std::size_t i = 0; i < 3 && i < top.size(); ++i) {
      std::printf("          #%zu block %zu  score %.3f\n", i + 1, top[i].block,
                  top[i].score);
    }
  }

  std::printf("Step 5: fleet-wide view (every slot's spectra merged):\n");
  const auto fleet_top = diag.fleet_top_suspects();
  for (std::size_t i = 0; i < 3 && i < fleet_top.size(); ++i) {
    std::printf("        #%zu block %zu  score %.3f\n", i + 1, fleet_top[i].block,
                fleet_top[i].score);
  }

  std::printf("Step 6: component-level verdict per slot (which feature to restart):\n");
  for (std::size_t k = 0; k < kFleet; ++k) {
    const auto components = diag.component_ranking(slots[k], [](std::size_t block) {
      return "feature" + std::to_string(block / 1000);  // demo-sized pools
    });
    if (!components.empty()) {
      std::printf("        %s -> %s (score %.3f)\n", slots[k].c_str(),
                  components[0].component.c_str(), components[0].score);
    }
  }

  awareness_hub.stop();
  std::printf("\nThe awareness loop is closed: observe (spectra over the wire),\n");
  std::printf("diagnose (incremental SFL at the hub), ready to recover (restart\n");
  std::printf("the top component) — all while the fleet keeps running.\n");
  return 0;
}
