// Media-player awareness (§5, the MPlayer follow-up; experiment E12).
//
// Plays a clip, seeks around (legitimate buffering, suppressed via
// IEnableCompare), then injects a decoder overrun and a demuxer stall,
// showing the correctness and performance issues being caught.
//
//   build/examples/mediaplayer_awareness
#include <cstdio>
#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "detection/detectors.hpp"
#include "faults/injector.hpp"
#include "mediaplayer/player.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"

namespace rt = trader::runtime;
namespace mp = trader::mediaplayer;
namespace core = trader::core;
namespace det = trader::detection;
namespace flt = trader::faults;
namespace sm = trader::statemachine;

int main() {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(8)};
  mp::MediaPlayer player(sched, bus, injector);

  auto monitor =
      core::MonitorBuilder(sched, bus)
          .model(std::make_unique<core::InterpretedModel>(mp::build_player_spec_model()))
          .input_topic("mp.input")
          .output_topic("mp.output")
          .input_mapper([](const rt::Event& ev) -> std::optional<sm::SmEvent> {
            const std::string cmd = ev.str_field("cmd");
            if (cmd.empty()) return std::nullopt;
            return sm::SmEvent::named(cmd);
          })
          .threshold("state", 0.0, /*max_consecutive=*/4)
          .comparison_period(rt::msec(25))
          .on_error([&](const core::ErrorReport& err) {
            std::printf("           >>> correctness error: %s\n", err.describe().c_str());
          })
          .build();

  det::DetectionLog log;
  det::RangeChecker ranges(player.probes());
  sched.schedule_every(rt::msec(100), [&] {
    const std::size_t before = log.all().size();
    ranges.poll(log);
    if (log.all().size() > before) {
      const auto& d = log.all().back();
      std::printf("           >>> performance issue: probe '%s' %s\n", d.subject.c_str(),
                  d.message.c_str());
    }
  });

  player.start();
  monitor->start();

  auto status = [&](const char* note) {
    std::printf("[%7.1f ms] state=%-9s pos=%6.1fs av_offset=%7.1f ms  %s\n",
                rt::to_ms(sched.now()), mp::to_string(player.state()),
                player.position_seconds(), player.av_offset_ms(), note);
  };

  std::printf("--- normal playback with seeking ---------------------------------\n");
  player.play();
  sched.run_for(rt::sec(2));
  status("playing");
  player.seek(300.0);
  sched.run_for(rt::sec(2));
  status("after seek (buffering was legitimate: model suppressed comparison)");
  player.pause();
  sched.run_for(rt::sec(1));
  status("paused");
  player.play();
  sched.run_for(rt::sec(1));

  std::printf("--- performance fault: video decoder overrun ----------------------\n");
  injector.schedule(flt::FaultSpec{flt::FaultKind::kTaskOverrun, "vdec", sched.now(),
                                   rt::sec(2), 1.0, {}});
  sched.run_for(rt::sec(3));
  status("after decoder overrun window");

  std::printf("--- correctness fault: demuxer wedges -----------------------------\n");
  injector.schedule(flt::FaultSpec{flt::FaultKind::kStuckComponent, "demuxer", sched.now(), 0,
                                   1.0, {}});
  sched.run_for(rt::sec(2));
  status("spontaneous buffering (not user-initiated)");

  std::printf("--- summary --------------------------------------------------------\n");
  std::printf("correctness errors (spec model) : %zu\n", monitor->errors().size());
  std::printf("performance issues (probes)     : %zu\n", log.all().size());
  std::printf("frames rendered/dropped         : %llu / %llu\n",
              static_cast<unsigned long long>(player.frames_rendered()),
              static_cast<unsigned long long>(player.frames_dropped()));
  return (!monitor->errors().empty() && !log.all().empty()) ? 0 : 1;
}
