// TV awareness demo: the complete Trader loop on the TV simulator.
//
// Runs a realistic remote-control session, injects the paper's signature
// faults one after another (lost volume command, teletext desync,
// teletext crash), and shows the Fig. 1 loop closing each time:
// observation -> error detection -> diagnosis hint -> recovery.
//
//   build/examples/tv_awareness
#include <cstdio>
#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "detection/detectors.hpp"
#include "faults/injector.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "tv/spec_model.hpp"
#include "tv/tv_system.hpp"

namespace rt = trader::runtime;
namespace tv = trader::tv;
namespace core = trader::core;
namespace det = trader::detection;
namespace flt = trader::faults;

namespace {

void show_status(const tv::TvSystem& set, rt::SimTime now, const char* note) {
  std::printf("[%7.1f ms] screen=%-8s sound=%2d channel=%2d ttx_sync=%s  %s\n", rt::to_ms(now),
              set.screen_output().c_str(), set.sound_output(), set.displayed_channel(),
              set.teletext_content_ok() ? "ok " : "BAD", note);
}

}  // namespace

int main() {
  rt::Scheduler sched;
  rt::EventBus bus;
  flt::FaultInjector injector{rt::Rng(2026)};
  tv::TvSystem set(sched, bus, injector);

  // Awareness monitor over the partial user-view model, with a recovery
  // policy that re-syncs the offending component from control beliefs.
  int recoveries = 0;
  core::MonitorBuilder builder(sched, bus);
  builder.model(std::make_unique<core::InterpretedModel>(tv::build_tv_spec_model()))
      .comparison_period(rt::msec(20))
      .startup_grace(rt::msec(100))
      .channel_latency(rt::usec(300))
      .on_error([&](const core::ErrorReport& err) {
        std::printf("           >>> comparator error on '%s' (expected %s, observed %s)\n",
                    err.observable.c_str(), rt::to_string(err.expected).c_str(),
                    rt::to_string(err.observed).c_str());
        // Simple diagnosis: map the observable to the component to repair.
        const std::string component = err.observable == "sound_level"  ? "audio"
                                      : err.observable == "screen_state" ? "teletext"
                                                                         : "osd";
        set.restart_component(component);
        ++recoveries;
        std::printf("           >>> recovery: restarted '%s' and replayed user settings\n",
                    component.c_str());
      });
  for (const char* name : {"sound_level", "screen_state", "channel", "powered"}) {
    builder.threshold(name, 0.0, /*max_consecutive=*/3);
  }
  auto monitor = builder.build();

  // Mode-consistency checker (the §4.3 teletext detector) runs alongside.
  det::ModeConsistencyChecker mode_checker;
  for (auto& rule : det::tv_mode_rules()) mode_checker.add_rule(rule);
  det::DetectionLog detections;
  sched.schedule_every(rt::msec(40), [&] {
    if (mode_checker.check(set.mode_snapshot(), sched.now(), detections) > 0) {
      const auto& d = detections.all().back();
      std::printf("           >>> mode checker: %s (%s)\n", d.subject.c_str(),
                  d.message.c_str());
    }
  });

  set.start();
  monitor->start();

  std::printf("--- normal use -------------------------------------------------\n");
  set.press(tv::Key::kPower);
  sched.run_for(rt::msec(400));
  show_status(set, sched.now(), "powered on");
  set.press(tv::Key::kVolumeUp);
  set.press(tv::Key::kVolumeUp);
  sched.run_for(rt::msec(400));
  show_status(set, sched.now(), "volume up x2");
  set.enter_channel(12);
  sched.run_for(rt::msec(400));
  show_status(set, sched.now(), "channel 12");

  std::printf("--- fault 1: volume command lost --------------------------------\n");
  auto fault1 = injector.schedule(
      flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.audio", sched.now(), rt::msec(100), 1.0,
                     {}});
  (void)fault1;
  set.press(tv::Key::kVolumeUp);
  sched.run_for(rt::sec(1));
  show_status(set, sched.now(), "after detection + recovery");

  std::printf("--- fault 2: teletext loses a channel change ---------------------\n");
  set.press(tv::Key::kTeletext);
  sched.run_for(rt::msec(400));
  set.press(tv::Key::kBack);
  sched.run_for(rt::msec(200));
  injector.schedule(flt::FaultSpec{flt::FaultKind::kMessageLoss, "cmd.teletext", sched.now(),
                                   rt::msec(50), 1.0, {}});
  set.press(tv::Key::kChannelUp);  // notification to teletext lost
  sched.run_for(rt::msec(200));
  set.press(tv::Key::kTeletext);   // user opens stale teletext
  sched.run_for(rt::sec(1));
  show_status(set, sched.now(), "after mode-checker detection");
  set.restart_component("teletext");
  sched.run_for(rt::msec(200));
  show_status(set, sched.now(), "after teletext re-sync");

  std::printf("--- fault 3: teletext engine crash -------------------------------\n");
  injector.schedule(flt::FaultSpec{flt::FaultKind::kCrash, "teletext", sched.now(),
                                   rt::msec(100), 1.0, {}});
  sched.run_for(rt::msec(200));
  set.press(tv::Key::kBack);
  sched.run_for(rt::msec(300));
  set.press(tv::Key::kTeletext);  // dead engine ignores the command
  sched.run_for(rt::sec(1));
  show_status(set, sched.now(), "after crash recovery");

  std::printf("--- summary ------------------------------------------------------\n");
  std::printf("comparator errors : %zu\n", monitor->errors().size());
  std::printf("mode detections   : %zu\n", detections.all().size());
  std::printf("recoveries        : %d\n", recoveries);
  std::printf("frames total/drop : %llu / %llu\n",
              static_cast<unsigned long long>(set.stats().frames_total),
              static_cast<unsigned long long>(set.stats().frames_dropped));
  return (monitor->errors().empty() || detections.all().empty()) ? 1 : 0;
}
