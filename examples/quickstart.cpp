// Quickstart: the smallest complete awareness loop (Fig. 1 of the paper).
//
// A trivial system under observation (a volume knob that applies
// commands) is watched by an awareness monitor running a one-state
// specification model. We inject a lost command and watch the monitor
// detect the divergence and trigger a recovery handler that re-syncs
// the system.
//
//   build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/model_impl.hpp"
#include "core/monitor_builder.hpp"
#include "runtime/event_bus.hpp"
#include "runtime/scheduler.hpp"
#include "statemachine/definition.hpp"

namespace rt = trader::runtime;
namespace sm = trader::statemachine;
namespace core = trader::core;

namespace {

// --- 1. A system under observation -----------------------------------------
// The SUO only needs minimal adaptation (§4.3): publish its inputs and
// outputs on the bus. This knob occasionally drops a command (the fault).
class VolumeKnob {
 public:
  VolumeKnob(rt::Scheduler& sched, rt::EventBus& bus) : sched_(sched), bus_(bus) {}

  void press_up(bool drop_command = false) {
    rt::Event input;
    input.topic = "knob.in";
    input.name = "key";
    input.fields["key"] = std::string("up");
    input.timestamp = sched_.now();
    bus_.publish(input);

    if (!drop_command) volume_ += 5;  // the dropped command is the fault

    rt::Event output;
    output.topic = "knob.out";
    output.name = "volume";
    output.fields["value"] = std::int64_t{volume_};
    output.timestamp = sched_.now();
    bus_.publish(output);
  }

  void set_volume(int v) { volume_ = v; }
  int volume() const { return volume_; }

 private:
  rt::Scheduler& sched_;
  rt::EventBus& bus_;
  int volume_ = 30;
};

// --- 2. A specification model ----------------------------------------------
sm::StateMachineDef knob_model() {
  sm::StateMachineDef def("knob_spec");
  const auto idle = def.add_state("Idle");
  def.on_entry(idle, [](sm::ActionEnv& env) {
    env.vars.set_int("volume", 30);
    env.emit("volume", {{"value", std::int64_t{30}}});
  });
  def.add_internal(idle, "up", nullptr, [](sm::ActionEnv& env) {
    env.vars.set_int("volume", env.vars.get_int("volume") + 5);
    env.emit("volume", {{"value", env.vars.get_int("volume")}});
  });
  return def;
}

}  // namespace

int main() {
  rt::Scheduler sched;
  rt::EventBus bus;
  VolumeKnob knob(sched, bus);

  // --- 3. Wire the monitor (Fig. 2), with recovery re-syncing the SUO
  //        from the model's expectation ------------------------------------
  auto monitor = core::MonitorBuilder(sched, bus)
                     .model(knob_model())
                     .input_topic("knob.in")
                     .output_topic("knob.out")
                     // exact agreement required, but only after 3
                     // consecutive deviations (§4.3 tolerance)
                     .threshold("volume", 0.0, /*max_consecutive=*/3)
                     .comparison_period(rt::msec(20))
                     .on_error([&](const core::ErrorReport& err) {
                       std::printf("[%6.1f ms] ERROR detected: %s\n", rt::to_ms(err.detected_at),
                                   err.describe().c_str());
                       const auto expected = std::get<std::int64_t>(err.expected);
                       knob.set_volume(static_cast<int>(expected));
                       std::printf("             recovery: volume re-synced to %lld\n",
                                   static_cast<long long>(expected));
                     })
                     .build();

  monitor->start();

  std::printf("pressing volume-up five times, dropping the third command...\n");
  for (int i = 0; i < 5; ++i) {
    knob.press_up(/*drop_command=*/i == 2);
    sched.run_for(rt::msec(200));
    std::printf("[%6.1f ms] system volume = %d\n", rt::to_ms(sched.now()), knob.volume());
  }

  std::printf("\nerrors reported: %zu (expected 1)\n", monitor->errors().size());
  std::printf("final volume: %d (would be 50 without the dropped command -- recovery\n"
              "restored the model's expectation)\n",
              knob.volume());
  return monitor->errors().size() == 1 ? 0 : 1;
}
