// Walkthrough of the §4.4 diagnosis case study (experiment E2).
//
// Prints, step by step, what the paper describes: instrumenting 60 000
// blocks, recording spectra over a 27-key-press scenario, building the
// error vector, computing similarities, and ranking — ending with the
// faulty block on rank 1.
//
//   build/examples/teletext_diagnosis
#include <cstdio>

#include "diagnosis/spectrum.hpp"
#include "diagnosis/synthetic_program.hpp"
#include "observation/coverage.hpp"

namespace diag = trader::diagnosis;
namespace obs = trader::observation;

int main() {
  std::printf("Step 1: instrument the TV software into executable blocks.\n");
  diag::SyntheticProgramConfig cfg;
  cfg.total_blocks = 60000;
  cfg.feature_count = 24;
  cfg.common_fraction = 0.03;
  cfg.shared_fraction = 0.08;
  cfg.shared_cover = 0.05;
  cfg.seed = 1234;
  diag::SyntheticProgram program(cfg);
  std::printf("        %zu blocks across %zu key-handler features\n", program.block_count(),
              program.feature_count());

  std::printf("Step 2: inject a fault into the teletext handler (feature 2).\n");
  const std::size_t per_feature = program.feature_end(0) - program.feature_begin(0);
  program.set_fault_in_feature(2, static_cast<std::size_t>(per_feature * 0.8));
  std::printf("        faulty block id = %zu (depth 80%% of the handler)\n",
              program.fault_block());

  std::printf("Step 3: run a scenario of 27 key presses, recording per-press spectra.\n");
  obs::BlockCoverageRecorder coverage(program.block_count());
  const std::vector<std::size_t> scenario = {0, 2, 1, 2, 3, 2, 0, 2, 1, 2, 3, 2, 0, 2,
                                             1, 2, 3, 2, 0, 2, 1, 2, 3, 2, 0, 2, 1};
  const auto errors = program.run_scenario(scenario, coverage);
  std::printf("        blocks executed at least once: %zu (paper: 13 796)\n",
              coverage.blocks_touched());

  std::printf("Step 4: the error vector (x = key press showed an error):\n        ");
  int error_count = 0;
  for (bool e : errors) {
    std::printf("%c", e ? 'x' : '.');
    error_count += e ? 1 : 0;
  }
  std::printf("  (%d of %zu)\n", error_count, errors.size());

  std::printf("Step 5: similarity between each block's spectrum and the error vector.\n");
  diag::SflRanker ranker;
  const auto report = ranker.rank(coverage, errors, diag::Coefficient::kOchiai);
  std::printf("        %zu executed blocks ranked by Ochiai similarity\n",
              report.blocks_considered);

  std::printf("Step 6: the ranking (top 5):\n");
  for (std::size_t i = 0; i < 5 && i < report.ranking.size(); ++i) {
    const auto& bs = report.ranking[i];
    const std::size_t feature = program.feature_of(bs.block);
    std::printf("        #%zu block %6zu score %.4f %s%s\n", i + 1, bs.block, bs.score,
                feature == static_cast<std::size_t>(-1)
                    ? "(infrastructure)"
                    : ("(feature " + std::to_string(feature) + ")").c_str(),
                bs.block == program.fault_block() ? "  <-- the injected fault" : "");
  }

  const std::size_t rank = report.rank_of(program.fault_block());
  std::printf("\nResult: the faulty block is on rank %zu", rank);
  std::printf(" -- %s the paper's finding that it \"appeared on the first place\".\n",
              rank == 1 ? "reproducing" : "NOT reproducing");
  std::printf("Wasted inspection effort: %.3f%% of the executed blocks.\n",
              report.wasted_effort(program.fault_block()) * 100.0);
  return rank == 1 ? 0 : 1;
}
