// The crash-proof hub: kill it mid-mission, restart it, lose nothing.
//
// recovery_demo closed the observe -> diagnose -> act loop; this demo
// makes the loop survive its own death. A RecoveryCampaign scenario
// runs the closed loop over real AF_UNIX sockets three ways:
//
//   1. golden     — journal off, uninterrupted (the reference run);
//   2. crash      — journal ON; at a mid-script command boundary the
//                   hub is killed cold (simulate_crash: no fsync, no
//                   checkpoint, no goodbye frames), then a fresh hub
//                   process-equivalent restarts on the same journal
//                   directory, replays checkpoint + WAL tail through
//                   the ordinary ingest paths, and finishes the
//                   scenario;
//   3. crash #2   — same drill at a different crash point.
//
// The proof is byte equality: all three runs must emit the identical
// canonical campaign JSON — same diagnosis rankings, same ladder, same
// repair times, same precision. Durability that changes the answer is
// not durability.
//
//   build/examples/journal_demo [seed]
#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "journal/wal.hpp"
#include "testkit/recovery_campaign.hpp"

namespace jn = trader::journal;
namespace tk = trader::testkit;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::strtoull(argv[1], nullptr, 10)) : 2026;

  char root_tmpl[] = "journal_demo_XXXXXX";
  char* root = ::mkdtemp(root_tmpl);
  if (root == nullptr) {
    std::printf("cannot create journal scratch dir\n");
    return 1;
  }

  std::printf("Step 1: golden run — closed-loop recovery campaign, journal off.\n");
  tk::RecoveryCampaignConfig config;
  config.seed = seed;
  config.scenarios = 2;
  const tk::RecoveryCampaignReport golden = tk::RecoveryCampaign(config).run();
  std::printf("        %zu scenarios, %zu scored, %zu repaired, %llu commands\n\n",
              golden.scenarios, golden.scored, golden.repaired,
              static_cast<unsigned long long>(golden.commands));

  std::printf("Step 2: crash drill — journal on, hub killed cold at command 25,\n");
  std::printf("        restarted from checkpoint + WAL tail, scenario finished.\n");
  tk::RecoveryCampaignConfig crash = config;
  crash.journal.enabled = true;
  crash.journal_root = root;
  crash.crash_at_command = 25;
  const tk::RecoveryCampaignReport first = tk::RecoveryCampaign(crash).run();
  const bool first_ok = first.to_json() == golden.to_json();
  std::printf("        run matches golden: %s\n\n", first_ok ? "yes" : "NO");

  std::printf("Step 3: same drill, later crash point (command 55) — the restart\n");
  std::printf("        position must not leak into the answer either.\n");
  crash.crash_at_command = 55;
  const tk::RecoveryCampaignReport second = tk::RecoveryCampaign(crash).run();
  const bool second_ok = second.to_json() == golden.to_json();
  std::printf("        run matches golden: %s\n\n", second_ok ? "yes" : "NO");

  const bool ok = first_ok && second_ok;
  std::printf("crash-restart matches golden: %s\n", ok ? "yes" : "no");
  std::printf("the journal replays the exact pre-crash inputs through the exact\n");
  std::printf("live code paths: a restarted hub is the same hub, minus the crash.\n");

  // The campaign journals into one subdirectory per scenario.
  if (DIR* d = ::opendir(root)) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      const std::string sub = std::string(root) + "/" + name;
      jn::purge_journal_dir(sub);
      ::rmdir(sub.c_str());
    }
    ::closedir(d);
  }
  ::rmdir(root);
  return ok ? 0 : 1;
}
