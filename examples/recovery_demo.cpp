// The self-healing fleet, end to end: observe -> diagnose -> ACT.
//
// fleetdiag_demo stopped at "ready to recover"; this demo closes the
// last arc of the §5 loop. A small fleet of SUO publishers streams
// events and coverage spectra into one AwarenessHub; each SUO hosts an
// instrumented SyntheticProgram with a fault seeded into a different
// feature. The hub's RecoveryOrchestrator watches the per-slot SFL
// rankings converge, then climbs the §5 escalation ladder over
// kRecover/kRecoverAck frames (protocol v3): resync first, then
// restart the suspect component — which actually clears the seeded
// fault when the diagnosis pointed at the right feature. The demo
// prints the hub's action log and each SUO's view of the repair.
//
//   build/examples/recovery_demo
#include <cstdio>

#include <string>
#include <thread>
#include <vector>

#include "hub/agent.hpp"
#include "hub/hub.hpp"
#include "recovery/escalation.hpp"

namespace rt = trader::runtime;
namespace hub = trader::hub;

int main() {
  constexpr std::size_t kFleet = 3;

  std::printf("Step 1: start a hub with the recovery orchestrator armed.\n");
  hub::HubConfig config;
  config.probe_liveness = false;
  config.auto_advance = true;  // follow the fleet's event watermarks
  config.diag.top_k = 5;
  config.diag.refresh_every = 1;
  config.recovery.enabled = true;
  config.recovery.stable_reports = 2;       // convergence gate
  config.recovery.token_capacity = 4;       // storm budget
  config.recovery.token_refill_every = rt::msec(100);
  config.recovery.cooldown = rt::msec(100);
  config.recovery.escalation.failures_per_level = 1;
  hub::AwarenessHub awareness_hub(config);
  std::vector<std::string> slots;
  for (std::size_t k = 0; k < kFleet; ++k) {
    slots.push_back("tv" + std::to_string(k));
    awareness_hub.add_slot(slots.back());
  }
  // Suspect blocks resolve to the component the SUO should act on.
  awareness_hub.recovery().set_component_of(
      [](std::size_t block) { return "feature" + std::to_string(block / 1000); });
  if (!awareness_hub.start()) {
    std::printf("cannot start hub listener\n");
    return 1;
  }

  std::printf("Step 2: %zu SUOs stream events + spectra; each carries a seeded\n", kFleet);
  std::printf("        fault in a different feature (the ground truth).\n");
  std::vector<std::thread> suos;
  std::vector<hub::PublisherStats> stats(kFleet);
  for (std::size_t k = 0; k < kFleet; ++k) {
    hub::PublisherConfig pub;
    pub.hub_path = awareness_hub.path();
    pub.name = slots[k];
    pub.seed = 100 + k;
    pub.horizon = rt::msec(3000);
    pub.key_period = rt::msec(10);
    pub.pace_us = 2000;  // wall time for command round-trips
    pub.diag.enabled = true;
    pub.diag.program.total_blocks = 6000;
    pub.diag.program.feature_count = 6;
    pub.diag.fault_feature = k;  // a different buggy feature per SUO
    pub.diag.flush_steps = 8;
    suos.emplace_back([pub, &stats, k] { hub::run_hub_publisher(pub, &stats[k]); });
  }
  while (awareness_hub.connection_count() > 0 ||
         awareness_hub.diagnosis().steps_ingested() == 0) {
    if (awareness_hub.poll(10) < 0) break;
  }
  for (auto& t : suos) t.join();

  std::printf("Step 3: the orchestrator acted on converged suspects only —\n");
  std::printf("        its action log (virtual time, §5 ladder order):\n");
  for (const auto& action : awareness_hub.recovery().actions()) {
    std::printf("        t=%4lldms  %s: %s %s (block %u)%s\n",
                static_cast<long long>(action.at / rt::msec(1)), action.slot.c_str(),
                trader::recovery::to_string(action.action), action.unit.c_str(),
                action.block, action.retry ? " [retry]" : "");
  }

  std::printf("Step 4: the SUOs' side of the loop:\n");
  for (std::size_t k = 0; k < kFleet; ++k) {
    std::printf("        %s: %llu commands executed, %llu repaired the fault\n",
                slots[k].c_str(),
                static_cast<unsigned long long>(stats[k].recover_commands),
                static_cast<unsigned long long>(stats[k].recover_repairs));
  }

  const hub::RecoveryStats rs = awareness_hub.recovery().stats();
  std::printf("Step 5: guard-rail accounting: %llu sent, %llu acked ok, "
              "%llu suppressed while unconverged.\n",
              static_cast<unsigned long long>(rs.sent),
              static_cast<unsigned long long>(rs.acked_ok),
              static_cast<unsigned long long>(rs.suppressed_unconverged));

  awareness_hub.stop();
  std::printf("\nThe loop is closed: spectra converged on each seeded fault, the\n");
  std::printf("hub actuated the ladder over the wire, and the right component's\n");
  std::printf("restart cleared the fault — while the rest of the fleet kept running.\n");
  return 0;
}
